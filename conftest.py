"""Repository-level pytest configuration: test tiers.

The suite is split into tiers so the tier-1 verify command
(``PYTHONPATH=src python -m pytest -x -q``) stays fast:

* ``tier1`` -- the fast correctness suite under ``tests/`` (applied
  automatically); always runs.
* ``slow`` -- long benchmark-style tests (everything under
  ``benchmarks/`` is marked automatically); skipped unless ``--runslow``.
* ``fuzz`` -- long randomized fuzzing sweeps; skipped unless
  ``--runfuzz``.  Short deterministic fuzz smoke tests stay in tier 1.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="also run tests marked 'slow' (benchmark regeneration)",
    )
    parser.addoption(
        "--runfuzz", action="store_true", default=False,
        help="also run tests marked 'fuzz' (long randomized sweeps)",
    )


def pytest_collection_modifyitems(config: pytest.Config, items) -> None:
    run_slow = config.getoption("--runslow")
    run_fuzz = config.getoption("--runfuzz")
    skip_slow = pytest.mark.skip(reason="slow benchmark test: pass --runslow to run")
    skip_fuzz = pytest.mark.skip(reason="long fuzz sweep: pass --runfuzz to run")
    rootdir = config.rootpath
    for item in items:
        try:
            relative = item.path.relative_to(rootdir).as_posix()
        except ValueError:
            relative = item.path.as_posix()
        if relative.startswith("benchmarks/"):
            item.add_marker(pytest.mark.slow)
        elif relative.startswith("tests/"):
            item.add_marker(pytest.mark.tier1)
        if "slow" in item.keywords and not run_slow:
            item.add_marker(skip_slow)
        if "fuzz" in item.keywords and not run_fuzz:
            item.add_marker(skip_fuzz)
