"""Unit tests for the evaluation metrics and the table renderer."""

import pytest

from repro.core import schedule_loop
from repro.eval import (
    LoopRun,
    Table,
    aggregate_cycles,
    aggregate_traffic,
    execution_cycles,
    execution_time_ns,
    memory_traffic,
    speedup,
)
from repro.eval.metrics import aggregate_time_ns
from repro.eval.reporting import format_value
from repro.hwmodel import derive_hardware
from repro.machine import baseline_machine, config_by_name
from repro.workloads import build_kernel


class TestFormulas:
    def test_execution_cycles_formula(self):
        # II * (N + (SC-1)*E) + stalls
        assert execution_cycles(3, 5, 100, 2, 7.0) == 3 * (100 + 4 * 2) + 7.0

    def test_memory_traffic(self):
        assert memory_traffic(1000, 5) == 5000.0

    def test_execution_time(self):
        assert execution_time_ns(1000, 0.5) == 500.0

    def test_speedup(self):
        assert speedup(200.0, 100.0) == 2.0
        assert speedup(100.0, 0.0) == float("inf")


class TestLoopRun:
    def _run(self, config_name="S64"):
        loop = build_kernel("daxpy", trip_count=500)
        result = schedule_loop(loop, config_name)
        spec = derive_hardware(baseline_machine(), config_by_name(config_name))
        return LoopRun(loop=loop, result=result, spec=spec)

    def test_cycles_and_time(self):
        run = self._run()
        assert run.cycles > 0
        assert run.useful_cycles == run.cycles  # no stall recorded
        assert run.time_ns == pytest.approx(run.cycles * run.spec.clock_ns)

    def test_traffic_counts_per_iteration_ops(self):
        run = self._run()
        assert run.traffic == run.loop.total_iterations * run.result.memory_ops_per_iteration

    def test_stall_cycles_added(self):
        run = self._run()
        base = run.cycles
        run.stall_cycles = 100.0
        assert run.cycles == base + 100.0

    def test_aggregates(self):
        runs = [self._run(), self._run("S32")]
        assert aggregate_cycles(runs) == sum(r.cycles for r in runs)
        assert aggregate_traffic(runs) == sum(r.traffic for r in runs)
        assert aggregate_time_ns(runs) == sum(r.time_ns for r in runs)

    def test_failed_run_has_infinite_cycles(self):
        run = self._run()
        run.result.success = False
        assert run.cycles == float("inf")


class TestTableRenderer:
    def test_basic_rendering(self):
        table = Table(["config", "value"], title="demo")
        table.add_row("S64", 1.2345)
        table.add_row("S32", None)
        text = table.render()
        assert "demo" in text
        assert "S64" in text and "1.234" in text
        assert "-" in text

    def test_wrong_arity_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_extend(self):
        table = Table(["a", "b"])
        table.extend([(1, 2), (3, 4)])
        assert len(table.rows) == 2

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(float("inf")) == "inf"
        assert format_value(3.14159, precision=2) == "3.14"
        assert format_value(12) == "12"
        assert "e" in format_value(1.5e9)

    def test_columns_aligned(self):
        table = Table(["name", "x"])
        table.add_row("short", 1)
        table.add_row("a_much_longer_name", 2)
        lines = table.render().splitlines()
        assert len({len(line) for line in lines[1:]}) <= 2
