"""Unit tests for the lockup-free cache model."""

import pytest

from repro.simulator import CacheConfig, LockupFreeCache


def make_cache(**kwargs):
    defaults = dict(size_bytes=1024, line_bytes=32, max_pending=2,
                    hit_latency=2, miss_latency=20)
    defaults.update(kwargs)
    return LockupFreeCache(CacheConfig(**defaults))


class TestCacheConfig:
    def test_line_count(self):
        assert CacheConfig(size_bytes=32 * 1024, line_bytes=32).n_lines == 1024

    def test_defaults_match_paper(self):
        cfg = CacheConfig()
        assert cfg.size_bytes == 32 * 1024
        assert cfg.line_bytes == 32
        assert cfg.max_pending == 8


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0x1000, cycle=0)
        assert not first.hit
        assert first.ready_cycle == 20
        second = cache.access(0x1000, cycle=30)
        assert second.hit
        assert second.ready_cycle == 32

    def test_spatial_locality_within_line(self):
        cache = make_cache()
        cache.access(0x1000, cycle=0)
        same_line = cache.access(0x1008, cycle=40)
        assert same_line.hit

    def test_different_lines_both_miss(self):
        cache = make_cache()
        assert not cache.access(0x1000, cycle=0).hit
        assert not cache.access(0x2000, cycle=0).hit
        assert cache.n_misses == 2

    def test_conflict_eviction(self):
        cache = make_cache(size_bytes=64, line_bytes=32)  # 2 lines, direct mapped
        cache.access(0x0, cycle=0)
        cache.access(0x40, cycle=100)  # same index as 0x0 (2-line cache)
        assert not cache.access(0x0, cycle=200).hit

    def test_miss_ratio(self):
        cache = make_cache()
        cache.access(0x0, cycle=0)
        cache.access(0x0, cycle=100)
        assert cache.miss_ratio == pytest.approx(0.5)

    def test_reset_counters(self):
        cache = make_cache()
        cache.access(0x0, cycle=0)
        cache.reset_counters()
        assert cache.n_hits == cache.n_misses == 0


class TestLockupFreeBehaviour:
    def test_merge_with_outstanding_miss(self):
        cache = make_cache()
        first = cache.access(0x1000, cycle=0)
        merged = cache.access(0x1008, cycle=5)
        assert not merged.hit
        assert merged.ready_cycle == first.ready_cycle
        assert cache.n_merged == 1
        assert cache.n_misses == 1

    def test_mshr_limit_delays_further_misses(self):
        cache = make_cache(max_pending=2)
        # Three distinct lines mapping to distinct cache sets.
        a = cache.access(0x0, cycle=0)
        b = cache.access(0x20, cycle=0)
        c = cache.access(0x40, cycle=0)   # both MSHRs busy until cycle 20
        assert c.ready_cycle > a.ready_cycle
        assert c.ready_cycle >= min(a.ready_cycle, b.ready_cycle) + 20

    def test_writes_do_not_block(self):
        cache = make_cache()
        access = cache.access(0x1000, cycle=0, is_write=True)
        assert access.ready_cycle == 2   # store buffering hides the fill
        # But the line is brought in, so a later read hits.
        assert cache.access(0x1000, cycle=50).hit

    def test_pending_fill_expires(self):
        cache = make_cache()
        cache.access(0x1000, cycle=0)
        # Long after the fill completed there is no pending entry left.
        assert cache.access(0x1010, cycle=1000).hit
