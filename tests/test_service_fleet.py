"""Tests for the distributed fleet: coordinator, workers, wire types.

The failure matrix the design exists for is pinned here:

* a worker killed mid-shard costs one lease, not a run -- the lease
  expires, the shard is reassigned, and the final digest is unchanged;
* a completion arriving after its lease was reaped is accepted once,
  idempotently (``stale=True`` on every later arrival);
* a coordinator restarted over a warm :class:`ResultStore` re-schedules
  zero shards.

The end-to-end test runs the real stack -- ``BatchScheduler`` +
``ShardCoordinator`` behind the HTTP server, two in-process
:func:`run_worker` loops, one of them killed mid-run -- and asserts the
distributed report's ``runs_digest`` is byte-identical to the
single-process and checkpoint-resumed ones.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import serialize
from repro.eval.experiments import iter_schedule_suite
from repro.eval.shards import ResultStore, ShardResult, runs_digest
from repro.machine.presets import baseline_machine, config_by_name
from repro.service import (
    BatchScheduler,
    CoordinatorClosed,
    LeaseHeartbeat,
    ShardCoordinator,
    ShardLease,
    WorkerStatus,
    fetch_json,
    make_server,
    poll_job,
    run_worker,
    submit_job,
)
from repro.session import Session
from repro.workloads.suite import build_workbench


class FakeClock:
    """An injectable monotonic clock (seconds advance only on demand)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _loops(n: int = 4):
    return build_workbench("tiny", n_loops=n, seed=2003)


def _schedule_envelope(lease: ShardLease) -> dict:
    """Compute a lease's canonical shard_result envelope locally."""
    runs = [None] * len(lease.loops)
    for local, run, _cached in iter_schedule_suite(
        list(lease.loops),
        lease.config,
        machine=lease.machine,
        scale_to_clock=lease.scale_to_clock,
        budget_ratio=lease.budget_ratio,
        scheduler=lease.policy,
        core=lease.core,
    ):
        runs[local] = run
    result = ShardResult(
        key=lease.shard_key,
        config_name=lease.config.name,
        positions=list(lease.positions),
        runs=runs,
    )
    return serialize.to_dict(result)


def _local_runs(loops, config_name: str = "S64"):
    """The single-process reference runs for a loop list."""
    runs = [None] * len(loops)
    for position, run, _cached in iter_schedule_suite(
        loops, config_by_name(config_name), machine=baseline_machine()
    ):
        runs[position] = run
    return runs


# --------------------------------------------------------------------------- #
# Wire types
# --------------------------------------------------------------------------- #
class TestWireTypes:
    def test_shard_lease_roundtrip(self, tmp_path):
        coordinator = ShardCoordinator(ResultStore(tmp_path / "store"))
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        worker = coordinator.register_worker("alice")
        lease = coordinator.acquire_lease(worker.worker_id)
        assert lease is not None
        envelope = serialize.to_dict(lease)
        assert envelope["type"] == "shard_lease"
        serialize.validate(envelope, expect_type="shard_lease")
        back = serialize.from_dict(envelope)
        assert isinstance(back, ShardLease)
        assert (back.lease_id, back.worker_id, back.job_id) == (
            lease.lease_id, lease.worker_id, lease.job_id
        )
        assert back.shard_key == lease.shard_key
        assert back.positions == lease.positions
        assert back.config == lease.config
        assert back.machine == lease.machine
        assert (back.policy, back.budget_ratio, back.core,
                back.scale_to_clock, back.lease_timeout_s) == (
            lease.policy, lease.budget_ratio, lease.core,
            lease.scale_to_clock, lease.lease_timeout_s
        )
        # Loop fingerprints survive the round trip (the digest identity
        # contract rides on this; Loop itself compares by identity).
        assert [loop.fingerprint() for loop in back.loops] == [
            loop.fingerprint() for loop in lease.loops
        ]

    def test_heartbeat_and_worker_status_roundtrip(self):
        beat = LeaseHeartbeat(lease_id="lease-1", worker_id="w-1",
                              extended=True, remaining_s=12.5)
        assert serialize.from_dict(serialize.to_dict(beat)) == beat
        status = WorkerStatus(worker_id="w-1", name="alice", state="leased",
                              lease_id="lease-1", last_seen_s=0.25,
                              n_completed=3, n_expired=1, n_failed=0)
        assert serialize.from_dict(serialize.to_dict(status)) == status


# --------------------------------------------------------------------------- #
# Coordinator unit tests (deterministic fake clock)
# --------------------------------------------------------------------------- #
class TestCoordinator:
    @pytest.fixture()
    def clock(self):
        return FakeClock()

    @pytest.fixture()
    def store(self, tmp_path):
        return ResultStore(tmp_path / "fleet-store")

    @pytest.fixture()
    def coordinator(self, store, clock):
        coordinator = ShardCoordinator(store, lease_timeout_s=10.0, clock=clock)
        yield coordinator
        coordinator.close()

    def test_pull_based_leasing_drains_the_queue(self, coordinator):
        counters = coordinator.start_job("job-1", _loops(4), "S64", shard_size=2)
        assert counters == {"n_shards": 2, "n_restored": 0, "n_pending": 2}
        worker = coordinator.register_worker()
        first = coordinator.acquire_lease(worker.worker_id)
        second = coordinator.acquire_lease(worker.worker_id)
        assert first is not None and second is not None
        assert {first.shard_index, second.shard_index} == {0, 1}
        assert coordinator.acquire_lease(worker.worker_id) is None

    def test_unregistered_worker_cannot_lease(self, coordinator):
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        with pytest.raises(KeyError, match="register first"):
            coordinator.acquire_lease("w-999")

    def test_worker_death_costs_one_shard_not_the_run(
        self, coordinator, clock, store
    ):
        """Lease expiry -> reassignment -> digest unchanged."""
        loops = _loops(4)
        coordinator.start_job("job-1", loops, "S64", shard_size=2)
        dead = coordinator.register_worker("dead")
        doomed = coordinator.acquire_lease(dead.worker_id)
        assert doomed is not None
        # The worker dies silently; its lease runs out.
        clock.advance(10.1)
        survivor = coordinator.register_worker("survivor")
        leases = []
        while True:
            lease = coordinator.acquire_lease(survivor.worker_id)
            if lease is None:
                break
            leases.append(lease)
        # The survivor picked up both remaining shards, including the
        # reaped one.
        assert {lease.shard_index for lease in leases} == {0, 1}
        assert coordinator.n_reassigned == 1
        assert any(lease.shard_key == doomed.shard_key for lease in leases)
        for lease in leases:
            ack = coordinator.complete(
                survivor.worker_id, lease.lease_id, _schedule_envelope(lease)
            )
            assert ack == {"accepted": True, "stale": False}
        runs = coordinator.wait_job("job-1", timeout=0.1)
        assert runs_digest(runs) == runs_digest(_local_runs(loops))
        # The dead worker's expiry is visible in the worker listing.
        by_name = {status.name: status for status in coordinator.workers()}
        assert by_name["dead"].n_expired == 1
        assert by_name["survivor"].n_completed == 2

    def test_stale_completion_is_accepted_once_idempotently(
        self, coordinator, clock, store
    ):
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        slow = coordinator.register_worker("slow")
        lease = coordinator.acquire_lease(slow.worker_id)
        assert lease is not None
        envelope = _schedule_envelope(lease)
        clock.advance(10.1)  # the lease is reaped...
        fast = coordinator.register_worker("fast")
        release = coordinator.acquire_lease(fast.worker_id)
        assert release is not None and release.shard_key == lease.shard_key
        # ...the fast worker finishes first...
        ack = coordinator.complete(
            fast.worker_id, release.lease_id, _schedule_envelope(release)
        )
        assert ack == {"accepted": True, "stale": False}
        stores_after_first = store.stores
        # ...and the slow worker's late (but valid) completion is
        # acknowledged as stale without being applied again.
        late = coordinator.complete(slow.worker_id, lease.lease_id, envelope)
        assert late == {"accepted": True, "stale": True}
        assert store.stores == stores_after_first
        assert coordinator.n_stale_completions == 1

    def test_heartbeat_extends_live_lease_and_denies_reaped_one(
        self, coordinator, clock
    ):
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        worker = coordinator.register_worker()
        lease = coordinator.acquire_lease(worker.worker_id)
        clock.advance(6.0)
        beat = coordinator.heartbeat(worker.worker_id, lease.lease_id)
        assert beat.extended and beat.remaining_s == 10.0
        clock.advance(6.0)  # inside the renewed deadline
        assert coordinator.heartbeat(worker.worker_id, lease.lease_id).extended
        clock.advance(10.1)  # past it: the shard is gone
        beat = coordinator.heartbeat(worker.worker_id, lease.lease_id)
        assert not beat.extended and beat.remaining_s == 0.0

    def test_worker_error_requeues_shard_immediately(self, coordinator):
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        worker = coordinator.register_worker()
        lease = coordinator.acquire_lease(worker.worker_id)
        ack = coordinator.complete(
            worker.worker_id, lease.lease_id, None, error="ValueError: boom"
        )
        assert ack["requeued"] is True
        # No clock advance needed: the shard is pending again at once.
        again = coordinator.acquire_lease(worker.worker_id)
        assert again is not None and again.shard_key == lease.shard_key

    def test_repeatedly_failing_shard_fails_the_job(self, tmp_path, clock):
        coordinator = ShardCoordinator(
            ResultStore(tmp_path / "s"), lease_timeout_s=10.0,
            max_assignments=2, clock=clock,
        )
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        worker = coordinator.register_worker()
        for _ in range(2):
            lease = coordinator.acquire_lease(worker.worker_id)
            coordinator.complete(
                worker.worker_id, lease.lease_id, None, error="boom"
            )
        with pytest.raises(RuntimeError, match="failed after 2 assignments"):
            coordinator.wait_job("job-1", timeout=0.1)

    def test_restart_over_warm_store_reschedules_zero_shards(
        self, tmp_path, clock
    ):
        loops = _loops(4)
        store = ResultStore(tmp_path / "warm")
        first = ShardCoordinator(store, lease_timeout_s=10.0, clock=clock)
        first.start_job("job-1", loops, "S64", shard_size=2)
        worker = first.register_worker()
        while True:
            lease = first.acquire_lease(worker.worker_id)
            if lease is None:
                break
            first.complete(worker.worker_id, lease.lease_id,
                           _schedule_envelope(lease))
        runs = first.wait_job("job-1", timeout=0.1)
        first.close()
        # A brand-new coordinator over the same store: everything restores.
        second = ShardCoordinator(
            ResultStore(tmp_path / "warm"), lease_timeout_s=10.0, clock=clock
        )
        counters = second.start_job("job-2", loops, "S64", shard_size=2)
        assert counters == {"n_shards": 2, "n_restored": 2, "n_pending": 0}
        restored = second.wait_job("job-2", timeout=0.1)
        assert runs_digest(restored) == runs_digest(runs)
        second.close()

    def test_close_aborts_waiters(self, coordinator):
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        errors = []

        def wait():
            try:
                coordinator.wait_job("job-1", timeout=30)
            except CoordinatorClosed as exc:
                errors.append(exc)

        thread = threading.Thread(target=wait)
        thread.start()
        time.sleep(0.05)
        coordinator.close()
        thread.join(timeout=5)
        assert not thread.is_alive() and len(errors) == 1

    def test_duplicate_job_id_rejected(self, coordinator):
        coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)
        with pytest.raises(ValueError, match="already running"):
            coordinator.start_job("job-1", _loops(2), "S64", shard_size=2)


# --------------------------------------------------------------------------- #
# End to end: coordinator + HTTP + 2 workers, one killed mid-run
# --------------------------------------------------------------------------- #
class TestFleetEndToEnd:
    def test_two_worker_fleet_with_one_killed_matches_local_digest(
        self, tmp_path
    ):
        loops = build_workbench("tiny", n_loops=8, seed=2003)
        session = Session(shard_size=2)
        coordinator = ShardCoordinator(
            ResultStore(tmp_path / "fleet"), lease_timeout_s=1.0
        )
        batch = BatchScheduler(session, coordinator=coordinator)
        server = make_server(batch, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"

        stop_doomed = threading.Event()
        stop_survivor = threading.Event()
        results = {}

        def kill_on_first_lease(message):
            # Die the moment the first lease is acquired: the stop event
            # aborts scheduling mid-shard, so the lease is abandoned with
            # work genuinely in flight.
            if message.startswith("leased shard"):
                stop_doomed.set()

        def doomed():
            results["doomed"] = run_worker(
                base_url, name="doomed", poll_interval=0.05,
                stop=stop_doomed, progress=kill_on_first_lease,
            )

        def survivor():
            results["survivor"] = run_worker(
                base_url, name="survivor", poll_interval=0.05,
                stop=stop_survivor,
            )

        threads = [threading.Thread(target=doomed),
                   threading.Thread(target=survivor)]
        try:
            threads[0].start()
            job_id = submit_job(
                base_url,
                {"kind": "evaluate",
                 "params": {"config": "S64", "tier": "tiny", "n_loops": 8}},
            )
            # The doomed worker dies mid-shard (see kill_on_first_lease);
            # only once it is gone does the survivor start, so it must
            # take every still-pending shard plus — after the 1s lease
            # timeout reaps it — the abandoned one.
            threads[0].join(timeout=60)
            assert not threads[0].is_alive()
            threads[1].start()
            status = poll_job(base_url, job_id, timeout=300, poll_interval=0.1)
            assert status["state"] == "done", status.get("error")
            assert status["progress"] == {"n_done": 8, "n_total": 8}
            envelope = status["result"]
            serialize.validate(envelope, expect_type="configuration_report")
            report = serialize.from_dict(envelope)
            # The fleet's registered workers are visible over the wire.
            workers = [
                serialize.from_dict(entry)
                for entry in fetch_json(f"{base_url}/v2/workers")["workers"]
            ]
            assert {w.name for w in workers} == {"doomed", "survivor"}
        finally:
            stop_doomed.set()
            stop_survivor.set()
            for worker_thread in threads:
                if worker_thread.ident is not None:
                    worker_thread.join(timeout=10)
            server.shutdown()
            batch.shutdown()
            session.close()

        # Digest identity, leg 1: vs a plain single-process run.
        with Session() as local:
            reference = local.evaluate_configuration(
                "S64", tier="tiny", n_loops=8
            )
        assert runs_digest(report.runs) == runs_digest(reference.runs)

        # Leg 2: vs a checkpointed run and its resumed re-run.
        with Session(checkpoint=tmp_path / "ck", shard_size=2) as checkpointed:
            cold = checkpointed.evaluate_configuration(
                "S64", tier="tiny", n_loops=8
            )
        with Session(checkpoint=tmp_path / "ck", shard_size=2) as resumed_session:
            resumed = resumed_session.evaluate_configuration(
                "S64", tier="tiny", n_loops=8
            )
            assert resumed_session.checkpoint.hits == 4  # all 4 shards restored
        assert runs_digest(report.runs) == runs_digest(cold.runs)
        assert runs_digest(report.runs) == runs_digest(resumed.runs)

        # The doomed worker really did lose work to the reaper: it took
        # exactly one lease, completed nothing, and abandoned the shard
        # mid-flight; the survivor then finished every one of the four.
        assert results["doomed"].n_leases == 1
        assert results["doomed"].n_completed == 0
        assert results["doomed"].n_lost == 1
        assert results["survivor"].n_completed == 4
        assert coordinator.stats()["n_reassigned"] == 1

    def test_worker_cli_registers_and_idle_exits(self, tmp_path, capsys):
        from repro.cli import main

        session = Session()
        coordinator = ShardCoordinator(ResultStore(tmp_path / "s"))
        batch = BatchScheduler(session, coordinator=coordinator)
        server = make_server(batch, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        try:
            exit_code = main([
                "worker", "--url", base_url, "--name", "cli-worker",
                "--poll", "0.05", "--idle-exit", "0.3s",
            ])
            assert exit_code == 0
            err = capsys.readouterr().err
            assert "registered as" in err and "exiting" in err
            names = {
                serialize.from_dict(entry).name
                for entry in fetch_json(f"{base_url}/v2/workers")["workers"]
            }
            assert "cli-worker" in names
        finally:
            server.shutdown()
            batch.shutdown()
            session.close()

    def test_worker_against_non_coordinator_service_fails_cleanly(self):
        session = Session()
        batch = BatchScheduler(session)
        server = make_server(batch, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(RuntimeError, match="not a fleet coordinator"):
                run_worker(f"http://{host}:{port}", max_leases=1)
        finally:
            server.shutdown()
            batch.shutdown()
            session.close()
