"""Cross-II/cross-config reuse layer: analysis cache, informed II
search, probe memoization, and the eval-cache LRU bound.

* :class:`~repro.core.analysis_cache.AnalysisCache` serves RecMII /
  ResMII / priority-order products across II attempts and machine
  configurations, with LRU-bounded storage and observable counters.
* The ``informed`` II-search policy consumes the engine's structured
  :class:`~repro.core.policy.FailureDiagnosis` and abandons the search
  only on a sound unschedulability certificate -- a hypothesis
  differential against the linear search proves it never passes over a
  schedulable II, and a pinned zero-port regression exercises the
  certificate (with its ``skipped:`` audit entry in ``attempted_iis``).
* The array core's probe memo is counted on every result
  (``n_slot_probes`` / ``n_probe_memo_hits``) and none of the new
  counters leak into the serialized payload (they are process-local
  telemetry; the cross-core digests must not see them).
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import serialize
from repro.core import MirsHC, SchedulerEngine
from repro.core.analysis_cache import (
    AnalysisCache,
    machine_token,
    shared_analysis_cache,
)
from repro.core.policy import (
    FailureDiagnosis,
    InformedIISearch,
    LinearIISearch,
    ii_search_policy,
)
from repro.ddg import compute_mii
from repro.eval.cache import EvalCache
from repro.hwmodel import scaled_machine
from repro.machine import ResourceModel, baseline_machine, config_by_name
from repro.workloads import build_kernel
from repro.workloads.generator import PROFILES, generate_loop


def scaled(config_name):
    rf = config_by_name(config_name)
    machine, _ = scaled_machine(baseline_machine(), rf)
    return machine, rf


# --------------------------------------------------------------------------- #
# AnalysisCache
# --------------------------------------------------------------------------- #
class TestAnalysisCache:
    def test_mii_reuse_and_value_identity(self):
        machine, rf = scaled("4C16S16")
        resources = ResourceModel(machine, rf)
        loop = build_kernel("equation_of_state")
        cache = AnalysisCache()

        first, reused_first = cache.mii(loop.graph, resources, machine, rf)
        assert reused_first == 0
        assert first == compute_mii(loop.graph, resources, machine.latency)

        again, reused_again = cache.mii(loop.graph, resources, machine, rf)
        assert again == first
        # Both the recurrence analysis and the resource analysis hit.
        assert reused_again == 2

    def test_rec_mii_shared_across_configs(self):
        # RecMII depends only on graph + latencies: two register-file
        # organizations over the same datapath share it, while the
        # (machine, rf)-keyed ResMII is recomputed for the second one.
        loop = build_kernel("equation_of_state")
        cache = AnalysisCache()
        machine = baseline_machine()
        rf_a = config_by_name("4C16S16")
        rf_b = config_by_name("S32")
        assert machine_token(machine) == machine_token(machine)
        cache.mii(loop.graph, ResourceModel(machine, rf_a), machine, rf_a)
        _, reused = cache.mii(loop.graph, ResourceModel(machine, rf_b),
                              machine, rf_b)
        assert reused == 1  # rec hit, res miss

    def test_order_reuse(self):
        machine, rf = scaled("S64")
        loop = build_kernel("daxpy")
        cache = AnalysisCache()
        calls = []

        def order_fn(graph, latency_of):
            calls.append(len(graph))
            return sorted(n.node_id for n in graph.nodes())

        first, reused = cache.order(loop.graph, machine, "test_order", order_fn)
        assert reused == 0 and calls
        second, reused = cache.order(loop.graph, machine, "test_order", order_fn)
        assert second == first
        assert reused == 1 and len(calls) == 1  # not recomputed

    def test_lru_bound_and_stats(self):
        machine, rf = scaled("S64")
        cache = AnalysisCache(max_entries=2)
        for kernel in ("daxpy", "equation_of_state", "tridiagonal"):
            loop = build_kernel(kernel)
            cache.order(loop.graph, machine, "o",
                        lambda g, latency_of: sorted(n.node_id for n in g.nodes()))
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["max_entries"] == 2
        assert stats["evictions"] == 1
        assert stats["misses"] == 3
        cache.clear()
        assert cache.stats()["entries"] == 0

    def test_engine_reuses_across_repeated_loops(self):
        machine, rf = scaled("4C16S16")
        loop = build_kernel("equation_of_state")
        cache = AnalysisCache()
        cold = MirsHC(machine, rf, analysis_cache=cache).schedule_loop(loop.copy())
        warm = MirsHC(machine, rf, analysis_cache=cache).schedule_loop(loop.copy())
        plain = MirsHC(machine, rf).schedule_loop(loop.copy())
        assert cold.n_analysis_reuses == 0
        assert warm.n_analysis_reuses > 0
        # The cache changes where analysis comes from, never its outcome.
        for result in (cold, warm):
            assert (result.ii, result.stage_count,
                    sorted(result.register_usage.items())) == (
                plain.ii, plain.stage_count,
                sorted(plain.register_usage.items()))

    def test_shared_instance_is_a_singleton(self):
        assert shared_analysis_cache() is shared_analysis_cache()


# --------------------------------------------------------------------------- #
# Informed II search
# --------------------------------------------------------------------------- #
hypothesis_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_loops(draw):
    profile = PROFILES[draw(st.sampled_from(sorted(PROFILES)))]
    seed = draw(st.integers(min_value=0, max_value=5_000))
    rng = np.random.default_rng(seed)
    return generate_loop(rng, profile, index=0, name=f"hyp_{seed}")


class TestInformedIISearch:
    def test_registered(self):
        # The registry stores policy *classes*; the engine instantiates
        # one per schedule_loop call.
        assert ii_search_policy("informed") is InformedIISearch
        assert InformedIISearch().wants_diagnosis
        assert not LinearIISearch().wants_diagnosis

    def test_advances_linearly_without_certificate(self):
        search = InformedIISearch()
        search.observe_failure(FailureDiagnosis(ii=7, reason="attempt_failed"))
        assert search.next_ii(7, 1) == 8
        assert search.skip_note is None

    def test_aborts_on_certificate(self):
        search = InformedIISearch()
        search.observe_failure(FailureDiagnosis(
            ii=7, reason="zero_capacity_resource",
            unschedulable_at_all_iis=True, detail="node 3 needs MEM"))
        assert search.next_ii(7, 1) == InformedIISearch.ABANDON
        assert search.skip_note.startswith("skipped:8..:")

    @given(random_loops(), st.sampled_from(["S64", "4C16S16", "2C32S32"]))
    @hypothesis_settings
    def test_informed_equals_linear(self, loop, config_name):
        """The jump never passes over a schedulable II.

        On capacity-complete datapaths no certificate exists, so the
        informed search must reproduce the linear search exactly: same
        success, same final II, same attempt trail, same schedule
        shape -- and never more attempts.
        """
        machine, rf = scaled(config_name)
        linear = SchedulerEngine(
            machine, rf, policy="mirs_linear_ii", max_ii=64
        ).schedule_loop(loop.copy())
        informed = SchedulerEngine(
            machine, rf, policy="mirs_informed_ii", max_ii=64
        ).schedule_loop(loop.copy())

        informed_attempts = [ii for ii in informed.attempted_iis
                             if isinstance(ii, int)]
        linear_attempts = [ii for ii in linear.attempted_iis
                           if isinstance(ii, int)]
        assert informed.success == linear.success
        assert informed.ii == linear.ii
        assert len(informed_attempts) <= len(linear_attempts)
        assert informed_attempts == linear_attempts
        if linear.success:
            assert (informed.stage_count,
                    sorted(informed.register_usage.items())) == (
                linear.stage_count, sorted(linear.register_usage.items()))

    def test_zero_port_certificate_pin(self):
        """Pinned regression: a compute-only datapath (``n_mem_ports=0``)
        can never place a memory operation.  The linear search grinds
        through every II up to the ceiling; the informed search proves
        unschedulability after one failure and records the skipped range
        in the audit trail."""
        rf = config_by_name("S64")
        machine = replace(baseline_machine(), n_mem_ports=0)
        loop = build_kernel("daxpy")  # has loads and stores
        max_ii = 12

        linear = SchedulerEngine(
            machine, rf, policy="mirs_linear_ii", max_ii=max_ii
        ).schedule_loop(loop.copy())
        informed = SchedulerEngine(
            machine, rf, policy="mirs_informed_ii", max_ii=max_ii
        ).schedule_loop(loop.copy())

        assert not linear.success and not informed.success
        linear_attempts = [ii for ii in linear.attempted_iis
                           if isinstance(ii, int)]
        informed_attempts = [ii for ii in informed.attempted_iis
                             if isinstance(ii, int)]
        assert len(linear_attempts) > 1  # the grind the cache removes
        assert len(informed_attempts) == 1
        assert informed.ii == informed_attempts[-1]  # an int, not a note

        notes = [e for e in informed.attempted_iis if isinstance(e, str)]
        assert len(notes) == 1
        assert notes[0].startswith(f"skipped:{informed_attempts[0] + 1}..:")
        assert "zero" in notes[0] or "capacity" in notes[0] or notes[0]

    def test_skip_note_survives_serialization(self):
        rf = config_by_name("S64")
        machine = replace(baseline_machine(), n_mem_ports=0)
        result = SchedulerEngine(
            machine, rf, policy="mirs_informed_ii", max_ii=12
        ).schedule_loop(build_kernel("daxpy"))
        payload = serialize.to_dict(result)
        restored = serialize.from_dict(payload)
        assert restored.attempted_iis == result.attempted_iis
        assert any(isinstance(e, str) and e.startswith("skipped:")
                   for e in restored.attempted_iis)
        # The reuse counters are process-local telemetry, never payload.
        for key in ("n_slot_probes", "n_probe_memo_hits", "n_analysis_reuses"):
            assert key not in payload["data"]


# --------------------------------------------------------------------------- #
# Probe memoization counters
# --------------------------------------------------------------------------- #
class TestProbeMemo:
    def test_counters_surface_on_results(self):
        machine, rf = scaled("4C16S16")
        loop = build_kernel("equation_of_state")
        array = MirsHC(machine, rf, core="array").schedule_loop(loop.copy())
        obj = MirsHC(machine, rf, core="object").schedule_loop(loop.copy())
        assert array.n_slot_probes > 0
        # Both backends count every window-scan entry identically...
        assert obj.n_slot_probes == array.n_slot_probes
        # ...but only the array core carries the epoch memo.
        assert obj.n_probe_memo_hits == 0
        assert array.n_probe_memo_hits >= 0


# --------------------------------------------------------------------------- #
# EvalCache LRU bound
# --------------------------------------------------------------------------- #
class TestEvalCacheLRU:
    def test_eviction_order_and_stats(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", "run-a")
        cache.put("b", "run-b")
        assert cache.get("a") == "run-a"  # refresh: "b" is now LRU
        cache.put("c", "run-c")           # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == "run-a"
        assert cache.get("c") == "run-c"
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1

    def test_unbounded_mode(self):
        cache = EvalCache(max_entries=None)
        for index in range(100):
            cache.put(f"k{index}", index)
        assert len(cache) == 100
        assert cache.stats()["evictions"] == 0

    def test_disk_tier_survives_eviction(self, tmp_path):
        cache = EvalCache(tmp_path, max_entries=1)
        cache.put("aa11", [1, 2, 3])
        cache.put("bb22", [4, 5, 6])  # evicts aa11 from memory only
        assert cache.stats()["evictions"] == 1
        assert cache.get("aa11") == [1, 2, 3]  # re-loaded from disk

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            EvalCache(max_entries=0)
