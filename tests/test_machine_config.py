"""Unit tests for RFConfig / MachineConfig."""

import pytest

from repro.machine import MachineConfig, RFConfig, RFKind, UNBOUNDED
from repro.machine.config import effective_capacity, is_unbounded


class TestRFConfigParsing:
    def test_parse_monolithic(self):
        rf = RFConfig.parse("S128")
        assert rf.kind is RFKind.MONOLITHIC
        assert rf.shared_regs == 128
        assert rf.cluster_regs is None
        assert rf.n_clusters == 1

    def test_parse_clustered(self):
        rf = RFConfig.parse("4C32")
        assert rf.kind is RFKind.CLUSTERED
        assert rf.n_clusters == 4
        assert rf.cluster_regs == 32
        assert rf.shared_regs is None

    def test_parse_hierarchical(self):
        rf = RFConfig.parse("1C64S64")
        assert rf.kind is RFKind.HIERARCHICAL
        assert rf.cluster_regs == 64
        assert rf.shared_regs == 64

    def test_parse_hierarchical_clustered(self):
        rf = RFConfig.parse("8C16S16")
        assert rf.kind is RFKind.HIERARCHICAL_CLUSTERED
        assert rf.n_clusters == 8

    def test_parse_unbounded(self):
        rf = RFConfig.parse("4CinfSinf")
        assert rf.cluster_regs_unbounded
        assert rf.shared_regs_unbounded

    def test_parse_roundtrip_name(self):
        for name in ("S64", "2C32", "4C16S16", "1C32S64"):
            assert RFConfig.parse(name).name == name

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            RFConfig.parse("X99")

    def test_parse_empty_invalid(self):
        with pytest.raises(ValueError):
            RFConfig.parse("")


class TestRFConfigProperties:
    def test_total_registers(self):
        assert RFConfig.parse("S128").total_registers == 128
        assert RFConfig.parse("4C32").total_registers == 128
        assert RFConfig.parse("4C16S16").total_registers == 80

    def test_monolithic_has_no_clusters(self):
        with pytest.raises(ValueError):
            RFConfig(n_clusters=2, cluster_regs=None, shared_regs=64)

    def test_must_have_a_bank(self):
        with pytest.raises(ValueError):
            RFConfig(n_clusters=1, cluster_regs=None, shared_regs=None)

    def test_ports_must_be_positive(self):
        with pytest.raises(ValueError):
            RFConfig(n_clusters=2, cluster_regs=32, shared_regs=32, lp=0)

    def test_with_ports(self):
        rf = RFConfig.parse("4C16S16").with_ports(2, 1)
        assert (rf.lp, rf.sp) == (2, 1)
        assert rf.name == "4C16S16"

    def test_with_unbounded(self):
        rf = RFConfig.parse("4C16S16").with_unbounded_registers()
        assert rf.cluster_regs >= UNBOUNDED and rf.shared_regs >= UNBOUNDED

    def test_needs_move_ops_only_for_clustered(self):
        assert RFConfig.parse("4C32").needs_move_ops
        assert not RFConfig.parse("4C16S16").needs_move_ops
        assert not RFConfig.parse("S64").needs_move_ops

    def test_needs_loadr_storer_only_for_hierarchical(self):
        assert RFConfig.parse("4C16S16").needs_loadr_storer
        assert RFConfig.parse("1C64S64").needs_loadr_storer
        assert not RFConfig.parse("4C32").needs_loadr_storer

    def test_default_buses(self):
        assert RFConfig.parse("4C32").n_buses == 2
        assert RFConfig.parse("2C32").n_buses == 1

    def test_is_clustered_flag(self):
        assert RFConfig.parse("2C64").is_clustered
        assert not RFConfig.parse("1C64S64").is_clustered


class TestMachineConfig:
    def test_defaults(self):
        machine = MachineConfig()
        assert machine.n_fus == 8
        assert machine.n_mem_ports == 4
        assert machine.latency("fadd") == 4
        assert machine.latency("fdiv") == 17
        assert machine.latency("fsqrt") == 30
        assert machine.latency("load") == 2

    def test_occupancy_unpipelined(self):
        machine = MachineConfig()
        assert machine.occupancy("fadd") == 1
        assert machine.occupancy("fdiv") == machine.latency("fdiv")
        assert machine.occupancy("fsqrt") == machine.latency("fsqrt")

    def test_fus_per_cluster(self):
        machine = MachineConfig()
        assert machine.fus_per_cluster(RFConfig.parse("4C32")) == 2
        assert machine.fus_per_cluster(RFConfig.parse("8C16S16")) == 1
        assert machine.fus_per_cluster(RFConfig.parse("S64")) == 8

    def test_mem_ports_per_cluster(self):
        machine = MachineConfig()
        assert machine.mem_ports_per_cluster(RFConfig.parse("4C32")) == 1
        assert machine.mem_ports_per_cluster(RFConfig.parse("2C64")) == 2
        # Hierarchical: memory ports live on the shared bank.
        assert machine.mem_ports_per_cluster(RFConfig.parse("4C16S16")) == 0

    def test_too_many_clusters_rejected(self):
        machine = MachineConfig()
        with pytest.raises(ValueError):
            machine.validate_rf(RFConfig(n_clusters=8, cluster_regs=16, shared_regs=None))

    def test_uneven_split_rejected(self):
        machine = MachineConfig(n_fus=6, n_mem_ports=3)
        with pytest.raises(ValueError):
            machine.fus_per_cluster(RFConfig(n_clusters=4, cluster_regs=16, shared_regs=16))

    def test_scaled_resources(self):
        machine = MachineConfig().scaled(n_fus=12, n_mem_ports=6)
        assert machine.n_fus == 12 and machine.n_mem_ports == 6

    def test_scale_latencies(self):
        machine = MachineConfig().scale_latencies({"fadd": 6, "load": 4})
        assert machine.latency("fadd") == 6
        assert machine.latency("load") == 4
        assert machine.latency("fdiv") == 17  # untouched

    def test_missing_latency_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(latencies={"fadd": 4})


class TestHelpers:
    def test_is_unbounded(self):
        assert is_unbounded(UNBOUNDED)
        assert not is_unbounded(128)
        assert not is_unbounded(None)

    def test_effective_capacity(self):
        assert effective_capacity(None) == 0.0
        assert effective_capacity(64) == 64.0
        assert effective_capacity(UNBOUNDED) == float("inf")
