"""Tests for the register-file hardware model (CACTI-like fit + published data)."""

import math

import pytest

from repro.hwmodel import (
    PAPER_TABLE5,
    RegisterFileModel,
    bank_geometries,
    derive_hardware,
    published_spec,
    scaled_machine,
)
from repro.hwmodel.spec import BankGeometry
from repro.hwmodel.timing import clock_from_depth, logic_depth_from_access
from repro.machine import RFConfig, baseline_machine, config_by_name, table5_configs


class TestAnalyticalModel:
    def test_monotone_in_registers(self):
        model = RegisterFileModel()
        small = model.estimate(BankGeometry(32, 10, 6))
        large = model.estimate(BankGeometry(128, 10, 6))
        assert large.access_ns > small.access_ns
        assert large.area_mlambda2 > small.area_mlambda2

    def test_monotone_in_ports(self):
        model = RegisterFileModel()
        few = model.estimate(BankGeometry(64, 6, 4))
        many = model.estimate(BankGeometry(64, 20, 12))
        assert many.access_ns > few.access_ns
        assert many.area_mlambda2 > few.area_mlambda2

    def test_fit_quality_against_published_monolithic(self):
        # The analytical model should land within ~25 % of the paper's
        # published CACTI values for the monolithic banks.
        model = RegisterFileModel()
        published = {
            "S128": (BankGeometry(128, 20, 12), 1.145, 14.91),
            "S64": (BankGeometry(64, 20, 12), 1.021, 12.20),
            "S32": (BankGeometry(32, 20, 12), 0.685, 7.50),
        }
        for geometry, access, area in published.values():
            estimate = model.estimate(geometry)
            assert abs(estimate.access_ns - access) / access < 0.25
            assert abs(estimate.area_mlambda2 - area) / area < 0.35

    def test_degenerate_geometries_clamped(self):
        model = RegisterFileModel()
        estimate = model.estimate(BankGeometry(1, 1, 0))
        assert estimate.access_ns > 0
        assert estimate.area_mlambda2 > 0


class TestBankGeometries:
    def test_monolithic_ports(self):
        machine = baseline_machine()
        geometry = bank_geometries(machine, config_by_name("S128"))["shared"]
        assert geometry.read_ports == 2 * 8 + 4
        assert geometry.write_ports == 8 + 4
        assert geometry.registers == 128

    def test_clustered_ports(self):
        machine = baseline_machine()
        geoms = bank_geometries(machine, config_by_name("4C32"))
        cluster = geoms["cluster"]
        assert geoms["shared"] is None
        # 2 FUs (2 reads + 1 write each) + 1 memory port + bus ports.
        assert cluster.read_ports == 2 * 2 + 1 + 1
        assert cluster.write_ports == 2 + 1 + 1

    def test_hierarchical_ports(self):
        machine = baseline_machine()
        geoms = bank_geometries(machine, config_by_name("4C16S16").with_ports(2, 1))
        assert geoms["cluster"].write_ports == 2 + 2       # FUs + lp
        assert geoms["shared"].read_ports == 4 + 4 * 2     # mem ports + x*lp
        assert geoms["shared"].write_ports == 4 + 4 * 1    # mem ports + x*sp

    def test_unbounded_register_cap(self):
        machine = baseline_machine()
        rf = config_by_name("4C16S16").with_unbounded_registers()
        geoms = bank_geometries(machine, rf, register_cap=512)
        assert geoms["shared"].registers == 512


class TestPublished:
    def test_every_table5_config_has_published_values(self):
        for rf in table5_configs():
            assert rf.name in PAPER_TABLE5
            assert published_spec(rf.name) is not None

    def test_published_values_match_paper_rows(self):
        spec = published_spec("4C32")
        assert spec.clock_ns == pytest.approx(0.497)
        assert spec.fu_latency == 6
        assert spec.mem_hit_latency == 4
        assert spec.total_area_mlambda2 == pytest.approx(4.28, abs=0.05)

        spec = published_spec("8C16S16")
        assert spec.clock_ns == pytest.approx(0.389)
        assert spec.fu_latency == 8
        assert spec.mem_hit_latency == 5
        assert spec.loadr_latency == 2

    def test_unknown_config_returns_none(self):
        assert published_spec("3C17S5") is None


class TestTimingDerivation:
    def test_clock_formula_matches_paper(self):
        # clock = depth * FO4 + overhead reproduces every Table 5 pair.
        for row in PAPER_TABLE5.values():
            if row.name == "1C64S64":
                continue  # derived row, not printed in Table 5
            assert clock_from_depth(row.logic_depth_fo4) == pytest.approx(
                row.clock_ns, abs=1e-9
            )

    def test_logic_depth_monotone(self):
        assert logic_depth_from_access(1.2) > logic_depth_from_access(0.4)

    def test_derive_prefers_published(self):
        machine = baseline_machine()
        spec = derive_hardware(machine, config_by_name("S128"))
        assert spec.from_published
        assert spec.clock_ns == pytest.approx(1.181)

    def test_derive_analytical_for_custom_config(self):
        machine = baseline_machine()
        rf = RFConfig(n_clusters=4, cluster_regs=8, shared_regs=32)
        spec = derive_hardware(machine, rf)
        assert not spec.from_published
        assert spec.clock_ns > 0
        assert spec.total_area_mlambda2 > 0
        assert spec.loadr_latency is not None

    def test_smaller_banks_give_faster_clock(self):
        machine = baseline_machine()
        small = derive_hardware(machine, config_by_name("8C16S16"))
        large = derive_hardware(machine, config_by_name("S128"))
        assert small.clock_ns < large.clock_ns

    def test_scaled_machine_applies_latencies(self):
        machine = baseline_machine()
        scaled, spec = scaled_machine(machine, config_by_name("8C16S16"))
        assert scaled.latency("fadd") == spec.fu_latency == 8
        assert scaled.latency("load") == spec.mem_hit_latency == 5
        assert scaled.latency("loadr") == spec.loadr_latency == 2
        # Division scales proportionally to the pipelined FP latency.
        assert scaled.latency("fdiv") == round(17 * 8 / 4)

    def test_miss_latency_cycles(self):
        spec = published_spec("S128")
        assert spec.miss_latency_cycles(10.0) == round(10.0 / 1.181)

    def test_latency_overrides_keep_store_fast(self):
        spec = published_spec("8C16S16")
        overrides = spec.latency_overrides()
        assert overrides["store"] == spec.mem_hit_latency - 1
