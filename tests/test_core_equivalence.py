"""Differential lockstep harness: object core vs. array core.

The array-native backends (:mod:`repro.core.arraycore`) promise *bit
identity* with the reference object backends -- same probe answers, same
set-insertion order in ``conflicting_nodes`` (the force-and-eject path
iterates that set), same dictionary key order in ``usage()``, same
lifetime endpoints.  These tests drive randomly generated
reserve/release/eject/forget sequences through both backends **in
lockstep** and compare the full observable state after every single
step, so any divergence is caught at the step that introduced it (not
three spills later as a different final schedule).

``tests/test_corpus.py`` complements this with end-to-end bit identity
on every frozen corpus case; ``repro fuzz --core array`` covers the
whole pipeline.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.arraycore import ArrayMRT, ArrayPressureTracker
from repro.core.mrt import ModuloReservationTable
from repro.core.pressure import PressureTracker
from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType
from repro.machine.presets import baseline_machine, config_by_name
from repro.machine.resources import GLOBAL, SHARED, ResourceKind, ResourceUse

# --------------------------------------------------------------------------- #
# MRT lockstep
# --------------------------------------------------------------------------- #
#: A small but adversarial inventory: per-cluster FUs, a shared memory
#: port, cluster ports, a global bus -- plus a zero-capacity resource
#: (always full) and, in generated uses, a key outside the inventory.
_INVENTORY = [
    (ResourceKind.FU, 0),
    (ResourceKind.FU, 1),
    (ResourceKind.MEM, SHARED),
    (ResourceKind.LP, 0),
    (ResourceKind.SP, 1),
    (ResourceKind.BUS, GLOBAL),
]
_UNKNOWN_KEY = (ResourceKind.MEM, 7)


def _use_strategy():
    return st.builds(
        ResourceUse,
        key=st.sampled_from(_INVENTORY + [_UNKNOWN_KEY]),
        offset=st.integers(min_value=0, max_value=6),
        duration=st.integers(min_value=1, max_value=4),
    )


def _uses_strategy():
    return st.lists(_use_strategy(), min_size=1, max_size=3)


@st.composite
def _mrt_script(draw):
    ii = draw(st.integers(min_value=1, max_value=6))
    counts = {
        key: draw(st.integers(min_value=0, max_value=3)) for key in _INVENTORY
    }
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("reserve"),
                    st.integers(min_value=0, max_value=9),   # node id
                    _uses_strategy(),
                    st.integers(min_value=0, max_value=24),  # cycle
                ),
                st.tuples(
                    st.just("release"),
                    st.integers(min_value=0, max_value=9),
                ),
                st.tuples(
                    st.just("probe"),
                    _uses_strategy(),
                    st.integers(min_value=0, max_value=24),
                ),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return ii, counts, steps


def _assert_mrt_states_equal(obj: ModuloReservationTable, arr: ArrayMRT) -> None:
    assert obj.utilization() == arr.utilization()
    assert list(obj.utilization()) == list(arr.utilization())
    for node_id in range(10):
        assert obj.holds(node_id) == arr.holds(node_id)
        assert Counter(obj.held_keys(node_id)) == Counter(arr.held_keys(node_id))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_mrt_script())
def test_mrt_lockstep_equivalence(script):
    """Both reservation tables answer every probe identically, step by step."""
    ii, counts, steps = script
    obj = ModuloReservationTable(ii, counts)
    arr = ArrayMRT(ii, counts)
    for step in steps:
        if step[0] == "reserve":
            _tag, node_id, uses, cycle = step
            feasible = obj.can_reserve(uses, cycle)
            assert arr.can_reserve(uses, cycle) == feasible
            # conflicting_nodes must agree as a set AND in iteration
            # order: the eject loop iterates it, so a different element
            # order would eject in a different order.
            obj_conflicts = obj.conflicting_nodes(uses, cycle)
            arr_conflicts = arr.conflicting_nodes(uses, cycle)
            assert obj_conflicts == arr_conflicts
            assert list(obj_conflicts) == list(arr_conflicts)
            if feasible and not obj.holds(node_id):
                obj.reserve(node_id, uses, cycle)
                arr.reserve(node_id, uses, cycle)
            elif not feasible:
                with pytest.raises(ValueError):
                    obj.reserve(node_id, uses, cycle)
                with pytest.raises(ValueError):
                    arr.reserve(node_id, uses, cycle)
        elif step[0] == "release":
            _tag, node_id = step
            obj.release(node_id)   # idempotent, unknown ids included
            arr.release(node_id)
        else:
            _tag, uses, cycle = step
            assert obj.can_reserve(uses, cycle) == arr.can_reserve(uses, cycle)
            window = list(range(cycle, cycle + 2 * ii + 1))
            assert obj.first_free_cycle(uses, window) == arr.first_free_cycle(
                uses, window
            )
        _assert_mrt_states_equal(obj, arr)


def test_mrt_empty_uses_window_scan():
    """No uses -> the first candidate cycle, in both backends."""
    counts = {(ResourceKind.FU, 0): 1}
    obj = ModuloReservationTable(4, counts)
    arr = ArrayMRT(4, counts)
    assert obj.first_free_cycle([], [7, 8]) == arr.first_free_cycle([], [7, 8]) == 7
    assert obj.first_free_cycle([], []) is None
    assert arr.first_free_cycle([], []) is None


def test_mrt_rejects_bad_ii():
    with pytest.raises(ValueError):
        ModuloReservationTable(0, {})
    with pytest.raises(ValueError):
        ArrayMRT(0, {})


# --------------------------------------------------------------------------- #
# Pressure-tracker lockstep
# --------------------------------------------------------------------------- #
_PRESSURE_CONFIGS = ["S64", "4C32", "4C16S16", "2C32S32"]
_OPS = [
    OpType.FADD, OpType.FMUL, OpType.FADD, OpType.LOAD,
    OpType.STORE, OpType.LIVE_IN,
]


@st.composite
def _pressure_script(draw):
    config_name = draw(st.sampled_from(_PRESSURE_CONFIGS))
    ii = draw(st.integers(min_value=1, max_value=6))
    n_nodes = draw(st.integers(min_value=2, max_value=10))
    ops = [draw(st.sampled_from(_OPS)) for _ in range(n_nodes)]
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_nodes - 1),
                st.integers(min_value=0, max_value=n_nodes - 1),
                st.integers(min_value=0, max_value=2),   # distance
            ),
            max_size=2 * n_nodes,
        )
    )
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("place"),
                    st.integers(min_value=0, max_value=n_nodes - 1),
                    st.integers(min_value=0, max_value=20),  # cycle
                    st.integers(min_value=0, max_value=3),   # cluster (mod n)
                ),
                st.tuples(st.just("eject"), st.integers(min_value=0, max_value=n_nodes - 1)),
                st.tuples(
                    st.just("add_edge"),
                    st.integers(min_value=0, max_value=n_nodes - 1),
                    st.integers(min_value=0, max_value=n_nodes - 1),
                    st.integers(min_value=0, max_value=2),
                ),
                st.tuples(
                    st.just("remove_edge"),
                    st.integers(min_value=0, max_value=n_nodes - 1),
                    st.integers(min_value=0, max_value=n_nodes - 1),
                ),
                st.tuples(st.just("forget"), st.integers(min_value=0, max_value=n_nodes - 1)),
                st.tuples(st.just("probe")),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return config_name, ii, ops, edges, steps


def _assert_trackers_equal(obj: PressureTracker, arr: ArrayPressureTracker) -> None:
    obj_usage = obj.usage()
    arr_usage = arr.usage()
    assert obj_usage == arr_usage
    assert list(obj_usage) == list(arr_usage)
    obj_lifetimes = obj.lifetimes_by_bank()
    arr_lifetimes = arr.lifetimes_by_bank()
    assert list(obj_lifetimes) == list(arr_lifetimes)
    # NamedTuple equality covers node, bank and both lifetime endpoints.
    assert obj_lifetimes == arr_lifetimes


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_pressure_script())
def test_pressure_lockstep_equivalence(script):
    """Both trackers agree on usage and lifetime endpoints after every event.

    Both trackers observe the *same* graph (two listeners) and share the
    same ``times``/``clusters`` dictionaries, exactly like a pair of
    :class:`~repro.core.partial.PartialSchedule` backends would; the
    script then replays the full event alphabet of the scheduler --
    place, eject (``on_remove`` fires *before* the times entry goes
    away, mirroring ``PartialSchedule.remove``), structural edge edits
    from spilling/communication re-routing, and node removal.
    """
    config_name, ii, ops, edges, steps = script
    rf = config_by_name(config_name)
    machine = baseline_machine()
    n_clusters = max(1, rf.n_clusters)

    graph = DepGraph()
    node_ids = [graph.add_node(op) for op in ops]
    for src_pos, dst_pos, distance in edges:
        src, dst = node_ids[src_pos], node_ids[dst_pos]
        if src != dst and dst not in dict(graph.flow_consumers(src)):
            graph.add_edge(src, dst, distance=distance, kind="flow")

    times: dict = {}
    clusters: dict = {}
    obj = PressureTracker(graph, ii, rf, machine.latency, times, clusters)
    arr = ArrayPressureTracker(graph, ii, rf, machine.latency, times, clusters)

    for step in steps:
        tag = step[0]
        if tag == "place":
            _tag, pos, cycle, cluster = step
            node_id = node_ids[pos]
            if node_id not in graph or node_id in times:
                continue
            if graph.node(node_id).op is OpType.LIVE_IN:
                continue   # pseudo ops are never scheduled
            times[node_id] = cycle
            clusters[node_id] = cluster % n_clusters
            obj.on_place(node_id)
            arr.on_place(node_id)
        elif tag == "eject":
            _tag, pos = step
            node_id = node_ids[pos]
            if node_id not in times:
                continue
            # PartialSchedule.remove notifies while times still holds the
            # node, then deletes the entries -- mirror that order.
            obj.on_remove(node_id)
            arr.on_remove(node_id)
            del times[node_id]
            del clusters[node_id]
        elif tag == "add_edge":
            _tag, src_pos, dst_pos, distance = step
            src, dst = node_ids[src_pos], node_ids[dst_pos]
            if src == dst or src not in graph or dst not in graph:
                continue
            graph.add_edge(src, dst, distance=distance, kind="flow")
        elif tag == "remove_edge":
            _tag, src_pos, dst_pos = step
            src, dst = node_ids[src_pos], node_ids[dst_pos]
            if src not in graph or dst not in graph:
                continue
            graph.remove_edge(src, dst)
        elif tag == "forget":
            _tag, pos = step
            node_id = node_ids[pos]
            if node_id not in graph or len(graph) <= 1:
                continue
            if node_id in times:
                obj.on_remove(node_id)
                arr.on_remove(node_id)
                del times[node_id]
                del clusters[node_id]
            graph.remove_node(node_id)
        _assert_trackers_equal(obj, arr)

    obj.detach()
    arr.detach()
    assert not graph._listeners


def test_pressure_trackers_share_partial_schedule_contract():
    """A tiny hand-built chain agrees across both trackers end to end."""
    rf = config_by_name("4C16S16")
    machine = baseline_machine()
    graph = DepGraph()
    live_in = graph.add_node(OpType.LIVE_IN)
    load = graph.add_node(OpType.LOAD)
    mul = graph.add_node(OpType.FMUL)
    store = graph.add_node(OpType.STORE)
    graph.add_edge(live_in, mul, kind="flow")
    graph.add_edge(load, mul, kind="flow")
    graph.add_edge(mul, store, distance=1, kind="flow")

    times: dict = {}
    clusters: dict = {}
    obj = PressureTracker(graph, 3, rf, machine.latency, times, clusters)
    arr = ArrayPressureTracker(graph, 3, rf, machine.latency, times, clusters)
    for node_id, cycle, cluster in [(load, 0, 0), (mul, 4, 1), (store, 6, 1)]:
        times[node_id] = cycle
        clusters[node_id] = cluster
        obj.on_place(node_id)
        arr.on_place(node_id)
        _assert_trackers_equal(obj, arr)
    # The live-in charges one whole-loop register in the mul's bank.
    assert obj.usage() == arr.usage()
    assert arr.usage()[1] >= 1
