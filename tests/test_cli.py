"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_arguments(self):
        args = build_parser().parse_args(["schedule", "daxpy", "4C16S16", "--code"])
        assert args.command == "schedule"
        assert args.kernel == "daxpy"
        assert args.code and not args.registers

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "nope", "S64"])

    def test_reproduce_targets(self):
        args = build_parser().parse_args(["reproduce", "table5"])
        assert args.target == "table5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "table99"])

    def test_fuzz_arguments_and_durations(self):
        args = build_parser().parse_args(
            ["fuzz", "--seeds", "25", "--budget", "60s", "--configs", "S64"]
        )
        assert args.command == "fuzz"
        assert args.seeds == 25
        assert args.budget == 60.0
        assert args.configs == ["S64"]
        assert build_parser().parse_args(["fuzz", "--budget", "2m"]).budget == 120.0
        assert build_parser().parse_args(["fuzz", "--budget", "90"]).budget == 90.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--budget", "soon"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--budget", "-5s"])


class TestCommands:
    def test_schedule_command(self, capsys):
        assert main(["schedule", "daxpy", "2C32S32", "--registers", "--code"]) == 0
        out = capsys.readouterr().out
        assert "II=" in out
        assert "register allocation" in out
        assert "kernel:" in out

    def test_evaluate_command(self, capsys):
        assert main(["evaluate", "S64", "4C32S16", "--loops", "6"]) == 0
        out = capsys.readouterr().out
        assert "ranking" in out
        assert "4C32S16" in out

    def test_reproduce_table5(self, capsys):
        assert main(["reproduce", "table5"]) == 0
        out = capsys.readouterr().out
        assert "8C16S16" in out

    def test_reproduce_figure1_small(self, capsys):
        assert main(["reproduce", "figure1", "--loops", "8"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out or "ipc" in out

    def test_evaluate_with_jobs(self, capsys):
        assert main(["evaluate", "S64", "4C16S16", "--loops", "4", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "ranking" in out

    def test_reproduce_cache_dir_persists_and_reproduces(self, capsys, tmp_path):
        """--cache DIR must persist entries even though an empty EvalCache
        is falsy (regression: ``cache or EvalCache()`` dropped it)."""
        cache_dir = tmp_path / "cache"
        assert main(["reproduce", "table4", "--loops", "4",
                     "--cache", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        assert list(cache_dir.rglob("*.pkl"))
        assert main(["reproduce", "table4", "--loops", "4",
                     "--cache", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_fuzz_smoke(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--base-seed", "2003",
                     "--no-shrink"]) == 0
        out = capsys.readouterr().out
        assert "2 case(s)" in out
        assert "0 failure(s)" in out

    def test_fuzz_replay_roundtrip(self, capsys, tmp_path):
        from repro.machine import baseline_machine, config_by_name
        from repro.verify.corpus import CorpusCase, save_case
        from repro.workloads.kernels import build_kernel

        case = CorpusCase(
            loop=build_kernel("daxpy"),
            rf=config_by_name("S64"),
            machine=baseline_machine(),
            config_name="S64",
        )
        path = save_case(case, tmp_path / "replay.json")
        assert main(["fuzz", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok (expected ok)" in out


class TestSessionBackedCommands:
    def test_schedule_json_output(self, capsys):
        import json

        from repro import serialize

        assert main(["schedule", "daxpy", "4C16S16", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        serialize.validate(envelope, expect_type="schedule_result")
        assert envelope["data"]["success"] is True

    def test_commands_emit_no_deprecation_warnings(self, capsys):
        # The CLI moved onto the session layer; only the v1 shims warn.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["schedule", "daxpy", "S64"]) == 0
            assert main(["evaluate", "S64", "--loops", "2"]) == 0
            assert main(["reproduce", "table4", "--loops", "2"]) == 0
        capsys.readouterr()

    def test_schedule_warns_on_noop_jobs(self, capsys):
        import pytest as _pytest

        with _pytest.warns(UserWarning, match="no effect"):
            assert main(["schedule", "daxpy", "S64", "--jobs", "4"]) == 0
        capsys.readouterr()


class TestPolicyFlags:
    def test_schedule_with_policy(self, capsys):
        from repro.cli import main

        assert main(["schedule", "daxpy", "4C16S16",
                     "--policy", "mirs_rr_cluster"]) == 0
        out = capsys.readouterr().out
        assert "daxpy" in out

    def test_unknown_policy_rejected(self):
        import pytest as _pytest

        from repro.cli import build_parser

        with _pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "daxpy", "S64",
                                       "--policy", "nope"])

    def test_reproduce_ablation_policies_target(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["reproduce", "ablation_policies"])
        assert args.target == "ablation_policies"

    def test_fuzz_policies_all_expansion(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seeds", "2", "--base-seed", "2003",
                     "--policies", "mirs_linear_ii", "--no-shrink"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out


class TestWorkbenchTierFlags:
    def test_loops_beyond_tier_errors_with_available_sizes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["evaluate", "S64", "--loops", "300", "--tier", "small"])
        message = str(excinfo.value)
        assert "48 loops" in message
        assert "full (1258)" in message  # the fix: report sizes, not truncate

    def test_loops_beyond_default_standard_tier_errors(self):
        with pytest.raises(SystemExit, match="256 loops"):
            main(["evaluate", "S64", "--loops", "257"])

    def test_tier_choices_are_validated_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "S64", "--tier", "huge"])

    def test_evaluate_with_explicit_tier(self, capsys):
        assert main(["evaluate", "S64", "--loops", "6", "--tier", "tiny"]) == 0
        assert "ranking" in capsys.readouterr().out


class TestCheckpointFlags:
    def test_evaluate_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ck")
        argv = ["evaluate", "S64", "--loops", "6", "--tier", "tiny",
                "--checkpoint", checkpoint, "--shard-size", "2"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_resume_without_checkpoint_errors(self):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
            main(["evaluate", "S64", "--loops", "4", "--resume"])

    def test_resume_into_empty_directory_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no completed shards"):
            main(["evaluate", "S64", "--loops", "4",
                  "--checkpoint", str(tmp_path / "empty"), "--resume"])

    def test_reproduce_accepts_checkpoint(self, capsys, tmp_path):
        assert main(["reproduce", "table3", "--loops", "4",
                     "--checkpoint", str(tmp_path / "ck")]) == 0
        assert "Table 3" in capsys.readouterr().out
        # at least one shard envelope was persisted
        assert list((tmp_path / "ck").glob("*/*.json"))


class TestTierDefaultLoops:
    @pytest.fixture
    def compare_spy(self, monkeypatch):
        """Capture the n_loops each evaluate invocation resolves to."""
        from repro.session import Session

        seen = {}

        def spy(self, configs, **kwargs):
            seen.update(kwargs)
            workbench = self._workbench(
                kwargs.get("loops"), kwargs.get("n_loops"),
                kwargs.get("seed", 2003), kwargs.get("tier"),
            )
            seen["resolved_loops"] = len(workbench)

            class _Table:
                def render(self):
                    return "spy table"

            return {"table": _Table(), "ranking": ["S64"], "reports": {}}

        monkeypatch.setattr(Session, "compare_configurations", spy)
        return seen

    def test_explicit_tier_without_loops_evaluates_whole_tier(
        self, capsys, compare_spy
    ):
        # '--tier tiny' with no --loops must mean all 16 loops of the
        # tier, not the historical 32-loop default (which would even
        # exceed the tier).
        assert main(["evaluate", "S64", "--tier", "tiny"]) == 0
        assert compare_spy["resolved_loops"] == 16
        capsys.readouterr()

    def test_no_tier_keeps_the_32_loop_default(self, capsys, compare_spy):
        assert main(["evaluate", "S64"]) == 0
        assert compare_spy["n_loops"] == 32
        assert compare_spy["resolved_loops"] == 32
        capsys.readouterr()


class TestResumeSideEffects:
    def test_resume_rejection_does_not_create_the_directory(self, tmp_path):
        missing = tmp_path / "typo" / "ck"
        with pytest.raises(SystemExit, match="no completed shards"):
            main(["evaluate", "S64", "--loops", "4",
                  "--checkpoint", str(missing), "--resume"])
        assert not missing.exists()
