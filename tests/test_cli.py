"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_arguments(self):
        args = build_parser().parse_args(["schedule", "daxpy", "4C16S16", "--code"])
        assert args.command == "schedule"
        assert args.kernel == "daxpy"
        assert args.code and not args.registers

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "nope", "S64"])

    def test_reproduce_targets(self):
        args = build_parser().parse_args(["reproduce", "table5"])
        assert args.target == "table5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "table99"])


class TestCommands:
    def test_schedule_command(self, capsys):
        assert main(["schedule", "daxpy", "2C32S32", "--registers", "--code"]) == 0
        out = capsys.readouterr().out
        assert "II=" in out
        assert "register allocation" in out
        assert "kernel:" in out

    def test_evaluate_command(self, capsys):
        assert main(["evaluate", "S64", "4C32S16", "--loops", "6"]) == 0
        out = capsys.readouterr().out
        assert "ranking" in out
        assert "4C32S16" in out

    def test_reproduce_table5(self, capsys):
        assert main(["reproduce", "table5"]) == 0
        out = capsys.readouterr().out
        assert "8C16S16" in out

    def test_reproduce_figure1_small(self, capsys):
        assert main(["reproduce", "figure1", "--loops", "8"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out or "ipc" in out

    def test_evaluate_with_jobs(self, capsys):
        assert main(["evaluate", "S64", "4C16S16", "--loops", "4", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "ranking" in out

    def test_reproduce_cache_dir_persists_and_reproduces(self, capsys, tmp_path):
        """--cache DIR must persist entries even though an empty EvalCache
        is falsy (regression: ``cache or EvalCache()`` dropped it)."""
        cache_dir = tmp_path / "cache"
        assert main(["reproduce", "table4", "--loops", "4",
                     "--cache", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        assert list(cache_dir.rglob("*.pkl"))
        assert main(["reproduce", "table4", "--loops", "4",
                     "--cache", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
