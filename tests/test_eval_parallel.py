"""Tests for the parallel scheduling engine and the evaluation cache.

The contract under test:

* ``schedule_suite(..., jobs=N)`` returns results *identical* to the
  serial path (same schedules, same metrics, same order) for any N;
* a warm :class:`~repro.eval.cache.EvalCache` makes re-evaluation skip
  the scheduler entirely (asserted with a spy on
  :meth:`SchedulerEngine.schedule_loop`);
* cache keys are content-addressed: they survive regenerating the same
  workbench, and change whenever the loop, the configuration or any
  scheduling knob changes.
"""

import pytest

from repro import api
from repro.core.engine import SchedulerEngine
from repro.eval.cache import EvalCache, schedule_key
from repro.eval.experiments import schedule_suite
from repro.eval.parallel import chunk_indices, resolve_jobs
from repro.machine.presets import baseline_machine, config_by_name
from repro.simulator.prefetch import PrefetchPolicy
from repro.workloads.suite import perfect_club_like_suite, tiny_suite

SEED = 2003


def run_signature(run):
    """Every deterministic field of one LoopRun (wall time excluded)."""
    result = run.result
    return (
        run.loop.name,
        run.loop.fingerprint(),
        result.loop_name,
        result.config_name,
        result.success,
        result.ii,
        result.mii,
        result.stage_count,
        tuple(
            sorted(
                (node_id, placed.op.mnemonic, placed.cycle, placed.cluster)
                for node_id, placed in result.assignments.items()
            )
        ),
        tuple(sorted(result.register_usage.items())),
        result.memory_ops_per_iteration,
        result.n_spill_memory_ops,
        result.n_comm_ops,
        result.restarts,
        result.bound,
        run.cycles,
        run.traffic,
        run.time_ns,
    )


def signatures(runs):
    return [run_signature(run) for run in runs]


@pytest.fixture
def schedule_calls(monkeypatch):
    """Count every in-process SchedulerEngine.schedule_loop invocation."""
    calls = {"n": 0}
    original = SchedulerEngine.schedule_loop

    def spy(self, loop):
        calls["n"] += 1
        return original(self, loop)

    monkeypatch.setattr(SchedulerEngine, "schedule_loop", spy)
    return calls


# --------------------------------------------------------------------------- #
# Parallel execution
# --------------------------------------------------------------------------- #
class TestParallelIdentity:
    def test_jobs4_identical_on_64_loop_workbench(self):
        loops = perfect_club_like_suite(64, seed=SEED)
        serial = schedule_suite(loops, "S64")
        parallel = schedule_suite(loops, "S64", jobs=4)
        assert signatures(parallel) == signatures(serial)

    def test_parallel_identical_on_hierarchical_config(self):
        # The hierarchical clustered path exercises communication
        # insertion and spilling, the code most sensitive to ordering.
        loops = tiny_suite()[:10]
        serial = schedule_suite(loops, "4C16S16")
        parallel = schedule_suite(loops, "4C16S16", jobs=2)
        assert signatures(parallel) == signatures(serial)

    def test_parallel_identical_with_prefetch(self):
        loops = tiny_suite()[:6]
        policy = PrefetchPolicy(enabled=True)
        serial = schedule_suite(loops, "4C32S16", prefetch=policy)
        parallel = schedule_suite(loops, "4C32S16", prefetch=policy, jobs=2)
        assert signatures(parallel) == signatures(serial)

    def test_results_stay_in_workbench_order(self):
        loops = tiny_suite()[:8]
        runs = schedule_suite(loops, "S64", jobs=3)
        assert [run.loop.name for run in runs] == [loop.name for loop in loops]

    def test_unknown_scheduler_rejected_before_fanout(self):
        loops = tiny_suite()[:2]
        with pytest.raises(ValueError):
            schedule_suite(loops, "S64", scheduler="bogus", jobs=2)

    def test_jobs1_never_touches_the_pool(self, monkeypatch):
        import repro.eval.parallel as parallel_mod

        class Boom:  # pragma: no cover - failure path
            def __init__(self, *args, **kwargs):
                raise AssertionError("jobs=1 must stay off the process pool")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", Boom)
        loops = tiny_suite()[:3]
        runs = schedule_suite(loops, "S64", jobs=1)
        assert len(runs) == 3


class TestJobsAndChunks:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) == resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_chunk_indices_partition_in_order(self):
        for n_items, n_chunks in [(10, 3), (5, 5), (3, 8), (1, 1), (16, 4)]:
            chunks = chunk_indices(n_items, n_chunks)
            flattened = [i for chunk in chunks for i in chunk]
            assert flattened == list(range(n_items))
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1


# --------------------------------------------------------------------------- #
# Caching
# --------------------------------------------------------------------------- #
class TestEvalCache:
    def test_warm_cache_skips_scheduling(self, schedule_calls):
        loops = tiny_suite()[:6]
        cache = EvalCache()
        cold = schedule_suite(loops, "S64", cache=cache)
        assert schedule_calls["n"] == len(loops)
        warm = schedule_suite(loops, "S64", cache=cache)
        assert schedule_calls["n"] == len(loops)  # zero new calls
        assert signatures(warm) == signatures(cold)
        assert cache.hits == len(loops)
        assert cache.stores == len(loops)

    def test_partially_warm_cache_schedules_only_misses(self, schedule_calls):
        loops = tiny_suite()[:8]
        cache = EvalCache()
        schedule_suite(loops[:4], "S64", cache=cache)
        assert schedule_calls["n"] == 4
        runs = schedule_suite(loops, "S64", cache=cache)
        assert schedule_calls["n"] == 8  # only the 4 missing loops
        assert [run.loop.name for run in runs] == [loop.name for loop in loops]

    def test_duplicate_problems_in_one_call_scheduled_once(self, schedule_calls):
        loop = tiny_suite()[0]
        cache = EvalCache()
        runs = schedule_suite([loop, loop.copy(), loop.copy()], "S64", cache=cache)
        assert schedule_calls["n"] == 1  # one representative per unique problem
        assert len(runs) == 3
        assert signatures(runs)[0] == signatures(runs)[1] == signatures(runs)[2]

    def test_cache_is_regeneration_stable(self, schedule_calls):
        # The same (seed, n) workbench built twice produces the same keys,
        # so a cache warmed by one build serves the other.
        cache = EvalCache()
        schedule_suite(perfect_club_like_suite(6, seed=SEED), "S64", cache=cache)
        before = schedule_calls["n"]
        schedule_suite(perfect_club_like_suite(6, seed=SEED), "S64", cache=cache)
        assert schedule_calls["n"] == before

    def test_warm_compare_configurations_zero_schedule_calls(self, schedule_calls):
        cache = EvalCache()
        cold = api.compare_configurations(
            ["S64", "4C16S16"], n_loops=4, seed=SEED, cache=cache
        )
        assert schedule_calls["n"] > 0
        calls_after_cold = schedule_calls["n"]
        warm = api.compare_configurations(
            ["S64", "4C16S16"], n_loops=4, seed=SEED, cache=cache
        )
        assert schedule_calls["n"] == calls_after_cold  # zero new calls
        assert warm["ranking"] == cold["ranking"]
        for name, report in warm["reports"].items():
            assert signatures(report.runs) == signatures(cold["reports"][name].runs)

    def test_parallel_run_populates_cache(self, schedule_calls):
        loops = tiny_suite()[:6]
        cache = EvalCache()
        cold = schedule_suite(loops, "S64", jobs=2, cache=cache)
        assert cache.stores == len(loops)
        warm = schedule_suite(loops, "S64", cache=cache)
        # All scheduling happened in worker processes (cold) or not at all
        # (warm): the in-process scheduler was never invoked.
        assert schedule_calls["n"] == 0
        assert signatures(warm) == signatures(cold)

    def test_disk_cache_survives_a_fresh_process_view(self, tmp_path, schedule_calls):
        loops = tiny_suite()[:4]
        schedule_suite(loops, "S64", cache=EvalCache(tmp_path))
        assert schedule_calls["n"] == 4
        # A brand-new cache object only shares the directory -- like a
        # second CLI invocation with the same --cache DIR.
        fresh = EvalCache(tmp_path)
        schedule_suite(loops, "S64", cache=fresh)
        assert schedule_calls["n"] == 4  # served from disk
        assert fresh.hits == 4

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, schedule_calls):
        loops = tiny_suite()[:1]
        cache = EvalCache(tmp_path)
        schedule_suite(loops, "S64", cache=cache)
        for path in tmp_path.rglob("*.pkl"):
            path.write_bytes(b"not a pickle")
        fresh = EvalCache(tmp_path)
        runs = schedule_suite(loops, "S64", cache=fresh)
        assert runs[0].result.success
        assert schedule_calls["n"] == 2  # re-scheduled after the bad read

    def test_disk_write_failures_are_counted_and_warn_once(
        self, tmp_path, monkeypatch
    ):
        import pickle
        import warnings

        loops = tiny_suite()[:2]
        cache = EvalCache(tmp_path)

        def broken_dump(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(pickle, "dump", broken_dump)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            schedule_suite(loops, "S64", cache=cache)
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        # Every failed write is counted, but only the first one warns.
        assert cache.write_failures == 2
        assert len(runtime_warnings) == 1
        assert "could not persist" in str(runtime_warnings[0].message)
        # The failure is non-fatal: the in-memory tier still serves hits,
        # and the counter is observable through stats().
        stats = cache.stats()
        assert stats["write_failures"] == 2
        assert stats["stores"] == 2
        assert cache.get(next(iter(cache._memory))) is not None

    def test_successful_writes_do_not_count_as_failures(self, tmp_path):
        loops = tiny_suite()[:1]
        cache = EvalCache(tmp_path)
        schedule_suite(loops, "S64", cache=cache)
        assert cache.write_failures == 0
        assert cache.stats()["write_failures"] == 0


class TestCacheKeys:
    def setup_method(self):
        self.loops = tiny_suite()[:2]
        self.machine = baseline_machine()
        self.rf = config_by_name("4C16S16")

    def key(self, loop=None, rf=None, machine=None, **kwargs):
        return schedule_key(
            loop if loop is not None else self.loops[0],
            rf if rf is not None else self.rf,
            machine if machine is not None else self.machine,
            **kwargs,
        )

    def test_key_is_stable_for_equal_content(self):
        assert self.key() == self.key()
        assert self.key(loop=self.loops[0].copy()) == self.key()

    def test_key_changes_with_loop(self):
        assert self.key(loop=self.loops[1]) != self.key()
        mutated = self.loops[0].copy()
        mutated.trip_count += 1
        assert self.key(loop=mutated) != self.key()

    def test_key_changes_with_graph_structure(self):
        mutated = self.loops[0].copy()
        ids = mutated.graph.node_ids()
        edge = next(iter(mutated.graph.edges()))
        mutated.graph.remove_edge(edge.src, edge.dst)
        assert mutated.graph.node_ids() == ids  # only the edge changed
        assert self.key(loop=mutated) != self.key()

    def test_key_changes_with_configuration(self):
        assert self.key(rf=config_by_name("S64")) != self.key()
        assert self.key(rf=self.rf.with_ports(2, 2)) != self.key()
        assert self.key(machine=self.machine.scaled(n_fus=4, n_mem_ports=2)) != self.key()

    def test_key_changes_with_scheduling_knobs(self):
        assert self.key(budget_ratio=2.0) != self.key()
        assert self.key(scheduler="non_iterative") != self.key()
        assert self.key(scale_to_clock=False) != self.key()
        assert self.key(prefetch=PrefetchPolicy()) != self.key()
        assert self.key(prefetch=PrefetchPolicy(min_trip_count=8)) != self.key(
            prefetch=PrefetchPolicy()
        )

    def test_ineffective_prefetch_shares_the_key(self):
        # A disabled policy, and any policy without clock scaling, do the
        # same scheduling work as no policy -- same problem, same key.
        assert self.key(prefetch=PrefetchPolicy(enabled=False)) == self.key()
        assert self.key(
            prefetch=PrefetchPolicy(), scale_to_clock=False
        ) == self.key(scale_to_clock=False)

    def test_empty_cache_is_truthy(self):
        # __len__ would otherwise make an empty cache falsy, and
        # ``cache or EvalCache()`` call sites would drop it silently.
        assert EvalCache()


class TestLoopFingerprint:
    def test_copy_preserves_fingerprint(self):
        loop = tiny_suite()[0]
        assert loop.copy().fingerprint() == loop.fingerprint()

    def test_metadata_changes_fingerprint(self):
        loop = tiny_suite()[0].copy()
        base = loop.fingerprint()
        loop.times_entered += 1
        assert loop.fingerprint() != base

    def test_latency_override_changes_fingerprint(self):
        # Binding prefetching rewrites load latencies in place; the cache
        # must see prefetched and non-prefetched bodies as different loops.
        loop = tiny_suite()[0].copy()
        base = loop.fingerprint()
        load = next(op for op in loop.graph.nodes() if op.op.mnemonic == "load")
        load.latency_override = 99
        assert loop.fingerprint() != base
