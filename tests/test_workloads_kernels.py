"""Unit tests for the hand-written kernels and the loop builder."""

import pytest

from repro.ddg import OpType, compute_mii
from repro.ddg.analysis import recurrence_components
from repro.machine import MachineConfig, RFConfig, ResourceModel
from repro.workloads import KERNEL_BUILDERS, LoopBuilder, build_kernel, kernel_names


@pytest.fixture
def machine():
    return MachineConfig()


@pytest.fixture
def resources(machine):
    return ResourceModel(machine, RFConfig.parse("S128"))


class TestLoopBuilder:
    def test_daxpy_shape(self):
        b = LoopBuilder("test")
        a = b.live_in("a")
        x = b.load("x")
        y = b.load("y")
        ax = b.mul(a, x)
        s = b.add(ax, y)
        b.store("y", s)
        loop = b.build(trip_count=10)
        assert loop.n_operations == 6
        assert loop.n_memory_ops == 3
        assert loop.total_iterations == 10

    def test_carried_edge(self):
        b = LoopBuilder("acc")
        x = b.load("x")
        s = b.add(x, x)
        b.carried(s, s, distance=1)
        loop = b.build()
        assert loop.graph.edge(s, s).distance == 1

    def test_memory_order_edge(self):
        b = LoopBuilder("mem")
        x = b.load("x")
        st = b.store("y", x)
        ld2 = b.load("y")
        b.memory_order(st, ld2, distance=1)
        assert b.graph.edge(st, ld2).kind == "mem"

    def test_build_attributes(self):
        loop = LoopBuilder("k").build(category="custom")
        assert loop.attributes["category"] == "custom"


class TestKernels:
    def test_registry_and_names(self):
        assert len(KERNEL_BUILDERS) >= 25
        assert kernel_names() == list(KERNEL_BUILDERS)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            build_kernel("does_not_exist")

    @pytest.mark.parametrize("name", kernel_names())
    def test_every_kernel_builds_and_is_well_formed(self, name, machine, resources):
        loop = build_kernel(name)
        graph = loop.graph
        assert len(graph) > 0
        assert loop.trip_count > 0
        # Every kernel has at least one memory operation (they are loops
        # over arrays) and the MII is computable (no zero-distance cycles).
        assert loop.n_memory_ops >= 1
        breakdown = compute_mii(graph, resources, machine.latency)
        assert breakdown.mii >= 1
        # Loads always have at least one consumer.
        for op in graph.memory_operations():
            if op.op is OpType.LOAD:
                assert graph.successors(op.node_id)

    def test_reduction_kernels_have_recurrences(self):
        for name in ("dot_product", "vsum", "first_sum", "tridiagonal", "horner"):
            loop = build_kernel(name)
            # horner's recurrence is per-point (no loop-carried cycle), so it
            # is excluded from the cycle check.
            if name == "horner":
                continue
            assert recurrence_components(loop.graph), name

    def test_streaming_kernels_have_no_recurrences(self):
        for name in ("vadd", "daxpy", "first_difference", "rgb_to_luma"):
            assert not recurrence_components(build_kernel(name).graph), name

    def test_parameterized_kernels(self):
        small = build_kernel("fir_filter", taps=2)
        large = build_kernel("fir_filter", taps=8)
        assert len(large.graph) > len(small.graph)

    def test_division_kernels_use_divider(self):
        loop = build_kernel("normalize3")
        ops = {op.op for op in loop.graph.nodes()}
        assert OpType.FDIV in ops and OpType.FSQRT in ops

    def test_live_ins_used(self):
        loop = build_kernel("horner", degree=4)
        for inv in loop.graph.live_in_nodes():
            assert loop.graph.successors(inv.node_id)
