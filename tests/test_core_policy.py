"""Policy layer and engine tests.

Covers the policy registries and bundles, the II-search strategies
(including the bisection refinement pin test), the failure-path
introspection counters of :class:`ScheduleResult`, and end-to-end
validity of every registered bundle.
"""

import pytest

from repro.core import (
    MirsHC,
    PolicyBundle,
    SchedulerEngine,
    bundle_names,
    get_bundle,
    resolve_bundle,
    validate_schedule,
)
from repro.core.policy import (
    GeometricBisectIISearch,
    GeometricIISearch,
    LinearIISearch,
    cluster_policy,
    ii_search_policy,
    ordering_policy,
    spill_victim_policy,
)
from repro.core.lifetimes import ValueLifetime
from repro.core.spill import (
    victim_fewest_reloads,
    victim_latest_def,
    victim_longest_lifetime,
)
from repro.hwmodel import scaled_machine
from repro.machine import baseline_machine, config_by_name
from repro.workloads import build_kernel


def scaled(config_name):
    rf = config_by_name(config_name)
    machine, _ = scaled_machine(baseline_machine(), rf)
    return machine, rf


# --------------------------------------------------------------------------- #
# Registries and bundles
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_default_bundles_are_registered(self):
        names = bundle_names()
        assert "mirs_hc" in names
        assert "non_iterative" in names
        # At least two alternatives exist on every axis (tentpole claim).
        orderings = {get_bundle(n).ordering for n in names}
        clusters = {get_bundle(n).cluster for n in names}
        spills = {get_bundle(n).spill for n in names}
        searches = {get_bundle(n).ii_search for n in names}
        assert len(orderings) >= 3
        assert len(clusters) >= 3
        assert len(spills) >= 3
        assert len(searches) >= 3

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError, match="unknown policy bundle"):
            resolve_bundle("nope")
        with pytest.raises(ValueError, match="unknown ordering"):
            ordering_policy("nope")
        with pytest.raises(ValueError, match="unknown cluster-selection"):
            cluster_policy("nope")
        with pytest.raises(ValueError, match="unknown spill-victim"):
            spill_victim_policy("nope")
        with pytest.raises(ValueError, match="unknown II-search"):
            ii_search_policy("nope")

    def test_adhoc_bundle_is_validated(self):
        bundle = PolicyBundle("custom", ordering="asap", cluster="round_robin")
        assert resolve_bundle(bundle) is bundle
        with pytest.raises(ValueError):
            resolve_bundle(PolicyBundle("broken", ordering="nope"))

    def test_axes_identity(self):
        a = get_bundle("mirs_hc").axes()
        b = get_bundle("mirs_linear_ii").axes()
        assert a != b
        assert a == PolicyBundle("renamed").axes()


# --------------------------------------------------------------------------- #
# II-search policies
# --------------------------------------------------------------------------- #
class TestIISearch:
    def test_linear_advances_by_one(self):
        search = LinearIISearch()
        assert [search.next_ii(ii, n) for n, ii in enumerate([4, 5, 6], 1)] == [5, 6, 7]
        assert not search.refine_with_bisection

    def test_geometric_accelerates_after_three_failures(self):
        search = GeometricIISearch()
        assert search.next_ii(10, 1) == 11
        assert search.next_ii(11, 2) == 12
        assert search.next_ii(12, 3) == 13  # third restart is still linear
        assert search.next_ii(13, 4) == 13 + max(1, round(13 * 0.15))
        assert search.next_ii(100, 7) == 115
        assert not search.refine_with_bisection

    def test_bisect_flag(self):
        assert GeometricBisectIISearch().refine_with_bisection
        assert GeometricBisectIISearch().next_ii(100, 7) == 115  # same advance


class TestBisectionRefinement:
    """Satellite pin: accelerated restarts can no longer overshoot.

    Feasibility is stubbed to "II >= 15": the geometric search's linear
    phase fails 1..4, the accelerated jumps land past 15, and only the
    bisection refinement can recover the true minimum of 15.
    """

    FEASIBLE_FROM = 15

    def _engine(self, policy):
        machine, rf = scaled("S64")
        engine = SchedulerEngine(machine, rf, policy=policy)
        real_try = engine._try

        def gated_try(loop, ii, counters, order):
            if ii < self.FEASIBLE_FROM:
                return None
            return real_try(loop, ii, counters, order)

        engine._try = gated_try
        return engine

    def test_geometric_without_bisection_overshoots(self):
        engine = self._engine("mirs_geometric_ii")
        result = engine.schedule_loop(build_kernel("daxpy"))
        assert result.success
        assert result.ii > self.FEASIBLE_FROM  # the historical overshoot

    def test_default_bundle_bisects_back_to_minimum(self):
        engine = self._engine("mirs_hc")
        result = engine.schedule_loop(build_kernel("daxpy"))
        assert result.success
        assert result.ii == self.FEASIBLE_FROM
        # The refinement attempts are visible in the introspection trail,
        # and the final II is the last one it tried.
        assert result.attempted_iis[-1] == result.ii
        assert self.FEASIBLE_FROM in result.attempted_iis
        validate_schedule(result, engine.machine, engine.rf)

    def test_linear_needs_no_bisection(self):
        engine = self._engine("mirs_linear_ii")
        result = engine.schedule_loop(build_kernel("daxpy"))
        assert result.success
        assert result.ii == self.FEASIBLE_FROM
        # Strictly increasing by one: no refinement attempts appended.
        assert result.attempted_iis == sorted(set(result.attempted_iis))


# --------------------------------------------------------------------------- #
# Failure-path introspection (satellite)
# --------------------------------------------------------------------------- #
class TestFailurePath:
    def test_failure_reports_last_attempted_ii(self):
        machine, rf = scaled("S64")
        engine = SchedulerEngine(machine, rf, max_ii=22)
        engine._try = lambda loop, ii, counters, order: None  # nothing is feasible
        result = engine.schedule_loop(build_kernel("daxpy"))
        assert not result.success
        assert result.attempted_iis  # the trail is recorded
        assert result.attempted_iis == sorted(result.attempted_iis)
        # The reported II is the last II actually tried -- NOT the search
        # ceiling (the geometric jumps skip over max_ii rather than
        # landing on it).
        assert result.ii == result.attempted_iis[-1]
        assert result.ii != engine.max_ii
        # On a total failure every attempt counts as a restart (there is
        # no bisection phase without a feasible II).
        assert result.restarts == len(result.attempted_iis)

    def test_success_records_pressure_checks(self):
        machine, rf = scaled("4C16S16")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("daxpy"))
        assert result.success
        assert result.n_pressure_checks > 0
        assert result.n_full_sweeps == 0  # incremental tracker: no sweeps
        assert result.policy == "mirs_hc"

    def test_non_incremental_mode_sweeps(self):
        machine, rf = scaled("4C16S16")
        result = MirsHC(machine, rf, incremental_pressure=False).schedule_loop(
            build_kernel("daxpy")
        )
        assert result.success
        assert result.n_full_sweeps > 0


# --------------------------------------------------------------------------- #
# Spill-victim policies (unit level)
# --------------------------------------------------------------------------- #
class TestVictimPolicies:
    def test_orderings_differ_as_documented(self):
        from repro.ddg import DepGraph, OpType

        graph = DepGraph()
        a = graph.add_node(OpType.FADD)
        b = graph.add_node(OpType.FMUL)
        consumers = [graph.add_node(OpType.FADD) for _ in range(3)]
        # a: long lifetime, 3 consumers; b: short lifetime, 1 consumer.
        for c in consumers:
            graph.add_edge(a, c)
        graph.add_edge(b, consumers[0])
        long_many = ValueLifetime(a, 0, 0, 20)
        short_few = ValueLifetime(b, 0, 10, 14)
        pool = [short_few, long_many]
        assert victim_longest_lifetime(graph, pool)[0] is long_many
        assert victim_fewest_reloads(graph, pool)[0] is short_few
        assert victim_latest_def(graph, pool)[0] is short_few  # starts later


# --------------------------------------------------------------------------- #
# Every bundle produces valid schedules
# --------------------------------------------------------------------------- #
class TestBundleValidity:
    @pytest.mark.parametrize("bundle", bundle_names())
    @pytest.mark.parametrize("config_name", ["4C16S16", "2C32S32"])
    def test_bundle_schedules_and_validates(self, bundle, config_name):
        machine, rf = scaled(config_name)
        for kernel in ("daxpy", "hydro_fragment"):
            result = SchedulerEngine(machine, rf, policy=bundle).schedule_loop(
                build_kernel(kernel)
            )
            assert result.success, f"{kernel} failed under {bundle}"
            assert result.policy == bundle
            validate_schedule(result, machine, rf)

    def test_round_robin_spreads_compute(self):
        machine, rf = scaled("4C32")
        result = SchedulerEngine(machine, rf, policy="mirs_rr_cluster").schedule_loop(
            build_kernel("equation_of_state")
        )
        assert result.success
        used_clusters = {
            placed.cluster
            for placed in result.assignments.values()
            if placed.op.is_compute
        }
        assert len(used_clusters) > 1


# --------------------------------------------------------------------------- #
# Policy selection reaches the cache key and the suite driver
# --------------------------------------------------------------------------- #
class TestPolicyThreading:
    def test_cache_key_distinguishes_policies(self):
        from repro.eval.cache import schedule_key

        loop = build_kernel("daxpy")
        rf = config_by_name("4C16S16")
        machine = baseline_machine()
        default = schedule_key(loop, rf, machine)
        explicit = schedule_key(loop, rf, machine, scheduler="mirs_hc")
        other = schedule_key(loop, rf, machine, scheduler="mirs_rr_cluster")
        adhoc = schedule_key(
            loop, rf, machine, scheduler=PolicyBundle("mirs_hc", cluster="round_robin")
        )
        assert default == explicit
        assert other != default
        assert adhoc != default  # same name, different axes

    def test_schedule_suite_accepts_bundle_names(self):
        from repro.eval.experiments import schedule_suite

        runs = schedule_suite([build_kernel("daxpy")], "4C16S16",
                              scheduler="mirs_min_pressure")
        assert runs[0].result.success
        assert runs[0].result.policy == "mirs_min_pressure"

    def test_api_policy_parameter(self):
        from repro import api

        result = api.schedule_kernel("daxpy", "4C16S16", policy="non_iterative")
        assert result.policy == "non_iterative"

    def test_fuzzer_rejects_unknown_policy_upfront(self):
        from repro.verify.fuzz import fuzz_schedules

        # A typo'd bundle name must fail loudly before any case runs --
        # not be misclassified as a scheduler crash on every seed (which
        # would pollute the corpus with bogus "failures").
        with pytest.raises(ValueError, match="unknown policy bundle"):
            fuzz_schedules(1, policies=["mirshc"], shrink=False)

    def test_ablation_driver_smoke(self):
        from repro.eval.experiments import run_ablation_policies

        outcome = run_ablation_policies(
            n_loops=4, config_name="4C16S16",
            policies=["mirs_hc", "non_iterative", "mirs_rr_cluster"],
        )
        rows = outcome.data["rows"]
        assert set(rows) == {"mirs_hc", "non_iterative", "mirs_rr_cluster"}
        for row in rows.values():
            assert row["sum_ii"] > 0
            assert row["pressure_checks"] > 0
        # MIRS_HC must not lose to the non-iterative bundle in aggregate
        # (the paper's Table 4 claim, preserved through the refactor).
        assert rows["mirs_hc"]["sum_ii"] <= rows["non_iterative"]["sum_ii"]
