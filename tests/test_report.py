"""Tests for the reporting layer (repro.report) behind ``repro report``.

Covers query parsing/validation, the paper-style aggregation and BENCH
trajectory reduction, and both renderers (self-contained HTML, raw CSV).
"""

from __future__ import annotations

import csv
import io

import pytest

from repro import serialize
from repro.report import (
    ReportQuery,
    build_report,
    render_csv,
    render_html,
    report_query_from_dict,
    report_query_to_dict,
)
from repro.store import RunDatabase, RunRow


def _row(key: str, **overrides) -> RunRow:
    defaults = dict(
        run_key=key,
        loop_name=f"loop_{key}",
        config_name="4C16S16",
        policy="mirs_hc",
        core="array",
        version="0.0",
        status="ok",
        ii=10,
        mii=8,
        spills=0,
        scheduling_time_s=0.1,
        digest=f"digest-{key}",
        job_id="job-aaaaaaaaaaaaaaaa",
        created_at=1000.0,
    )
    defaults.update(overrides)
    return RunRow(**defaults)


@pytest.fixture()
def db(tmp_path):
    database = RunDatabase(tmp_path / "runs.sqlite")
    yield database
    database.close()


class TestReportQuery:
    def test_from_params_multi_valued_filters(self):
        query = ReportQuery.from_params({
            "config": ["4C16S16", "S64"], "policy": ["mirs_hc"],
            "tier": ["tiny"], "loop": ["fir"], "since": ["100.5"],
            "until": ["200"], "limit": ["5"],
        })
        assert query.configs == ("4C16S16", "S64")
        assert query.policies == ("mirs_hc",)
        assert query.loop == "fir" and query.limit == 5
        assert query.since == pytest.approx(100.5)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown report parameters"):
            ReportQuery.from_params({"frobnicate": ["1"]})

    def test_repeated_scalar_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            ReportQuery.from_params({"loop": ["a", "b"]})

    def test_bad_numbers_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            ReportQuery.from_params({"since": ["yesterday"]})
        with pytest.raises(ValueError, match="must be an integer"):
            ReportQuery.from_params({"limit": ["many"]})
        with pytest.raises(ValueError, match=">= 1"):
            ReportQuery.from_params({"limit": ["0"]})

    def test_envelope_round_trip(self):
        query = ReportQuery(configs=("S64",), loop="fir", limit=3, since=1.5)
        envelope = serialize.to_dict(query)
        assert envelope["type"] == "report_query"
        serialize.validate(envelope, expect_type="report_query")
        assert serialize.from_dict(envelope) == query
        assert report_query_from_dict(report_query_to_dict(query)) == query


class TestBuildReport:
    def test_aggregates_group_and_order_by_sum_ii(self, db):
        db.add_runs([
            _row("a1", config_name="4C16S16", ii=10, mii=8),
            _row("a2", config_name="4C16S16", ii=12, mii=9,
                 status="failed"),
            _row("b1", config_name="S64", ii=7, mii=7, spills=2),
        ])
        data = build_report(db, ReportQuery())
        assert data.n_runs == 3 and data.n_failed == 1
        assert [(a.config_name, a.sum_ii) for a in data.aggregates] == [
            ("S64", 7), ("4C16S16", 22),
        ]
        best = data.aggregates[0]
        assert best.spills == 2 and best.ii_over_mii == pytest.approx(1.0)
        worst = data.aggregates[1]
        assert worst.n_failed == 1 and worst.sum_mii == 17

    def test_policies_are_separate_groups(self, db):
        db.add_runs([
            _row("a", policy="mirs_hc"),
            _row("b", policy="non_iterative"),
        ])
        data = build_report(db, ReportQuery())
        assert {(a.config_name, a.policy) for a in data.aggregates} == {
            ("4C16S16", "mirs_hc"), ("4C16S16", "non_iterative"),
        }

    def test_trajectory_one_point_per_job_in_time_order(self, db):
        db.add_runs([
            _row("a1", job_id="job-old", created_at=100.0, ii=10),
            _row("a2", job_id="job-old", created_at=110.0, ii=10),
            _row("b1", job_id="job-new", created_at=200.0, ii=9),
            _row("c1", job_id=None, created_at=300.0, ii=8),
        ])
        data = build_report(db, ReportQuery())
        assert [p.label for p in data.trajectory[:2]] == ["job-old", "job-new"]
        assert data.trajectory[0].sum_ii == 20
        assert data.trajectory[0].n_runs == 2
        assert data.trajectory[2].label.startswith("run:c1")

    def test_query_filters_are_applied(self, db):
        db.add_runs([
            _row("a", config_name="S64"), _row("b", config_name="4C16S16"),
        ])
        data = build_report(db, ReportQuery(configs=("S64",)))
        assert [row.run_key for row in data.rows] == ["a"]


class TestRenderHTML:
    def test_report_is_a_self_contained_document(self, db):
        db.add_runs([
            _row("a1", job_id="job-one", created_at=100.0),
            _row("a2", job_id="job-two", created_at=200.0,
                 config_name="S64", status="failed"),
        ])
        page = render_html(build_report(db, ReportQuery()))
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<html") == 1 and "</html>" in page
        assert "4C16S16" in page and "S64" in page
        # Two jobs -> the trajectory SVG renders (inline, no assets).
        assert "<svg" in page and "polyline" in page
        assert "src=" not in page and "href=" not in page
        assert "class='failed'" in page

    def test_single_job_report_omits_the_trajectory(self, db):
        db.add_runs([_row("a1")])
        page = render_html(build_report(db, ReportQuery()))
        assert "<svg" not in page
        assert "at least two jobs" in page

    def test_loop_names_are_escaped(self, db):
        db.add_runs([_row("a1", loop_name="<script>alert(1)</script>")])
        page = render_html(build_report(db, ReportQuery()))
        assert "<script>" not in page
        assert "&lt;script&gt;" in page


class TestRenderCSV:
    def test_csv_round_trips_through_the_csv_module(self, db):
        db.add_runs([
            _row("a1", tier="tiny", seed=7),
            _row("a2", ii=None, mii=None, status="failed"),
        ])
        text = render_csv(build_report(db, ReportQuery()).rows)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["run_key"] == "a1" and rows[0]["tier"] == "tiny"
        assert rows[0]["ii"] == "10"
        # None renders as the empty cell, not the string "None".
        assert rows[1]["ii"] == "" and rows[1]["status"] == "failed"

    def test_empty_table_is_just_the_header(self):
        text = render_csv([])
        assert text.splitlines() == [text.splitlines()[0]]
        assert "run_key" in text
