"""Unit tests for value residence (banks) and register-pressure analysis."""

import pytest

from repro.core.banks import SHARED, all_banks, bank_capacity, bank_name, read_bank, value_bank
from repro.core.lifetimes import lifetimes_by_bank, live_in_banks, register_usage
from repro.ddg import DepGraph, OpType
from repro.machine import MachineConfig, RFConfig, UNBOUNDED


@pytest.fixture
def machine():
    return MachineConfig()


def simple_graph():
    g = DepGraph()
    load = g.add_node(OpType.LOAD)
    mul = g.add_node(OpType.FMUL)
    store = g.add_node(OpType.STORE)
    g.add_edge(load, mul)
    g.add_edge(mul, store)
    return g, load, mul, store


class TestBanks:
    def test_all_banks(self):
        assert all_banks(RFConfig.parse("S64")) == [SHARED]
        assert all_banks(RFConfig.parse("4C32")) == [0, 1, 2, 3]
        assert all_banks(RFConfig.parse("2C32S32")) == [0, 1, SHARED]

    def test_bank_capacity(self):
        rf = RFConfig.parse("2C32S64")
        assert bank_capacity(rf, 0) == 32
        assert bank_capacity(rf, SHARED) == 64
        unbounded = rf.with_unbounded_registers()
        assert bank_capacity(unbounded, 0) == float("inf")

    def test_bank_name(self):
        assert bank_name(SHARED) == "shared"
        assert bank_name(2) == "cluster2"

    def test_value_bank_monolithic(self):
        g, load, mul, store = simple_graph()
        rf = RFConfig.parse("S64")
        assert value_bank(g, load, None, rf) == SHARED
        assert value_bank(g, mul, 0, rf) == SHARED
        assert value_bank(g, store, None, rf) is None

    def test_value_bank_clustered(self):
        g, load, mul, store = simple_graph()
        rf = RFConfig.parse("4C32")
        assert value_bank(g, load, 2, rf) == 2
        assert value_bank(g, mul, 1, rf) == 1

    def test_value_bank_hierarchical(self):
        g, load, mul, store = simple_graph()
        rf = RFConfig.parse("4C16S16")
        assert value_bank(g, load, None, rf) == SHARED
        assert value_bank(g, mul, 3, rf) == 3
        storer = g.add_node(OpType.STORER, home_cluster=3)
        loadr = g.add_node(OpType.LOADR, home_cluster=1)
        assert value_bank(g, storer, 3, rf) == SHARED
        assert value_bank(g, loadr, 1, rf) == 1

    def test_read_bank(self):
        g, load, mul, store = simple_graph()
        hier = RFConfig.parse("4C16S16")
        assert read_bank(g, load, None, hier) is None
        assert read_bank(g, mul, 2, hier) == 2
        assert read_bank(g, store, None, hier) == SHARED
        clustered = RFConfig.parse("4C32")
        assert read_bank(g, store, 1, clustered) == 1


class TestLifetimes:
    def test_simple_chain_pressure(self, machine):
        g, load, mul, store = simple_graph()
        rf = RFConfig.parse("S64")
        times = {load: 0, mul: 2, store: 6}
        clusters = {load: None, mul: 0, store: None}
        usage = register_usage(g, times, clusters, ii=2, rf=rf, latency_of=machine.latency)
        # load value live [2, 3); mul value live [6, 7): at most 1 value
        # per slot plus overlap across iterations.
        assert usage[SHARED] >= 1

    def test_long_lifetime_counts_multiple_instances(self, machine):
        g = DepGraph()
        load = g.add_node(OpType.LOAD)
        add = g.add_node(OpType.FADD)
        g.add_edge(load, add)
        rf = RFConfig.parse("S64")
        # Value defined at cycle 2 and consumed at cycle 18 with II=4:
        # lifetime 17 cycles => ceil(17/4) >= 4 concurrent instances.
        usage = register_usage(
            g, {load: 0, add: 18}, {load: None, add: 0}, ii=4, rf=rf,
            latency_of=machine.latency,
        )
        assert usage[SHARED] >= 4

    def test_loop_carried_use_extends_lifetime(self, machine):
        g = DepGraph()
        load = g.add_node(OpType.LOAD)
        add = g.add_node(OpType.FADD)
        g.add_edge(load, add, distance=2)
        rf = RFConfig.parse("S64")
        usage = register_usage(
            g, {load: 0, add: 2}, {load: None, add: 0}, ii=3, rf=rf,
            latency_of=machine.latency,
        )
        # end = t_add + 2*II = 8 -> lifetime 6 cycles over II=3 -> >= 2 regs.
        assert usage[SHARED] >= 2

    def test_live_in_occupies_every_consumer_bank(self, machine):
        g = DepGraph()
        inv = g.add_node(OpType.LIVE_IN)
        a = g.add_node(OpType.FADD)
        b = g.add_node(OpType.FMUL)
        g.add_edge(inv, a)
        g.add_edge(inv, b)
        rf = RFConfig.parse("2C32S32")
        clusters = {a: 0, b: 1}
        assert live_in_banks(g, inv, clusters, rf) == {0, 1}
        usage = register_usage(g, {a: 0, b: 0}, clusters, ii=2, rf=rf,
                               latency_of=machine.latency)
        assert usage[0] >= 1 and usage[1] >= 1

    def test_unscheduled_consumers_ignored(self, machine):
        g, load, mul, store = simple_graph()
        rf = RFConfig.parse("S64")
        usage = register_usage(g, {load: 0}, {load: None}, ii=2, rf=rf,
                               latency_of=machine.latency)
        assert usage[SHARED] == 1  # only the load's own short lifetime

    def test_lifetimes_by_bank_separates_clusters(self, machine):
        g = DepGraph()
        a = g.add_node(OpType.FADD)
        b = g.add_node(OpType.FMUL)
        c = g.add_node(OpType.FADD)
        g.add_edge(a, c)
        g.add_edge(b, c)
        rf = RFConfig.parse("2C32")
        times = {a: 0, b: 0, c: 6}
        clusters = {a: 0, b: 1, c: 0}
        per_bank = lifetimes_by_bank(g, times, clusters, 3, rf, machine.latency)
        assert {lt.node_id for lt in per_bank[0]} == {a, c}
        assert {lt.node_id for lt in per_bank[1]} == {b}

    def test_latency_override_extends_lifetime_start(self, machine):
        g = DepGraph()
        load = g.add_node(OpType.LOAD)
        add = g.add_node(OpType.FADD)
        g.add_edge(load, add)
        g.node(load).latency_override = 20
        rf = RFConfig.parse("S64")
        per_bank = lifetimes_by_bank(
            g, {load: 0, add: 25}, {load: None, add: 0}, 4, rf, machine.latency
        )
        (lifetime,) = [lt for lt in per_bank[SHARED] if lt.node_id == load]
        assert lifetime.start == 20
