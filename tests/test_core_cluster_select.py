"""Unit tests for the Select_Cluster heuristic."""

import pytest

from repro.core.cluster_select import select_cluster
from repro.core.partial import PartialSchedule
from repro.ddg import DepGraph, OpType
from repro.machine import MachineConfig, RFConfig, ResourceModel


@pytest.fixture
def machine():
    return MachineConfig()


def make_schedule(graph, rf, machine, ii=4):
    return PartialSchedule(graph, ii, machine, rf, ResourceModel(machine, rf))


class TestTrivialCases:
    def test_monolithic_always_cluster_zero(self, machine):
        rf = RFConfig.parse("S64")
        g = DepGraph()
        add = g.add_node(OpType.FADD)
        schedule = make_schedule(g, rf, machine)
        assert select_cluster(g, schedule, add, rf) == 0

    def test_memory_ops_have_no_cluster_in_hierarchical(self, machine):
        rf = RFConfig.parse("4C16S16")
        g = DepGraph()
        load = g.add_node(OpType.LOAD)
        schedule = make_schedule(g, rf, machine)
        assert select_cluster(g, schedule, load, rf) is None

    def test_memory_ops_get_cluster_in_clustered(self, machine):
        rf = RFConfig.parse("4C32")
        g = DepGraph()
        load = g.add_node(OpType.LOAD)
        schedule = make_schedule(g, rf, machine)
        assert select_cluster(g, schedule, load, rf) in range(4)

    def test_live_in_has_no_cluster(self, machine):
        rf = RFConfig.parse("4C32")
        g = DepGraph()
        inv = g.add_node(OpType.LIVE_IN)
        schedule = make_schedule(g, rf, machine)
        assert select_cluster(g, schedule, inv, rf) is None

    def test_comm_ops_use_home_cluster(self, machine):
        rf = RFConfig.parse("4C16S16")
        g = DepGraph()
        loadr = g.add_node(OpType.LOADR, home_cluster=2)
        schedule = make_schedule(g, rf, machine)
        assert select_cluster(g, schedule, loadr, rf) == 2


class TestHeuristic:
    def test_follows_scheduled_producer(self, machine):
        rf = RFConfig.parse("4C32")
        g = DepGraph()
        producer = g.add_node(OpType.FMUL)
        consumer = g.add_node(OpType.FADD)
        g.add_edge(producer, consumer)
        schedule = make_schedule(g, rf, machine)
        schedule.place(producer, 0, 2)
        assert select_cluster(g, schedule, consumer, rf) == 2

    def test_avoids_saturated_cluster(self, machine):
        rf = RFConfig.parse("8C16S16")   # 1 FU per cluster
        g = DepGraph()
        producer = g.add_node(OpType.FMUL)
        consumer = g.add_node(OpType.FADD)
        g.add_edge(producer, consumer)
        schedule = make_schedule(g, rf, machine, ii=1)
        # At II=1 the single FU of cluster 2 is fully busy with the producer,
        # so the consumer must go elsewhere despite the communication cost.
        schedule.place(producer, 0, 2)
        chosen = select_cluster(g, schedule, consumer, rf)
        assert chosen != 2

    def test_balances_when_no_constraints(self, machine):
        rf = RFConfig.parse("4C32")
        g = DepGraph()
        ops = [g.add_node(OpType.FADD) for _ in range(8)]
        schedule = make_schedule(g, rf, machine, ii=1)
        counts = {c: 0 for c in range(4)}
        for op in ops:
            cluster = select_cluster(g, schedule, op, rf)
            schedule.place(op, schedule.find_slot(op, cluster), cluster)
            counts[cluster] += 1
        # 8 adds on 4 clusters with 2 FUs each at II=1: perfectly balanced.
        assert all(count == 2 for count in counts.values())

    def test_register_pressure_steers_away(self, machine):
        rf = RFConfig.parse("2C32")
        g = DepGraph()
        op = g.add_node(OpType.FADD)
        schedule = make_schedule(g, rf, machine)
        usage = {0: 30, 1: 2}
        assert select_cluster(g, schedule, op, rf, usage) == 1
