"""Tests for the high-level convenience API."""

import pytest

from repro import api
from repro.core import validate_schedule
from repro.hwmodel import scaled_machine
from repro.machine import RFConfig, baseline_machine, config_by_name
from repro.workloads import build_kernel, perfect_club_like_suite


class TestScheduleKernel:
    def test_by_name_with_params(self):
        result = api.schedule_kernel("fir_filter", "2C32S32", taps=4)
        assert result.success
        machine, _ = scaled_machine(baseline_machine(), config_by_name("2C32S32"))
        validate_schedule(result, machine, config_by_name("2C32S32"))

    def test_with_loop_object_and_config_object(self):
        loop = build_kernel("vadd")
        rf = RFConfig.parse("2C64")
        result = api.schedule_kernel(loop, rf)
        assert result.success and result.config_name == "2C64"

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            api.schedule_kernel("not_a_kernel", "S64")


class TestEvaluateAndCompare:
    @pytest.fixture(scope="class")
    def loops(self):
        return perfect_club_like_suite(8, seed=5)

    def test_evaluate_configuration(self, loops):
        report = api.evaluate_configuration("S64", loops=loops)
        assert report.n_failed == 0
        assert report.cycles > 0
        assert report.time_ns == pytest.approx(report.cycles * report.spec.clock_ns, rel=1e-6)
        assert report.area_mlambda2 == pytest.approx(12.20, abs=0.01)

    def test_compare_configurations(self, loops):
        comparison = api.compare_configurations(["S64", "4C32S16"], loops=loops)
        reports = comparison["reports"]
        assert set(reports) == {"S64", "4C32S16"}
        assert comparison["ranking"][0] in reports
        text = comparison["table"].render()
        assert "S64" in text and "4C32S16" in text

    def test_reference_added_if_missing(self, loops):
        comparison = api.compare_configurations(["4C32"], loops=loops, reference="S64")
        assert "S64" in comparison["reports"]
