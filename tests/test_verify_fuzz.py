"""Tests for the fuzz driver, the shrinker, the configuration sampler
and the corpus serialization round trip."""

import json

import numpy as np
import pytest

from repro import api
from repro.core.mirs_hc import MirsHC
from repro.core.validate import ValidationError, validate_schedule
from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import MemRef, OpType
from repro.hwmodel import scaled_machine
from repro.machine import baseline_machine, config_by_name
from repro.machine.sampler import sample_machine, sample_rf_config
from repro.verify import fuzz as fuzz_mod
from repro.verify.corpus import (
    CorpusCase,
    discover_cases,
    load_case,
    loop_from_json,
    loop_to_json,
    save_case,
)
from repro.verify.fuzz import (
    format_reproducer,
    fuzz_schedules,
    run_pipeline,
    shrink_loop,
)
from repro.workloads.generator import PROFILES, generate_loop
from repro.workloads.kernels import build_kernel


# --------------------------------------------------------------------------- #
# The sampler
# --------------------------------------------------------------------------- #
class TestSampler:
    def test_sampled_pairs_are_always_valid(self):
        rng = np.random.default_rng(5)
        kinds = set()
        for _ in range(60):
            machine = sample_machine(rng)
            rf = sample_rf_config(rng, machine)
            machine.validate_rf(rf)  # raises on an invalid pair
            kinds.add(rf.kind)
        assert len(kinds) >= 3  # the sampler explores several families

    def test_sampling_is_reproducible_from_the_seed(self):
        first = sample_rf_config(np.random.default_rng(7))
        second = sample_rf_config(np.random.default_rng(7))
        assert first == second


# --------------------------------------------------------------------------- #
# The pipeline runner
# --------------------------------------------------------------------------- #
class TestRunPipeline:
    def test_clean_kernel_is_ok(self):
        outcome = run_pipeline(build_kernel("daxpy"), config_by_name("S64"))
        assert outcome.status == "ok"
        assert not outcome.is_failure
        assert outcome.report is not None and outcome.report.ok

    def test_impossible_pressure_is_unschedulable_not_a_failure(self):
        # A long chain of carried values cannot fit two registers at any II.
        graph = DepGraph()
        previous = graph.add_node(OpType.LOAD, mem_ref=MemRef(array="a"))
        for _ in range(24):
            node = graph.add_node(OpType.FADD)
            graph.add_edge(previous, node, distance=4)
            previous = node
        store = graph.add_node(OpType.STORE, mem_ref=MemRef(array="out"))
        graph.add_edge(previous, store)
        loop = Loop(name="pressure", graph=graph)
        rf = config_by_name("S128")
        tiny = type(rf)(n_clusters=1, cluster_regs=None, shared_regs=2)
        outcome = run_pipeline(loop, tiny, scale_to_clock=False)
        assert outcome.status == "unschedulable"
        assert not outcome.is_failure


# --------------------------------------------------------------------------- #
# Reproducer / failure message format
# --------------------------------------------------------------------------- #
class TestReproducerFormat:
    def test_reproducer_embeds_seed_profile_config_and_ii(self):
        text = format_reproducer(2017, "balanced", "4C16S16", ii=9)
        assert "seed=2017" in text
        assert "profile=balanced" in text
        assert "config=4C16S16" in text
        assert "II=9" in text
        assert "python -m repro.cli fuzz --seeds 1 --base-seed 2017" in text
        assert "--profiles balanced" in text
        assert "--configs 4C16S16" in text

    def test_sampled_configs_replay_with_the_sampling_flag(self):
        text = format_reproducer(3, "large", "2C16S32", sampled=True)
        assert "--sample-configs" in text
        assert "--configs" not in text

    def test_non_default_knobs_are_spelled_out(self):
        text = format_reproducer(
            3, "large", "S64", budget_ratio=2.0, n_iterations=20
        )
        assert "--budget-ratio 2.0" in text
        assert "--iterations 20" in text
        # ... and defaults keep the command short.
        assert "--budget-ratio" not in format_reproducer(3, "large", "S64")
        assert "--iterations" not in format_reproducer(3, "large", "S64")

    def test_validation_error_carries_the_reproducer(self):
        rf = config_by_name("S64")
        machine, _spec = scaled_machine(baseline_machine(), rf)
        loop = build_kernel("daxpy")
        result = MirsHC(machine, rf).schedule_loop(loop)
        assert result.success
        # Tamper with one placement so validation fails.
        victim = next(
            node_id for node_id, placed in result.assignments.items()
            if not placed.op.is_pseudo
        )
        import dataclasses
        result.assignments[victim] = dataclasses.replace(
            result.assignments[victim], cycle=result.assignments[victim].cycle + 10_000
        )
        reproducer = format_reproducer(42, "balanced", "S64", ii=result.ii)
        with pytest.raises(ValidationError) as excinfo:
            validate_schedule(result, machine, rf, reproducer=reproducer)
        message = str(excinfo.value)
        assert "reproduce:" in message
        assert "seed=42" in message and "config=S64" in message
        assert excinfo.value.reproducer == reproducer

    def test_validation_error_without_reproducer_is_unchanged(self):
        error = ValidationError("plain message")
        assert str(error) == "plain message"
        assert error.reproducer is None


# --------------------------------------------------------------------------- #
# The shrinker
# --------------------------------------------------------------------------- #
class TestShrinker:
    def test_shrinks_to_the_failure_carrying_core(self):
        graph = DepGraph()
        nodes = [graph.add_node(OpType.FADD) for _ in range(10)]
        trigger = graph.add_node(OpType.FDIV, name="trigger")
        for first, second in zip(nodes, nodes[1:]):
            graph.add_edge(first, second)
        graph.add_edge(nodes[-1], trigger)
        loop = Loop(name="shrinkme", graph=graph)

        def still_fails(candidate):
            return any(
                node.op is OpType.FDIV for node in candidate.graph.nodes()
            )

        minimized = shrink_loop(loop, still_fails, max_attempts=200)
        assert len(minimized.graph) == 1
        assert next(iter(minimized.graph.nodes())).op is OpType.FDIV

    def test_shrinker_respects_a_passed_deadline(self):
        import time

        graph = DepGraph()
        for _ in range(8):
            graph.add_node(OpType.FADD)
        loop = Loop(name="deadline", graph=graph)
        attempts = {"n": 0}

        def still_fails(candidate):
            attempts["n"] += 1
            return True

        minimized = shrink_loop(
            loop, still_fails, max_attempts=1000,
            deadline=time.perf_counter() - 1.0,
        )
        assert attempts["n"] == 0
        assert len(minimized.graph) == len(loop.graph)

    def test_shrinker_respects_the_attempt_budget(self):
        graph = DepGraph()
        for _ in range(8):
            graph.add_node(OpType.FADD)
        loop = Loop(name="budget", graph=graph)
        attempts = {"n": 0}

        def still_fails(candidate):
            attempts["n"] += 1
            return True

        shrink_loop(loop, still_fails, max_attempts=5)
        assert attempts["n"] <= 5


# --------------------------------------------------------------------------- #
# The fuzz driver
# --------------------------------------------------------------------------- #
class TestFuzzDriver:
    def test_small_deterministic_sweep_is_clean(self):
        report = fuzz_schedules(3, base_seed=2003, shrink=False)
        assert report.ok
        assert report.n_cases == 3
        assert report.n_ok == 3
        assert "3 case(s)" in report.summary()

    def test_time_budget_stops_early(self):
        report = fuzz_schedules(10_000, base_seed=2003, time_budget_s=1.0,
                                shrink=False)
        assert report.stopped_early
        assert report.n_cases < 10_000
        assert "stopped early" in report.summary()

    def test_failures_are_shrunk_and_frozen_as_corpus_cases(
        self, tmp_path, monkeypatch
    ):
        real_run_pipeline = fuzz_mod.run_pipeline

        def breaking_run_pipeline(loop, rf, machine=None, **kwargs):
            # Pretend the differential checker trips whenever the loop
            # contains a store (shrinking should then strip all the rest).
            if any(node.op is OpType.STORE for node in loop.graph.nodes()):
                return fuzz_mod.PipelineOutcome(
                    status="mismatch", message="synthetic mismatch"
                )
            return real_run_pipeline(loop, rf, machine, **kwargs)

        monkeypatch.setattr(fuzz_mod, "run_pipeline", breaking_run_pipeline)
        report = fuzz_mod.fuzz_schedules(
            1, base_seed=2003, corpus_dir=tmp_path, max_shrink_attempts=400
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.status == "mismatch"
        assert "base-seed 2003" in failure.reproducer
        assert failure.corpus_path is not None and failure.corpus_path.exists()
        case = load_case(failure.corpus_path)
        assert case.expect == "ok"
        assert case.origin["failure"] == "mismatch"
        # Shrinking kept only what the failure needs: a single store.
        ops = [node.op for node in case.loop.graph.nodes()]
        assert ops == [OpType.STORE]

    def test_api_facade_returns_the_report(self):
        report = api.fuzz_schedules(1, base_seed=2003, shrink=False)
        assert report.n_cases == 1


# --------------------------------------------------------------------------- #
# Corpus serialization
# --------------------------------------------------------------------------- #
class TestCorpusRoundTrip:
    def test_loop_roundtrip_preserves_fingerprint(self):
        loop = generate_loop(
            np.random.default_rng(9), PROFILES["memory_bound"], index=0
        )
        clone = loop_from_json(loop_to_json(loop))
        assert clone.fingerprint() == loop.fingerprint()

    def test_roundtrip_remaps_inserted_for_across_id_gaps(self):
        # Shrunk loops have non-contiguous node ids; inserted_for must be
        # remapped alongside the edges, not copied verbatim.
        graph = DepGraph()
        graph.add_node(OpType.FADD)          # id 0, removed below
        owner = graph.add_node(OpType.FMUL)  # id 1
        comm = graph.add_node(
            OpType.LOADR, is_inserted=True, inserted_for=owner, home_cluster=0
        )                                    # id 2
        graph.add_edge(owner, comm)
        graph.remove_node(0)
        loop = Loop(name="gaps", graph=graph)
        clone = loop_from_json(loop_to_json(loop))
        nodes = {node.op: node for node in clone.graph.nodes()}
        assert nodes[OpType.LOADR].inserted_for == nodes[OpType.FMUL].node_id
        assert clone.graph.has_edge(
            nodes[OpType.FMUL].node_id, nodes[OpType.LOADR].node_id
        )

    def test_case_roundtrip_preserves_everything(self, tmp_path):
        loop = build_kernel("daxpy")
        case = CorpusCase(
            loop=loop,
            rf=config_by_name("4C16S16"),
            machine=baseline_machine(),
            expect="ok",
            description="round trip",
            origin={"seed": 1, "profile": "kernel"},
            config_name="4C16S16",
            budget_ratio=5.0,
            n_iterations=8,
        )
        path = save_case(case, tmp_path / "case.json")
        loaded = load_case(path)
        assert loaded.loop.fingerprint() == loop.fingerprint()
        assert loaded.rf == case.rf
        assert loaded.machine.n_fus == case.machine.n_fus
        assert loaded.expect == "ok"
        assert loaded.budget_ratio == 5.0
        assert loaded.n_iterations == 8
        assert loaded.origin["seed"] == 1

    def test_inline_rf_roundtrip(self, tmp_path):
        rf = sample_rf_config(np.random.default_rng(3))
        case = CorpusCase(
            loop=build_kernel("daxpy"),
            rf=rf,
            machine=baseline_machine(),
        )
        loaded = load_case(save_case(case, tmp_path / "inline.json"))
        assert loaded.rf == rf

    def test_discover_cases_is_stable_and_ignores_missing_dirs(self, tmp_path):
        assert discover_cases(tmp_path / "nope") == []
        save_case(
            CorpusCase(loop=build_kernel("daxpy"), rf=config_by_name("S64"),
                       machine=baseline_machine()),
            tmp_path / "b.json",
        )
        save_case(
            CorpusCase(loop=build_kernel("daxpy"), rf=config_by_name("S64"),
                       machine=baseline_machine()),
            tmp_path / "a.json",
        )
        names = [path.name for path in discover_cases(tmp_path)]
        assert names == ["a.json", "b.json"]

    def test_unknown_schema_is_rejected(self, tmp_path):
        loop = build_kernel("daxpy")
        case = CorpusCase(loop=loop, rf=config_by_name("S64"),
                          machine=baseline_machine())
        payload = case.to_json()
        payload["schema"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            load_case(path)


# --------------------------------------------------------------------------- #
# Long randomized sweeps (not part of tier 1)
# --------------------------------------------------------------------------- #
@pytest.mark.fuzz
class TestLongSweeps:
    def test_preset_sweep_200_seeds(self):
        report = fuzz_schedules(200, base_seed=2003, shrink=False)
        assert report.ok, report.render()

    def test_sampled_config_sweep(self):
        report = fuzz_schedules(
            40, base_seed=7000, sample_configs=True, shrink=False
        )
        assert report.ok, report.render()
