"""Unit tests for two-level register spilling."""

import pytest

from repro.core.banks import SHARED
from repro.core.partial import PartialSchedule
from repro.core.spill import SpillState, check_and_insert_spill
from repro.ddg import DepGraph, OpType
from repro.machine import MachineConfig, RFConfig, ResourceModel


@pytest.fixture
def machine():
    return MachineConfig()


def high_pressure_graph(n_values=12, gap=30):
    """Many values defined early and all consumed late -> high MaxLive."""
    g = DepGraph()
    producers = [g.add_node(OpType.LOAD) for _ in range(n_values)]
    sink = g.add_node(OpType.FADD, name="sink")
    for p in producers:
        g.add_edge(p, sink)
    store = g.add_node(OpType.STORE)
    g.add_edge(sink, store)
    times = {p: 0 for p in producers}
    times[sink] = gap
    times[store] = gap + 4
    return g, producers, sink, store, times


def make_schedule(graph, rf, machine, times, clusters, ii=2):
    schedule = PartialSchedule(graph, ii, machine, rf, ResourceModel(machine, rf))
    schedule.times = dict(times)
    schedule.clusters = dict(clusters)
    return schedule


class TestMemorySpill:
    def test_monolithic_overflow_spills_to_memory(self, machine):
        rf = RFConfig(n_clusters=1, cluster_regs=None, shared_regs=8)
        g, producers, sink, store, times = high_pressure_graph()
        clusters = {n: None if g.node(n).op.is_memory else 0 for n in times}
        schedule = make_schedule(g, rf, machine, times, clusters)
        state = SpillState()
        new_nodes, usage = check_and_insert_spill(g, schedule, rf, machine, state)
        assert usage[SHARED] > 8
        assert new_nodes, "an over-subscribed bank must trigger spill code"
        kinds = {g.node(n).op for n in new_nodes}
        assert OpType.STORE in kinds and OpType.LOAD in kinds
        assert all(g.node(n).is_spill for n in new_nodes)
        assert state.n_spill_memory_ops == len(new_nodes)

    def test_no_spill_when_capacity_sufficient(self, machine):
        rf = RFConfig.parse("S128")
        g, producers, sink, store, times = high_pressure_graph(n_values=4, gap=8)
        clusters = {n: None if g.node(n).op.is_memory else 0 for n in times}
        schedule = make_schedule(g, rf, machine, times, clusters)
        new_nodes, _ = check_and_insert_spill(g, schedule, rf, machine, SpillState())
        assert new_nodes == []

    def test_unbounded_bank_never_spills(self, machine):
        rf = RFConfig.parse("S64").with_unbounded_registers()
        g, producers, sink, store, times = high_pressure_graph()
        clusters = {n: None if g.node(n).op.is_memory else 0 for n in times}
        schedule = make_schedule(g, rf, machine, times, clusters)
        new_nodes, _ = check_and_insert_spill(g, schedule, rf, machine, SpillState())
        assert new_nodes == []

    def test_values_not_spilled_twice(self, machine):
        rf = RFConfig(n_clusters=1, cluster_regs=None, shared_regs=4)
        g, producers, sink, store, times = high_pressure_graph()
        clusters = {n: None if g.node(n).op.is_memory else 0 for n in times}
        schedule = make_schedule(g, rf, machine, times, clusters)
        state = SpillState()
        first, _ = check_and_insert_spill(g, schedule, rf, machine, state)
        spilled_after_first = set(state.spilled_values)
        second, _ = check_and_insert_spill(g, schedule, rf, machine, state)
        assert not (spilled_after_first & (state.spilled_values - spilled_after_first))

    def test_spill_rewires_dependences_through_memory(self, machine):
        rf = RFConfig(n_clusters=1, cluster_regs=None, shared_regs=6)
        g, producers, sink, store, times = high_pressure_graph()
        clusters = {n: None if g.node(n).op.is_memory else 0 for n in times}
        schedule = make_schedule(g, rf, machine, times, clusters)
        state = SpillState()
        new_nodes, _ = check_and_insert_spill(g, schedule, rf, machine, state)
        victim = next(iter(state.spilled_values))
        # The victim no longer feeds the sink directly.
        assert not g.has_edge(victim, sink)


class TestHierarchicalSpill:
    def _cluster_pressure_graph(self):
        g = DepGraph()
        producers = [g.add_node(OpType.FMUL) for _ in range(10)]
        seed = g.add_node(OpType.LOAD)
        for p in producers:
            g.add_edge(seed, p)
        sink = g.add_node(OpType.FADD, name="sink")
        for p in producers:
            g.add_edge(p, sink)
        times = {seed: 0, sink: 40}
        times.update({p: 2 for p in producers})
        clusters = {seed: None, sink: 0}
        clusters.update({p: 0 for p in producers})
        return g, producers, sink, times, clusters

    def test_cluster_overflow_spills_to_shared_bank(self, machine):
        rf = RFConfig(n_clusters=4, cluster_regs=6, shared_regs=64)
        g, producers, sink, times, clusters = self._cluster_pressure_graph()
        schedule = make_schedule(g, rf, machine, times, clusters, ii=2)
        state = SpillState()
        new_nodes, usage = check_and_insert_spill(g, schedule, rf, machine, state)
        assert usage[0] > 6
        kinds = {g.node(n).op for n in new_nodes}
        assert kinds <= {OpType.STORER, OpType.LOADR}
        assert OpType.STORER in kinds
        assert state.n_spill_storer_loadr == len(new_nodes)
        # No memory traffic is generated by a cluster -> shared spill.
        assert state.n_spill_memory_ops == 0

    def test_clustered_without_shared_spills_to_memory(self, machine):
        rf = RFConfig(n_clusters=4, cluster_regs=6, shared_regs=None)
        g, producers, sink, times, clusters = self._cluster_pressure_graph()
        # Memory op needs a cluster in a pure clustered organization.
        clusters = {n: (0 if c is None else c) for n, c in clusters.items()}
        schedule = make_schedule(g, rf, machine, times, clusters, ii=2)
        state = SpillState()
        new_nodes, _ = check_and_insert_spill(g, schedule, rf, machine, state)
        kinds = {g.node(n).op for n in new_nodes}
        assert OpType.STORE in kinds or OpType.LOAD in kinds

    def test_invariant_evicted_when_nothing_else_to_spill(self, machine):
        rf = RFConfig(n_clusters=2, cluster_regs=2, shared_regs=32)
        g = DepGraph()
        invariants = [g.add_node(OpType.LIVE_IN) for _ in range(4)]
        add = g.add_node(OpType.FADD)
        store = g.add_node(OpType.STORE)
        for inv in invariants:
            g.add_edge(inv, add)
        g.add_edge(add, store)
        times = {add: 0, store: 4}
        clusters = {add: 0, store: None}
        schedule = make_schedule(g, rf, machine, times, clusters, ii=1)
        state = SpillState()
        new_nodes, usage = check_and_insert_spill(g, schedule, rf, machine, state)
        assert usage[0] > 2
        assert new_nodes, "invariants should be evicted to the shared bank"
        assert all(g.node(n).op is OpType.LOADR for n in new_nodes)
        assert state.spilled_invariants

    def test_spill_state_tracking(self):
        state = SpillState()
        assert not state.is_spilled(3)
        state.spilled_values.add(3)
        assert state.is_spilled(3)
        state.spilled_invariants.add(9)
        assert state.is_spilled(9)


class TestPathologicalPressure:
    def test_high_pressure_generated_loop_schedules_on_tight_hierarchy(self):
        """Regression: a 'large'-profile loop (22 memory ops, 36 compute)
        used to be unschedulable at *any* II on the S16-shared-bank
        hierarchical clustered configurations.  Two spill dead ends were
        responsible: a shared bank full of is_spill StoreR copies had no
        admissible victims (the second level of the cluster -> shared ->
        memory chain never fired), and a cluster bank clogged with
        long-lived LoadR re-loads could not be relieved at all.
        """
        import numpy as np

        from repro.core.mirs_hc import MirsHC
        from repro.core.validate import validate_schedule
        from repro.hwmodel import scaled_machine
        from repro.machine import baseline_machine, config_by_name
        from repro.workloads.generator import PROFILES, generate_loop

        loop = generate_loop(
            np.random.default_rng(129), PROFILES["large"], index=0, name="hyp_129"
        )
        rf = config_by_name("8C16S16")
        machine, _ = scaled_machine(baseline_machine(), rf)
        result = MirsHC(machine, rf).schedule_loop(loop)
        assert result.success
        assert result.n_spill_memory_ops > 0  # the memory fallback fired
        validate_schedule(result, machine, rf)
