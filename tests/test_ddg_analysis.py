"""Unit tests for MII analysis (SCCs, RecMII, ResMII, priorities)."""

import pytest

from repro.ddg import (
    DepGraph,
    OpType,
    compute_mii,
    critical_path_length,
    depths,
    heights,
    rec_mii,
    strongly_connected_components,
)
from repro.ddg.analysis import recurrence_components
from repro.machine import MachineConfig, RFConfig, ResourceModel


@pytest.fixture
def machine():
    return MachineConfig()


@pytest.fixture
def resources(machine):
    return ResourceModel(machine, RFConfig.parse("S128"))


def chain_graph(n=4, op=OpType.FADD):
    g = DepGraph()
    nodes = [g.add_node(op) for _ in range(n)]
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, b)
    return g, nodes


class TestSCC:
    def test_acyclic_graph_has_singleton_components(self):
        g, nodes = chain_graph(5)
        components = strongly_connected_components(g)
        assert len(components) == 5
        assert all(len(c) == 1 for c in components)

    def test_cycle_detected(self):
        g, nodes = chain_graph(4)
        g.add_edge(nodes[-1], nodes[0], distance=1)
        components = strongly_connected_components(g)
        sizes = sorted(len(c) for c in components)
        assert sizes == [4]

    def test_self_loop_is_a_recurrence(self):
        g = DepGraph()
        acc = g.add_node(OpType.FADD)
        g.add_edge(acc, acc, distance=1)
        assert recurrence_components(g) == [[acc]]

    def test_multiple_recurrences(self):
        g = DepGraph()
        a1 = g.add_node(OpType.FADD)
        a2 = g.add_node(OpType.FMUL)
        b1 = g.add_node(OpType.FADD)
        g.add_edge(a1, a2)
        g.add_edge(a2, a1, distance=1)
        g.add_edge(b1, b1, distance=2)
        assert len(recurrence_components(g)) == 2


class TestRecMII:
    def test_no_recurrence(self, machine):
        g, _ = chain_graph(6)
        assert rec_mii(g, machine.latency) == 1

    def test_accumulator(self, machine):
        # acc = acc + x : latency(fadd)=4, distance 1 => RecMII = 4.
        g = DepGraph()
        acc = g.add_node(OpType.FADD)
        g.add_edge(acc, acc, distance=1)
        assert rec_mii(g, machine.latency) == 4

    def test_two_node_cycle(self, machine):
        # mul -> add -> (distance 1) mul : (4 + 4) / 1 = 8.
        g = DepGraph()
        mul = g.add_node(OpType.FMUL)
        add = g.add_node(OpType.FADD)
        g.add_edge(mul, add)
        g.add_edge(add, mul, distance=1)
        assert rec_mii(g, machine.latency) == 8

    def test_distance_two_halves_recmii(self, machine):
        g = DepGraph()
        mul = g.add_node(OpType.FMUL)
        add = g.add_node(OpType.FADD)
        g.add_edge(mul, add)
        g.add_edge(add, mul, distance=2)
        assert rec_mii(g, machine.latency) == 4

    def test_longest_cycle_dominates(self, machine):
        g = DepGraph()
        a = g.add_node(OpType.FADD)
        d = g.add_node(OpType.FDIV)
        g.add_edge(a, a, distance=1)          # RecMII 4
        g.add_edge(d, d, distance=1)          # RecMII 17
        assert rec_mii(g, machine.latency) == 17


class TestComputeMII:
    def test_resource_bound(self, machine, resources):
        g = DepGraph()
        loads = [g.add_node(OpType.LOAD) for _ in range(9)]
        adds = [g.add_node(OpType.FADD) for _ in range(4)]
        for load, add in zip(loads, adds):
            g.add_edge(load, add)
        breakdown = compute_mii(g, resources, machine.latency)
        assert breakdown.res_mem == 3      # ceil(9 / 4)
        assert breakdown.mii == 3
        assert breakdown.bound == "mem"

    def test_recurrence_bound(self, machine, resources):
        g = DepGraph()
        acc = g.add_node(OpType.FADD)
        load = g.add_node(OpType.LOAD)
        g.add_edge(load, acc)
        g.add_edge(acc, acc, distance=1)
        breakdown = compute_mii(g, resources, machine.latency)
        assert breakdown.rec == 4
        assert breakdown.bound == "rec"

    def test_mii_at_least_one(self, machine, resources):
        g = DepGraph()
        g.add_node(OpType.LIVE_IN)
        assert compute_mii(g, resources, machine.latency).mii == 1

    def test_tie_prefers_memory(self, machine, resources):
        g = DepGraph()
        # 8 compute ops (fu bound 1) and 4 memory ops (mem bound 1): tie.
        adds = [g.add_node(OpType.FADD) for _ in range(8)]
        loads = [g.add_node(OpType.LOAD) for _ in range(4)]
        for load, add in zip(loads, adds):
            g.add_edge(load, add)
        assert compute_mii(g, resources, machine.latency).bound == "mem"


class TestPriorityMetrics:
    def test_heights_and_depths(self, machine):
        g, nodes = chain_graph(3)  # latencies 4 each
        h = heights(g, machine.latency)
        d = depths(g, machine.latency)
        assert h[nodes[0]] == 8 and h[nodes[-1]] == 0
        assert d[nodes[0]] == 0 and d[nodes[-1]] == 8

    def test_critical_path(self, machine):
        g, _ = chain_graph(4)
        assert critical_path_length(g, machine.latency) == 12

    def test_zero_distance_cycle_rejected(self, machine):
        g = DepGraph()
        a = g.add_node(OpType.FADD)
        b = g.add_node(OpType.FADD)
        g.add_edge(a, b)
        g.add_edge(b, a)  # zero-distance cycle: malformed graph
        with pytest.raises(ValueError):
            heights(g, machine.latency)

    def test_loop_carried_edges_ignored_for_heights(self, machine):
        g = DepGraph()
        a = g.add_node(OpType.FADD)
        g.add_edge(a, a, distance=1)
        assert heights(g, machine.latency)[a] == 0
