"""Tests for the session-based API (repro.session) and the v1 shims.

The acceptance contract of the v2 redesign:

* ``Session.evaluate_stream`` yields results *incrementally* -- the
  first run arrives while the slowest loop is still scheduling (verified
  with an instrumented worker) -- and its collected output is
  bit-identical to the batch path on the standard workbench;
* a warm session makes ``compare_configurations`` free (zero
  ``schedule_loop`` calls on the second sweep);
* no-op parallelism requests are warned about, not swallowed;
* every v1 verb keeps working through the shims, with deprecation
  warnings on the plumbing kwargs.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api, serialize
from repro.core.engine import SchedulerEngine
from repro.eval.cache import EvalCache
from repro.session import (
    RunReady,
    Session,
    SuiteFinished,
    SuiteStarted,
    default_session,
)
from repro.workloads.kernels import build_kernel
from repro.workloads.suite import perfect_club_like_suite

SEED = 2003


def normalized(run):
    """The canonical envelope of one run, wall-clock counter zeroed."""
    envelope = serialize.to_dict(run)
    envelope["data"]["result"]["scheduling_time_s"] = 0.0
    return envelope


@pytest.fixture
def schedule_calls(monkeypatch):
    """Count every in-process SchedulerEngine.schedule_loop invocation."""
    calls = {"n": 0}
    original = SchedulerEngine.schedule_loop

    def spy(self, loop):
        calls["n"] += 1
        return original(self, loop)

    monkeypatch.setattr(SchedulerEngine, "schedule_loop", spy)
    return calls


# --------------------------------------------------------------------------- #
# Streaming: equivalence with the batch path
# --------------------------------------------------------------------------- #
class TestEvaluateStream:
    def test_stream_equals_batch_on_64_loop_workbench(self):
        """The acceptance criterion: collected stream == batch, bit for bit."""
        loops = perfect_club_like_suite(64, seed=SEED)
        session = Session()
        streamed = list(session.evaluate_stream("S64", loops=loops))
        batch = session.evaluate_configuration("S64", loops=loops)
        assert len(streamed) == len(batch.runs) == 64
        # Serial streams arrive in workbench order; compare pointwise and
        # as canonical JSON (everything but the wall-clock counter).
        for stream_run, batch_run in zip(streamed, batch.runs):
            assert normalized(stream_run) == normalized(batch_run)

    def test_parallel_stream_equals_batch_any_arrival_order(self):
        loops = perfect_club_like_suite(12, seed=7)
        session = Session()
        batch = session.evaluate_configuration("4C16S16", loops=loops)
        with Session(jobs=2) as parallel_session:
            streamed = list(
                parallel_session.evaluate_stream("4C16S16", loops=loops)
            )
        assert len(streamed) == len(batch.runs)
        # Arrival order is unspecified: match by loop identity.
        by_name = {run.loop.name: run for run in streamed}
        assert set(by_name) == {run.loop.name for run in batch.runs}
        for batch_run in batch.runs:
            assert normalized(by_name[batch_run.loop.name]) == normalized(batch_run)

    def test_event_stream_structure_and_report(self):
        session = Session()
        events = list(session.evaluate_stream("S64", n_loops=5, events=True))
        assert isinstance(events[0], SuiteStarted)
        assert events[0].n_total == 5
        ready = [event for event in events if isinstance(event, RunReady)]
        assert [event.n_done for event in ready] == [1, 2, 3, 4, 5]
        assert isinstance(events[-1], SuiteFinished)
        report = events[-1].report
        batch = session.evaluate_configuration("S64", n_loops=5)
        assert [normalized(run) for run in report.runs] == [
            normalized(run) for run in batch.runs
        ]
        assert report.cycles == batch.cycles

    def test_warm_session_streams_from_cache(self, schedule_calls):
        session = Session(cache=EvalCache())
        list(session.evaluate_stream("S64", n_loops=6))
        assert schedule_calls["n"] == 6
        events = list(session.evaluate_stream("S64", n_loops=6, events=True))
        assert schedule_calls["n"] == 6  # zero new scheduling
        ready = [event for event in events if isinstance(event, RunReady)]
        assert all(event.cached for event in ready)

    def test_first_result_arrives_before_slowest_loop_finishes(self, monkeypatch):
        """Instrumented-worker check of the incremental contract.

        One marker loop is made artificially slow inside the worker; with
        two workers the fast loops must be yielded to the consumer while
        the slow one is still scheduling.  Threads stand in for processes
        so the instrumentation is observable in-process.
        """
        import repro.eval.experiments as experiments_mod
        import repro.session.core as session_mod

        slow_done_at = {"t": None}
        original = experiments_mod._schedule_one

        def instrumented(loop, engine, scaled, spec, prefetch):
            if loop.name == "slow_marker":
                time.sleep(0.6)
                run = original(loop, engine, scaled, spec, prefetch)
                slow_done_at["t"] = time.monotonic()
                return run
            return original(loop, engine, scaled, spec, prefetch)

        monkeypatch.setattr(experiments_mod, "_schedule_one", instrumented)
        monkeypatch.setattr(session_mod, "ProcessPoolExecutor", ThreadPoolExecutor)

        slow = build_kernel("daxpy")
        slow.name = "slow_marker"
        fast = []
        for index in range(7):
            loop = build_kernel("vadd")
            loop.name = f"fast_{index}"
            fast.append(loop)
        loops = [slow, *fast]  # the slow loop is submitted first

        with Session(jobs=2) as session:
            first_names, first_yield_at = [], None
            for run in session.evaluate_stream("S64", loops=loops):
                if first_yield_at is None:
                    first_yield_at = time.monotonic()
                first_names.append(run.loop.name)
        assert slow_done_at["t"] is not None
        # The stream yielded its first (fast) result while the slow loop
        # was still inside the worker, and the slow loop arrived last.
        assert first_yield_at < slow_done_at["t"]
        assert first_names[0] != "slow_marker"
        assert first_names[-1] == "slow_marker"
        assert sorted(first_names) == sorted(loop.name for loop in loops)

    def test_abandoned_stream_is_safe(self):
        session = Session()
        stream = session.evaluate_stream("S64", n_loops=6)
        first = next(stream)
        assert first.result.success
        stream.close()  # no leaked state; session still usable
        assert session.evaluate_configuration("S64", n_loops=2).n_failed == 0


# --------------------------------------------------------------------------- #
# Session state: cache, pool, lifecycle
# --------------------------------------------------------------------------- #
class TestSessionState:
    def test_session_cache_shared_across_verbs(self, schedule_calls):
        session = Session(cache=EvalCache())
        session.evaluate_configuration("S64", n_loops=4)
        cold = schedule_calls["n"]
        assert cold == 4
        session.evaluate_configuration("S64", n_loops=4)
        assert schedule_calls["n"] == cold

    def test_warm_session_compare_is_free(self, schedule_calls):
        """Satellite: compare_configurations reuses the session cache."""
        session = Session(cache=EvalCache())
        cold = session.compare_configurations(
            ["S64", "4C16S16"], n_loops=4, seed=SEED
        )
        calls_after_cold = schedule_calls["n"]
        assert calls_after_cold > 0
        warm = session.compare_configurations(
            ["S64", "4C16S16"], n_loops=4, seed=SEED
        )
        assert schedule_calls["n"] == calls_after_cold  # zero schedule_loop calls
        assert warm["ranking"] == cold["ranking"]

    def test_compare_without_session_cache_still_dedups(self, schedule_calls):
        session = Session()
        # S64 appears as reference and explicitly: scheduled once.
        session.compare_configurations(["S64"], n_loops=3, seed=SEED)
        assert schedule_calls["n"] == 3

    def test_schedule_kernel_warms_the_session_cache(self, schedule_calls):
        session = Session(cache=EvalCache())
        first = session.schedule_kernel("daxpy", "4C16S16")
        assert schedule_calls["n"] == 1
        second = session.schedule_kernel("daxpy", "4C16S16")
        assert schedule_calls["n"] == 1  # served from the session cache
        assert second.ii == first.ii

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Session(jobs=-1)
        with pytest.raises(ValueError):
            Session(policy="not_a_bundle")

    def test_closed_session_rejected(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.schedule_kernel("daxpy", "S64")
        with pytest.raises(RuntimeError, match="closed"):
            list(session.evaluate_stream("S64", n_loops=1))

    def test_context_manager_closes(self):
        with Session() as session:
            session.schedule_kernel("daxpy", "S64")
        assert session.stats()["closed"]

    def test_default_session_is_reused_and_recreated(self):
        first = default_session()
        assert default_session() is first
        first.close()
        second = default_session()
        assert second is not first
        assert not second.stats()["closed"]

    def test_stats_shape(self):
        session = Session(cache=EvalCache())
        session.schedule_kernel("daxpy", "S64")
        stats = session.stats()
        assert stats["policy"] == "mirs_hc"
        assert stats["cache"]["stores"] == 1
        assert stats["pool_active"] is False


# --------------------------------------------------------------------------- #
# Satellite: no-op parallelism is warned about, not swallowed
# --------------------------------------------------------------------------- #
class TestNoOpJobsValidation:
    def test_schedule_kernel_warns_on_noop_jobs(self):
        session = Session()
        with pytest.warns(UserWarning, match="no effect"):
            result = session.schedule_kernel("daxpy", "S64", jobs=4)
        assert result.success  # warned, not rejected

    def test_schedule_kernel_warns_on_jobs_zero(self):
        # jobs=0 means "all CPUs" -- still a no-op for one loop, unless
        # the machine genuinely has a single CPU (then it *is* serial).
        from repro.eval.parallel import resolve_jobs

        if resolve_jobs(0) == 1:
            pytest.skip("single-CPU machine: jobs=0 is serial, no warning due")
        with pytest.warns(UserWarning, match="no effect"):
            Session().schedule_kernel("daxpy", "S64", jobs=0)

    def test_no_warning_for_serial_or_default(self):
        session = Session(jobs=2)  # session-wide default is not a no-op request
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session.schedule_kernel("daxpy", "S64")
            session.schedule_kernel("daxpy", "S64", jobs=1)
        session.close()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            Session().schedule_kernel("daxpy", "S64", jobs=-2)


# --------------------------------------------------------------------------- #
# v1 shims: identical behaviour plus deprecation warnings
# --------------------------------------------------------------------------- #
class TestV1Shims:
    def test_plain_calls_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.schedule_kernel("daxpy", "S64")
            api.evaluate_configuration("S64", n_loops=2)
            api.compare_configurations(["S64"], n_loops=2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "non_iterative"},
            {"jobs": 1},
            {"cache": EvalCache()},
            {"budget_ratio": 4.0},
        ],
    )
    def test_schedule_kernel_plumbing_warns(self, kwargs):
        with pytest.warns(DeprecationWarning, match="repro.session.Session"):
            result = api.schedule_kernel("daxpy", "S64", **kwargs)
        assert result.success

    def test_evaluate_configuration_plumbing_warns(self):
        from repro.machine import baseline_machine

        with pytest.warns(DeprecationWarning, match="machine"):
            report = api.evaluate_configuration(
                "S64", n_loops=2, machine=baseline_machine()
            )
        assert report.n_failed == 0

    def test_compare_configurations_cache_warns_but_works(self, schedule_calls):
        cache = EvalCache()
        with pytest.warns(DeprecationWarning, match="cache"):
            cold = api.compare_configurations(
                ["S64", "4C16S16"], n_loops=3, seed=SEED, cache=cache
            )
        calls_after_cold = schedule_calls["n"]
        with pytest.warns(DeprecationWarning, match="cache"):
            warm = api.compare_configurations(
                ["S64", "4C16S16"], n_loops=3, seed=SEED, cache=cache
            )
        assert schedule_calls["n"] == calls_after_cold
        assert warm["ranking"] == cold["ranking"]

    def test_shim_results_match_session_results(self):
        shim = api.schedule_kernel("fir_filter", "4C16S16", taps=8)
        direct = Session().schedule_kernel("fir_filter", "4C16S16", taps=8)
        a, b = serialize.to_dict(shim), serialize.to_dict(direct)
        a["data"]["scheduling_time_s"] = b["data"]["scheduling_time_s"] = 0.0
        assert a == b

    def test_policy_override_still_honoured(self):
        with pytest.warns(DeprecationWarning):
            result = api.schedule_kernel(
                "daxpy", "4C16S16", policy="non_iterative"
            )
        assert result.policy == "non_iterative"

    def test_configuration_report_reexported(self):
        assert api.ConfigurationReport is not None
        report = api.evaluate_configuration("S64", n_loops=2)
        assert isinstance(report, api.ConfigurationReport)


class TestTierResolution:
    """Naming a tier means the whole tier -- never a silent subset."""

    def test_tier_without_n_loops_builds_the_whole_tier(self):
        from repro.session import Session

        with Session() as session:
            report = session.evaluate_configuration("S64", tier="tiny")
        assert len(report.runs) == 16

    def test_no_tier_keeps_the_64_loop_default(self):
        from repro.session import Session

        with Session() as session:
            workbench = session._workbench(None, None, 2003, None)
        assert len(workbench) == Session.DEFAULT_N_LOOPS == 64
