"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import MachineConfig, RFConfig, baseline_machine, config_by_name
from repro.hwmodel import scaled_machine
from repro.workloads import build_kernel, perfect_club_like_suite


@pytest.fixture(scope="session")
def machine() -> MachineConfig:
    """The paper's baseline datapath (8 FP units + 4 memory ports)."""
    return baseline_machine()


@pytest.fixture(scope="session")
def tiny_loops():
    """A handful of loops shared by integration tests (kernels only)."""
    return perfect_club_like_suite(n_loops=12, seed=42)


@pytest.fixture(scope="session")
def small_loops():
    """A slightly larger deterministic workbench for slower integration tests."""
    return perfect_club_like_suite(n_loops=24, seed=7)


@pytest.fixture
def daxpy_loop():
    return build_kernel("daxpy", trip_count=200)


@pytest.fixture
def dot_loop():
    return build_kernel("dot_product", trip_count=200)


def scaled_for(config_name: str):
    """Helper used across tests: (scaled machine, rf config) for a name."""
    rf = config_by_name(config_name)
    scaled, _spec = scaled_machine(baseline_machine(), rf)
    return scaled, rf


@pytest.fixture
def scaled_for_fixture():
    return scaled_for
