"""Tests for the differential execution verifier.

Three layers are covered:

* the value algebra and the scalar reference executor (determinism,
  operand-order insensitivity, carried-value semantics);
* the VLIW interpreter against known-good schedules (kernels and
  generated loops across all four register-file families must match the
  reference exactly, including heavily spilled schedules);
* deliberate corruption: a mutated register assignment, a dropped code
  slot, or a tampered schedule must be *caught* -- this is the whole
  point of an execution oracle, and the acceptance test for the
  subsystem.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.allocation import allocate_registers
from repro.core.codegen import generate_code
from repro.core.mirs_hc import MirsHC
from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import MemRef, OpType
from repro.hwmodel import scaled_machine
from repro.machine import baseline_machine, config_by_name
from repro.verify import values as V
from repro.verify.differential import (
    DifferentialError,
    differential_check,
    default_iterations,
)
from repro.verify.reference import dataflow_order, reference_execute
from repro.verify.vliw import interpret_program
from repro.workloads.generator import PROFILES, generate_loop
from repro.workloads.kernels import build_kernel


def scheduled(loop, config_name, **kwargs):
    rf = config_by_name(config_name)
    machine, _spec = scaled_machine(baseline_machine(), rf)
    result = MirsHC(machine, rf, **kwargs).schedule_loop(loop)
    assert result.success, f"{loop.name} did not schedule on {config_name}"
    return result, machine, rf


# --------------------------------------------------------------------------- #
# Value algebra
# --------------------------------------------------------------------------- #
class TestValueAlgebra:
    def test_mix_is_deterministic_and_64_bit(self):
        assert V.mix(1, 2, 3) == V.mix(1, 2, 3)
        assert 0 <= V.mix(1, 2, 3) < (1 << 64)
        assert V.mix(1, 2) != V.mix(2, 1)

    def test_compute_value_is_operand_order_insensitive(self):
        a, b = V.mix(10), V.mix(20)
        assert V.compute_value(OpType.FADD, [a, b]) == V.compute_value(
            OpType.FADD, [b, a]
        )

    def test_compute_value_distinguishes_operations(self):
        a, b = V.mix(10), V.mix(20)
        assert V.compute_value(OpType.FADD, [a, b]) != V.compute_value(
            OpType.FMUL, [a, b]
        )

    def test_domains_are_disjoint(self):
        assert V.live_in_value(3) != V.initial_value(3, -1)
        assert V.load_value(3) != V.live_in_value(3)


# --------------------------------------------------------------------------- #
# Reference executor
# --------------------------------------------------------------------------- #
class TestReferenceExecutor:
    def test_streams_are_deterministic(self):
        loop = build_kernel("daxpy")
        first = reference_execute(loop, 8)
        second = reference_execute(loop, 8)
        assert first.store_streams == second.store_streams

    def test_recurrence_produces_distinct_values_per_iteration(self):
        loop = build_kernel("dot_product")
        trace = reference_execute(loop, 6)
        for stream in trace.store_streams.values():
            assert len(set(stream)) == len(stream)

    def test_carried_use_reads_earlier_iteration(self):
        graph = DepGraph()
        load = graph.add_node(OpType.LOAD, mem_ref=MemRef(array="a"))
        add = graph.add_node(OpType.FADD)
        store = graph.add_node(OpType.STORE, mem_ref=MemRef(array="out"))
        graph.add_edge(load, add, distance=2)
        graph.add_edge(add, store)
        loop = Loop(name="carried", graph=graph)
        trace = reference_execute(loop, 5)
        # Iterations 0 and 1 read pre-loop values; from iteration 2 on the
        # add consumes the load of iteration i - 2.
        expected = [
            V.compute_value(OpType.FADD, [V.initial_value(load, -2)]),
            V.compute_value(OpType.FADD, [V.initial_value(load, -1)]),
        ]
        assert trace.store_streams[store][:2] == expected
        assert trace.store_streams[store][2] == V.compute_value(
            OpType.FADD, [trace.values[(load, 0)]]
        )

    def test_preloop_values_walk_comm_chains_back_to_original_nodes(self):
        """Regression: a corpus graph that already contains an inserted
        comm node with a carried use must not trip the oracle -- both
        executors key pre-loop values by the chain's *original* producer,
        not by the comm node's own id."""
        from repro.verify.fuzz import run_pipeline

        graph = DepGraph()
        load = graph.add_node(OpType.LOAD, mem_ref=MemRef(array="a"))
        comm = graph.add_node(
            OpType.LOADR, is_inserted=True, inserted_for=load, home_cluster=0
        )
        store = graph.add_node(OpType.STORE, mem_ref=MemRef(array="out"))
        graph.add_edge(load, comm)
        graph.add_edge(comm, store, distance=1)  # carried use of the copy
        loop = Loop(name="mid_pipeline", graph=graph)
        outcome = run_pipeline(loop, config_by_name("4C16S16"))
        assert outcome.status == "ok", outcome.message

    def test_zero_distance_cycle_is_rejected(self):
        graph = DepGraph()
        a = graph.add_node(OpType.FADD)
        b = graph.add_node(OpType.FADD)
        graph.add_edge(a, b)
        graph.add_edge(b, a)
        with pytest.raises(ValueError, match="cycle"):
            dataflow_order(graph)


# --------------------------------------------------------------------------- #
# Known-good schedules must match the reference exactly
# --------------------------------------------------------------------------- #
class TestDifferentialOnCorrectSchedules:
    @pytest.mark.parametrize("config_name", ["S128", "S64", "2C32", "1C64S64", "4C16S16"])
    @pytest.mark.parametrize("kernel", ["daxpy", "fir_filter"])
    def test_kernels_match_on_every_family(self, kernel, config_name):
        loop = build_kernel(kernel)
        result, machine, rf = scheduled(loop, config_name)
        report = differential_check(loop, result, machine, rf)
        assert report.ok, report.describe_failure()

    def test_spilled_schedule_matches(self):
        # A loop whose schedule needs the full two-level spill chain
        # (StoreR/LoadR plus spill stores/loads to memory).  The heavier
        # PR 1 regression loop lives in tests/corpus/ and is replayed by
        # test_corpus.py.
        loop = generate_loop(
            np.random.default_rng(10), PROFILES["balanced"], index=0, name="spilly"
        )
        result, machine, rf = scheduled(loop, "8C16S16")
        assert result.n_spill_memory_ops > 0  # the case is only interesting spilled
        report = differential_check(loop, result, machine, rf)
        assert report.ok, report.describe_failure()

    def test_generated_loops_match_on_clustered_config(self):
        rng = np.random.default_rng(11)
        for index in range(3):
            loop = generate_loop(rng, PROFILES["balanced"], index=index)
            result, machine, rf = scheduled(loop, "4C16S16")
            report = differential_check(loop, result, machine, rf)
            assert report.ok, report.describe_failure()

    def test_window_covers_pipeline_depth(self):
        loop = build_kernel("daxpy")
        result, machine, rf = scheduled(loop, "S64")
        assert default_iterations(loop, result) >= result.stage_count


# --------------------------------------------------------------------------- #
# Corruption must be caught
# --------------------------------------------------------------------------- #
def overlapping_arc_pair(allocation, ii):
    """Two values of one bank whose cyclic arcs overlap (on different regs)."""
    def arc(value):
        length = max(1, value.lifetime_end - value.lifetime_start)
        full, rem = divmod(length, ii)
        if rem == 0:
            return None
        return value.lifetime_start % ii, rem

    for bank_alloc in allocation.banks.values():
        values = bank_alloc.values
        for i, first in enumerate(values):
            arc_a = arc(first)
            if arc_a is None:
                continue
            for second in values[i + 1:]:
                if second.base_register == first.base_register:
                    continue
                arc_b = arc(second)
                if arc_b is None:
                    continue
                forward = (arc_b[0] - arc_a[0]) % ii
                backward = (arc_a[0] - arc_b[0]) % ii
                if forward < arc_a[1] or backward < arc_b[1]:
                    return bank_alloc, first, second
    return None


class TestCorruptionIsCaught:
    def test_mutated_register_assignment_is_caught(self):
        """The acceptance check: corrupt one register number, observe it."""
        loop = generate_loop(
            np.random.default_rng(3), PROFILES["balanced"], index=0, name="victim"
        )
        result, machine, rf = scheduled(loop, "S64")
        allocation = allocate_registers(result, machine, rf)
        pair = overlapping_arc_pair(allocation, result.ii)
        assert pair is not None, "test loop has no overlapping arcs to corrupt"
        bank_alloc, first, second = pair
        # Move `first` onto the register that hosts `second`'s arc: the two
        # values now collide in time on one physical register.
        corrupted = dataclasses.replace(
            first, base_register=second.base_register
        )
        bank_alloc.values[bank_alloc.values.index(first)] = corrupted

        report = differential_check(
            loop, result, machine, rf, allocation=allocation
        )
        assert not report.ok
        assert report.mismatches or any(
            anomaly.kind == "register-collision" for anomaly in report.anomalies
        )

    def test_clean_allocation_passes_the_same_check(self):
        loop = generate_loop(
            np.random.default_rng(3), PROFILES["balanced"], index=0, name="victim"
        )
        result, machine, rf = scheduled(loop, "S64")
        report = differential_check(loop, result, machine, rf)
        assert report.ok, report.describe_failure()

    def test_dropped_code_slot_is_caught(self):
        loop = build_kernel("daxpy")
        result, machine, rf = scheduled(loop, "S64")
        allocation = allocate_registers(result, machine, rf)
        program = generate_code(result, allocation=allocation)
        victim = next(word for word in program.kernel if word.slots)
        victim.slots.pop()
        report = differential_check(
            loop, result, machine, rf, allocation=allocation, program=program
        )
        assert not report.ok
        assert any(a.kind == "codegen-coverage" for a in report.anomalies)

    def test_execution_trace_covers_every_instance_once(self):
        loop = build_kernel("fir_filter")
        result, machine, rf = scheduled(loop, "4C16S16")
        program = generate_code(result)
        n = max(result.stage_count, 6)
        seen = {}
        for slot in program.execution_trace(n):
            seen[(slot.node_id, slot.iteration)] = (
                seen.get((slot.node_id, slot.iteration), 0) + 1
            )
            assert slot.cycle == slot.iteration * result.ii + result.cycle_of(
                slot.node_id
            )
        expected = {
            (node_id, i)
            for node_id, placed in result.assignments.items()
            if not placed.op.is_pseudo
            for i in range(n)
        }
        assert seen == {instance: 1 for instance in expected}

    def test_execution_trace_rejects_short_runs(self):
        loop = build_kernel("daxpy")
        result, machine, rf = scheduled(loop, "S64")
        program = generate_code(result)
        if program.stage_count > 1:
            with pytest.raises(ValueError, match="pipeline depth"):
                program.execution_trace(program.stage_count - 1)

    def test_describe_failure_reports_exact_suppressed_count(self):
        from repro.verify.differential import DifferentialReport, Mismatch

        report = DifferentialReport(
            loop_name="x", config_name="S64", ii=2, n_iterations=4,
            mismatches=[
                Mismatch(store_id=i, iteration=0, expected=1, actual=2)
                for i in range(8)
            ],
        )
        text = report.describe_failure(limit=6)
        assert "(2 suppressed)" in text
        assert "suppressed" not in report.describe_failure(limit=8)

    def test_differential_error_embeds_reproducer(self):
        loop = build_kernel("daxpy")
        result, machine, rf = scheduled(loop, "S64")
        report = differential_check(loop, result, machine, rf)
        report.mismatches.append(  # fabricate a failure on a real report
            __import__("repro.verify.differential", fromlist=["Mismatch"]).Mismatch(
                store_id=1, iteration=0, expected=1, actual=2
            )
        )
        with pytest.raises(DifferentialError) as excinfo:
            report.raise_for_failure(
                reproducer="[seed=1 profile=balanced config=S64 II=3] "
                "python -m repro.cli fuzz --seeds 1 --base-seed 1"
            )
        message = str(excinfo.value)
        assert "reproduce:" in message
        assert "seed=1" in message and "config=S64" in message and "II=3" in message
