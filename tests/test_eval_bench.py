"""The benchmark runner and the BENCH_*.json comparison gate."""

from __future__ import annotations

import copy

import pytest

from repro.eval.bench import (
    BENCH_SCHEMA_VERSION,
    compare_bench,
    run_workbench_bench,
)


@pytest.fixture(scope="module")
def record():
    """One real (tiny, fast) benchmark record shared by the tests."""
    return run_workbench_bench(tier="tiny", configs=("S64",), shard_size=8)


class TestRunner:
    def test_record_shape(self, record):
        assert record["kind"] == "workbench"
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["tier"] == "tiny"
        assert record["n_loops"] == 16
        entry = record["configs"]["S64"]
        assert entry["n_shards"] == 2
        assert entry["cold"]["wall_s"] > 0
        assert entry["cold"]["loops_per_s"] > 0
        assert entry["cold"]["n_failed"] == 0

    def test_resume_pass_restores_every_shard(self, record):
        entry = record["configs"]["S64"]
        assert entry["cold"]["store"]["stores"] == entry["n_shards"]
        assert entry["resume"]["store"]["hits"] == entry["n_shards"]
        assert entry["resume"]["store"]["stores"] == 0

    def test_resume_is_identical(self, record):
        entry = record["configs"]["S64"]
        assert entry["resume_identical"] is True
        assert entry["cold"]["digest"] == entry["resume"]["digest"]
        assert record["totals"]["resume_identical"] is True

    def test_persistent_checkpoint_dir_survives(self, tmp_path):
        first = run_workbench_bench(
            tier="tiny", configs=("S64",), shard_size=8,
            checkpoint_dir=tmp_path,
        )
        # A second bench against the same directory starts warm: even the
        # "cold" pass restores every shard.
        second = run_workbench_bench(
            tier="tiny", configs=("S64",), shard_size=8,
            checkpoint_dir=tmp_path,
        )
        assert second["configs"]["S64"]["cold"]["store"]["hits"] == 2
        assert (
            second["configs"]["S64"]["cold"]["digest"]
            == first["configs"]["S64"]["cold"]["digest"]
        )

    def test_oversized_loops_raise(self):
        from repro.workloads.suite import WorkbenchSizeError

        with pytest.raises(WorkbenchSizeError):
            run_workbench_bench(tier="tiny", configs=("S64",), n_loops=100)


class TestWorkbenchGate:
    def test_identical_records_pass(self, record):
        problems, notes = compare_bench(record, record)
        assert problems == []
        assert notes == []

    def test_wall_clock_regression_fails(self, record):
        # Pin the baseline above the noise floor so the relative check
        # actually applies (sub-noise timings are deliberately ungated).
        base = copy.deepcopy(record)
        base["configs"]["S64"]["cold"]["wall_s"] = 1.0
        slow = copy.deepcopy(base)
        slow["configs"]["S64"]["cold"]["wall_s"] = 2.0
        problems, _notes = compare_bench(base, slow, tolerance=0.25)
        assert any("wall-clock regressed" in p for p in problems)

    def test_wall_clock_within_tolerance_passes(self, record):
        base = copy.deepcopy(record)
        base["configs"]["S64"]["cold"]["wall_s"] = 1.0
        slightly = copy.deepcopy(base)
        slightly["configs"]["S64"]["cold"]["wall_s"] = 1.10
        problems, _notes = compare_bench(base, slightly, tolerance=0.25)
        assert problems == []

    def test_lost_resume_identity_fails(self, record):
        broken = copy.deepcopy(record)
        broken["configs"]["S64"]["resume_identical"] = False
        problems, _notes = compare_bench(record, broken)
        assert any("bit-identical" in p for p in problems)

    def test_new_scheduling_failures_fail(self, record):
        failing = copy.deepcopy(record)
        failing["configs"]["S64"]["cold"]["n_failed"] = 3
        problems, _notes = compare_bench(record, failing)
        assert any("failed to schedule" in p for p in problems)

    def test_sum_ii_change_is_a_note_not_a_failure(self, record):
        changed = copy.deepcopy(record)
        changed["configs"]["S64"]["cold"]["sum_ii"] += 1
        problems, notes = compare_bench(record, changed)
        assert problems == []
        assert any("sum II changed" in n for n in notes)

    def test_missing_config_fails(self, record):
        gutted = copy.deepcopy(record)
        del gutted["configs"]["S64"]
        problems, _notes = compare_bench(record, gutted)
        assert any("missing" in p for p in problems)


class TestSchedulerGate:
    """The gate also understands the scheduler microbench record."""

    BASELINE = {
        "schema": 1,
        "full_sweep_mode": {"full_sweeps": 12000, "wall_s": 3.5},
        "incremental": {"full_sweeps": 0, "wall_s": 0.8},
        "kernels": {
            "daxpy@S64": {"full_sweeps": 0, "ii": 1, "wall_s": 0.0005},
        },
    }

    def test_identical_passes(self):
        problems, _notes = compare_bench(self.BASELINE, self.BASELINE)
        assert problems == []

    def test_any_full_sweep_increase_fails(self):
        fresh = copy.deepcopy(self.BASELINE)
        fresh["incremental"]["full_sweeps"] = 1
        problems, _notes = compare_bench(self.BASELINE, fresh)
        assert any("full sweeps increased" in p for p in problems)

    def test_wall_clock_regression_fails(self):
        fresh = copy.deepcopy(self.BASELINE)
        fresh["incremental"]["wall_s"] = 2.0
        problems, _notes = compare_bench(self.BASELINE, fresh, tolerance=0.25)
        assert any("wall-clock regressed" in p for p in problems)

    def test_small_wall_clock_noise_passes(self):
        fresh = copy.deepcopy(self.BASELINE)
        fresh["incremental"]["wall_s"] *= 1.2
        fresh["kernels"]["daxpy@S64"]["wall_s"] *= 1.2
        problems, _notes = compare_bench(self.BASELINE, fresh, tolerance=0.25)
        assert problems == []

    def test_missing_counter_fails(self):
        fresh = copy.deepcopy(self.BASELINE)
        del fresh["kernels"]["daxpy@S64"]
        problems, _notes = compare_bench(self.BASELINE, fresh)
        assert any("missing" in p for p in problems)


class TestGateNoiseHandling:
    """Review fixes: noise floor + warm-started passes are not gated."""

    def test_sub_noise_wall_clock_is_never_gated(self, record):
        import copy as _copy

        base = _copy.deepcopy(record)
        base["configs"]["S64"]["cold"]["wall_s"] = 0.010
        fresh = _copy.deepcopy(base)
        fresh["configs"]["S64"]["cold"]["wall_s"] = 0.020  # 2x, but noise
        problems, _notes = compare_bench(base, fresh, tolerance=0.25)
        assert problems == []

    def test_warm_started_cold_pass_is_noted_not_gated(self, record):
        import copy as _copy

        fresh = _copy.deepcopy(record)
        fresh["configs"]["S64"]["cold"]["wall_s"] = 999.0
        fresh["configs"]["S64"]["cold"]["warm_start"] = True
        problems, notes = compare_bench(record, fresh, tolerance=0.25)
        assert problems == []
        assert any("warm-started" in n for n in notes)

    def test_cold_pass_records_warm_start_flag(self, record, tmp_path):
        first = run_workbench_bench(
            tier="tiny", configs=("S64",), shard_size=8,
            checkpoint_dir=tmp_path,
        )
        assert first["configs"]["S64"]["cold"]["warm_start"] is False
        second = run_workbench_bench(
            tier="tiny", configs=("S64",), shard_size=8,
            checkpoint_dir=tmp_path,
        )
        assert second["configs"]["S64"]["cold"]["warm_start"] is True
