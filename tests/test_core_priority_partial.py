"""Unit tests for the node ordering, the priority list and the partial schedule."""

import pytest

from repro.core.partial import PartialSchedule
from repro.core.priority import PriorityList, order_nodes
from repro.ddg import DepGraph, OpType
from repro.machine import MachineConfig, RFConfig, ResourceModel
from repro.workloads import build_kernel


@pytest.fixture
def machine():
    return MachineConfig()


class TestOrdering:
    def test_excludes_live_ins(self, machine):
        loop = build_kernel("daxpy")
        order = order_nodes(loop.graph, machine.latency)
        live_ins = {n.node_id for n in loop.graph.live_in_nodes()}
        assert not (set(order) & live_ins)
        assert len(order) == len(loop.graph) - len(live_ins)

    def test_recurrence_nodes_come_first(self, machine):
        loop = build_kernel("dot_product")
        order = order_nodes(loop.graph, machine.latency)
        # The accumulator (the only recurrence) must be ordered before the
        # loads that feed it.
        acc = [n.node_id for n in loop.graph.nodes() if n.name == "acc"][0]
        loads = [n.node_id for n in loop.graph.memory_operations()]
        assert order.index(acc) < min(order.index(l) for l in loads)

    def test_neighbour_first_property(self, machine):
        """After the first node, most nodes have an already-ordered neighbour."""
        loop = build_kernel("equation_of_state")
        graph = loop.graph
        order = order_nodes(graph, machine.latency)
        placed = {order[0]}
        adjacent = 0
        for node in order[1:]:
            neighbours = set(graph.successors(node)) | set(graph.predecessors(node))
            if neighbours & placed:
                adjacent += 1
            placed.add(node)
        assert adjacent >= 0.7 * (len(order) - 1)

    def test_empty_graph(self, machine):
        assert order_nodes(DepGraph(), machine.latency) == []


class TestPriorityList:
    def test_pop_order_follows_initial_order(self):
        plist = PriorityList([10, 20, 30])
        assert [plist.pop(), plist.pop(), plist.pop()] == [10, 20, 30]

    def test_reinsert_keeps_original_priority(self):
        plist = PriorityList([10, 20, 30])
        assert plist.pop() == 10
        assert plist.pop() == 20
        plist.push(10)           # ejected node re-enters with its old rank
        assert plist.pop() == 10
        assert plist.pop() == 30

    def test_push_after(self):
        plist = PriorityList([1, 2, 3])
        plist.push(99, after=1)
        assert plist.pop() == 1
        assert plist.pop() == 99

    def test_duplicate_push_ignored(self):
        plist = PriorityList([1])
        plist.push(1)
        assert len(plist) == 1

    def test_discard(self):
        plist = PriorityList([1, 2])
        plist.discard(1)
        assert plist.pop() == 2
        assert not plist

    def test_pop_empty_raises(self):
        plist = PriorityList([])
        with pytest.raises(IndexError):
            plist.pop()

    def test_contains(self):
        plist = PriorityList([5])
        assert 5 in plist
        plist.pop()
        assert 5 not in plist


class TestPartialSchedule:
    def _make(self, machine, config_name="S128", ii=4, kernel="daxpy"):
        rf = RFConfig.parse(config_name)
        loop = build_kernel(kernel)
        resources = ResourceModel(machine, rf)
        return loop.graph, PartialSchedule(loop.graph, ii, machine, rf, resources)

    def test_place_and_remove(self, machine):
        graph, schedule = self._make(machine)
        node = graph.compute_operations()[0].node_id
        schedule.place(node, 3, 0)
        assert schedule.is_scheduled(node)
        assert schedule.times[node] == 3
        schedule.remove(node)
        assert not schedule.is_scheduled(node)

    def test_dependence_window(self, machine):
        graph, schedule = self._make(machine, ii=4)
        mul = [n.node_id for n in graph.nodes() if n.op is OpType.FMUL][0]
        add = [n.node_id for n in graph.nodes() if n.op is OpType.FADD][0]
        schedule.place(mul, 2, 0)
        # add depends on mul with latency 4.
        assert schedule.earliest_start(add) == 6
        schedule.remove(mul)
        schedule.place(add, 10, 0)
        assert schedule.latest_start(mul) == 10 - machine.latency("fmul")

    def test_find_slot_respects_resources(self, machine):
        rf = RFConfig.parse("S128")
        graph = DepGraph()
        loads = [graph.add_node(OpType.LOAD) for _ in range(5)]
        resources = ResourceModel(machine, rf)
        schedule = PartialSchedule(graph, 1, machine, rf, resources)
        # 4 memory ports, II = 1: only 4 loads fit.
        for load in loads[:4]:
            slot = schedule.find_slot(load, None)
            assert slot is not None
            schedule.place(load, slot, None)
        assert schedule.find_slot(loads[4], None) is None

    def test_force_and_eject_on_resource_conflict(self, machine):
        rf = RFConfig.parse("S128")
        graph = DepGraph()
        loads = [graph.add_node(OpType.LOAD) for _ in range(5)]
        resources = ResourceModel(machine, rf)
        schedule = PartialSchedule(graph, 1, machine, rf, resources)
        for load in loads[:4]:
            schedule.schedule(load, None)
        ejected = schedule.schedule(loads[4], None)
        assert len(ejected) >= 1
        assert schedule.is_scheduled(loads[4])
        for victim in ejected:
            assert not schedule.is_scheduled(victim)

    def test_force_cycle_advances(self, machine):
        graph, schedule = self._make(machine, ii=1)
        node = graph.compute_operations()[0].node_id
        schedule.place(node, 0, 0)
        schedule.remove(node)
        assert schedule.force_cycle(node) == 1

    def test_eject_violated_successor(self, machine):
        rf = RFConfig.parse("S128")
        graph = DepGraph()
        mul = graph.add_node(OpType.FMUL)
        add = graph.add_node(OpType.FADD)
        graph.add_edge(mul, add)
        resources = ResourceModel(machine, rf)
        schedule = PartialSchedule(graph, 2, machine, rf, resources)
        schedule.place(add, 1, 0)
        # Forcing mul at a cycle too close to add must eject add.
        schedule.place(mul, 0, 0)
        schedule.remove(mul)
        ejected = schedule.schedule(mul, 0)
        if schedule.times[mul] + machine.latency("fmul") > 1:
            assert add in ejected

    def test_stage_count(self, machine):
        graph, schedule = self._make(machine, ii=2)
        ops = [n.node_id for n in graph.nodes() if not n.op.is_pseudo]
        for index, node in enumerate(ops):
            schedule.place(node, index, None if graph.node(node).op.is_memory else 0)
        assert schedule.stage_count() >= 2
        assert schedule.schedule_length() == len(ops)

    def test_stage_count_empty(self, machine):
        graph, schedule = self._make(machine)
        assert schedule.stage_count() == 1
