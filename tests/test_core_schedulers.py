"""Integration tests: MIRS_HC and the non-iterative baseline on every RF family.

Every schedule produced here is re-checked by the independent validator
(dependences, resources, bank consistency, register capacity), which is
the strongest end-to-end guarantee the test suite provides.
"""

import pytest

from repro.core import MirsHC, NonIterativeScheduler, schedule_loop, validate_schedule
from repro.core.validate import ValidationError
from repro.ddg import OpType
from repro.hwmodel import scaled_machine
from repro.machine import baseline_machine, config_by_name
from repro.workloads import build_kernel, perfect_club_like_suite

CONFIG_FAMILIES = ["S64", "S32", "2C64", "4C32", "1C32S64", "2C32S32", "4C16S16", "8C16S16"]


def scaled(config_name):
    rf = config_by_name(config_name)
    machine, _ = scaled_machine(baseline_machine(), rf)
    return machine, rf


class TestSingleKernels:
    @pytest.mark.parametrize("config_name", CONFIG_FAMILIES)
    @pytest.mark.parametrize("kernel", ["daxpy", "dot_product", "hydro_fragment", "normalize3"])
    def test_kernel_schedules_and_validates(self, config_name, kernel):
        machine, rf = scaled(config_name)
        loop = build_kernel(kernel)
        result = MirsHC(machine, rf).schedule_loop(loop)
        assert result.success
        assert result.ii >= result.mii
        validate_schedule(result, machine, rf)

    def test_monolithic_needs_no_communication(self):
        machine, rf = scaled("S64")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("hydro_fragment"))
        assert result.n_comm_ops == 0

    def test_hierarchical_inserts_loadr_storer(self):
        machine, rf = scaled("4C16S16")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("daxpy"))
        kinds = {op.op for op in result.graph.communication_operations()}
        assert OpType.LOADR in kinds
        assert OpType.STORER in kinds
        assert OpType.MOVE not in kinds

    def test_clustered_uses_moves_only(self):
        machine, rf = scaled("4C32")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("equation_of_state"))
        kinds = {op.op for op in result.graph.communication_operations()}
        assert kinds <= {OpType.MOVE}

    def test_recurrence_loop_respects_recmii(self):
        machine, rf = scaled("S64")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("dot_product"))
        assert result.ii >= machine.latency("fadd")
        assert result.mii_breakdown.rec == machine.latency("fadd")
        assert result.bound == "rec"

    def test_schedule_loop_convenience_wrapper(self):
        result = schedule_loop(build_kernel("vadd"), "2C64")
        assert result.success
        assert result.config_name == "2C64"

    def test_kernel_table_rendering(self):
        result = schedule_loop(build_kernel("daxpy"), "S64")
        text = result.kernel_table()
        assert "II=" in text and "slot" in text
        assert result.summary().startswith("daxpy")


class TestRegisterPressureHandling:
    def test_small_monolithic_bank_forces_spill(self):
        machine, rf = scaled("S32")
        # A wide unrolled loop with many concurrently live values.
        from repro.ddg import unroll

        loop = unroll(build_kernel("equation_of_state"), 2)
        result = MirsHC(machine, rf).schedule_loop(loop)
        assert result.success
        validate_schedule(result, machine, rf)
        assert result.register_usage[-1] <= 32

    def test_hierarchical_absorbs_pressure_without_memory_traffic(self):
        from repro.ddg import unroll

        loop = unroll(build_kernel("equation_of_state"), 2)
        machine32, rf32 = scaled("S32")
        mono = MirsHC(machine32, rf32).schedule_loop(loop.copy())
        machine_h, rf_h = scaled("1C32S64")
        hier = MirsHC(machine_h, rf_h).schedule_loop(loop.copy())
        assert hier.success and mono.success
        # The hierarchical organization spills to its shared bank, not to
        # memory, so it never issues more memory operations than the
        # monolithic configuration.
        assert hier.n_spill_memory_ops <= mono.memory_ops_per_iteration
        assert hier.memory_ops_per_iteration <= mono.memory_ops_per_iteration

    def test_unbounded_configuration_never_spills(self):
        rf = config_by_name("4C16S16").with_unbounded_registers()
        machine, _ = scaled_machine(baseline_machine(), rf)
        result = MirsHC(machine, rf).schedule_loop(build_kernel("equation_of_state"))
        assert result.success
        assert result.n_spill_memory_ops == 0


class TestBaselineScheduler:
    def test_baseline_produces_valid_schedules(self):
        machine, rf = scaled("1C32S64")
        for kernel in ("daxpy", "hydro_fragment", "fir_filter"):
            result = NonIterativeScheduler(machine, rf).schedule_loop(build_kernel(kernel))
            assert result.success
            validate_schedule(result, machine, rf)

    def test_mirs_hc_never_much_worse_than_baseline(self, small_loops):
        machine, rf = scaled("1C32S64")
        iterative = MirsHC(machine, rf)
        baseline = NonIterativeScheduler(machine, rf)
        total_iterative = 0
        total_baseline = 0
        for loop in small_loops[:10]:
            r_it = iterative.schedule_loop(loop)
            r_ba = baseline.schedule_loop(loop)
            assert r_it.success
            total_iterative += r_it.ii
            total_baseline += r_ba.ii if r_ba.success else 4 * r_ba.mii
        # The iterative scheduler should be at least as good in aggregate
        # (this is the paper's Table 4 claim).
        assert total_iterative <= total_baseline


class TestValidatorCatchesBrokenSchedules:
    def test_validator_detects_dependence_violation(self):
        machine, rf = scaled("S64")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("daxpy"))
        # Corrupt the schedule: move one compute op to cycle 0.
        some_compute = next(
            node_id for node_id, placed in result.assignments.items()
            if placed.op.is_compute and any(
                e.kind == "flow" for e in result.graph.in_edges(node_id)
                if not result.graph.node(e.src).op.is_pseudo
            )
        )
        placed = result.assignments[some_compute]
        object.__setattr__(placed, "cycle", 0)
        with pytest.raises(ValidationError):
            validate_schedule(result, machine, rf)

    def test_validator_detects_missing_assignment(self):
        machine, rf = scaled("S64")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("daxpy"))
        node = next(iter(result.assignments))
        del result.assignments[node]
        with pytest.raises(ValidationError):
            validate_schedule(result, machine, rf)

    def test_validator_rejects_failed_result(self):
        machine, rf = scaled("S64")
        result = MirsHC(machine, rf).schedule_loop(build_kernel("daxpy"))
        result.success = False
        with pytest.raises(ValidationError):
            validate_schedule(result, machine, rf)


class TestSuiteIntegration:
    @pytest.mark.parametrize("config_name", ["S64", "4C32", "2C32S32", "8C16S16"])
    def test_small_suite_all_valid(self, tiny_loops, config_name):
        machine, rf = scaled(config_name)
        scheduler = MirsHC(machine, rf)
        for loop in tiny_loops:
            result = scheduler.schedule_loop(loop)
            assert result.success, f"{loop.name} failed on {config_name}"
            validate_schedule(result, machine, rf)
