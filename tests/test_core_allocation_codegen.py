"""Tests for wrap-around register allocation and VLIW code emission."""

import pytest

from repro.core import MirsHC, schedule_loop
from repro.core.allocation import allocate_registers
from repro.core.banks import SHARED
from repro.core.codegen import generate_code
from repro.hwmodel import scaled_machine
from repro.machine import baseline_machine, config_by_name
from repro.workloads import build_kernel
from repro.ddg import unroll


def scheduled(kernel, config_name, unroll_factor=1):
    rf = config_by_name(config_name)
    machine, _ = scaled_machine(baseline_machine(), rf)
    loop = build_kernel(kernel)
    if unroll_factor > 1:
        loop = unroll(loop, unroll_factor)
    result = MirsHC(machine, rf).schedule_loop(loop)
    assert result.success
    return result, machine, rf


class TestRegisterAllocation:
    @pytest.mark.parametrize("config_name", ["S64", "2C32S32", "4C32"])
    @pytest.mark.parametrize("kernel", ["daxpy", "hydro_fragment", "dot_product"])
    def test_allocation_bounds(self, kernel, config_name):
        result, machine, rf = scheduled(kernel, config_name)
        allocation = allocate_registers(result, machine, rf)
        for bank, used in result.register_usage.items():
            allocated = allocation.registers_used(bank)
            # Any valid allocation needs at least MaxLive registers, and the
            # first-fit wrap-around packing stays within 2x of that bound.
            assert allocated >= used
            if used:
                assert allocated <= 2 * used + 2

    def test_every_value_gets_registers(self):
        result, machine, rf = scheduled("equation_of_state", "S64")
        allocation = allocate_registers(result, machine, rf)
        defined = [
            node_id
            for node_id, placed in result.assignments.items()
            if placed.op.defines_register and not placed.op.is_pseudo
        ]
        for node_id in defined:
            assert allocation.register_of(node_id) is not None

    def test_long_lifetimes_get_multiple_registers(self):
        result, machine, rf = scheduled("dot_product", "S64")
        allocation = allocate_registers(result, machine, rf)
        # The loads feed a recurrence-limited loop (II=4, load latency < II)
        # so most values fit in one register; at least one value should need
        # only one register, and counts are always >= 1.
        counts = [v.n_registers for bank in allocation.banks.values() for v in bank.values]
        assert all(count >= 1 for count in counts)
        assert any(count == 1 for count in counts)

    def test_invariants_get_pinned_registers(self):
        result, machine, rf = scheduled("horner", "S64")
        allocation = allocate_registers(result, machine, rf)
        assert allocation.banks[SHARED].invariants

    def test_failed_schedule_rejected(self):
        result, machine, rf = scheduled("daxpy", "S64")
        result.success = False
        with pytest.raises(ValueError):
            allocate_registers(result, machine, rf)

    def test_describe_is_readable(self):
        result, machine, rf = scheduled("daxpy", "2C32S32")
        allocation = allocate_registers(result, machine, rf)
        text = allocation.describe()
        assert "register allocation" in text
        assert "shared" in text


class TestCodeGeneration:
    def test_kernel_has_ii_words(self):
        result, machine, rf = scheduled("daxpy", "S64")
        program = generate_code(result)
        assert len(program.kernel) == result.ii
        assert len(program.prologue) == (result.stage_count - 1) * result.ii
        assert len(program.epilogue) == (result.stage_count - 1) * result.ii

    def test_every_operation_appears_once_in_kernel(self):
        result, machine, rf = scheduled("hydro_fragment", "4C16S16")
        program = generate_code(result)
        kernel_ops = [slot.node_id for word in program.kernel for slot in word.slots]
        expected = [
            node_id for node_id, placed in result.assignments.items()
            if not placed.op.is_pseudo
        ]
        assert sorted(kernel_ops) == sorted(expected)

    def test_prologue_issues_fewer_ops_than_kernel(self):
        result, machine, rf = scheduled("daxpy", "S64")
        program = generate_code(result)
        if program.prologue:
            first_fill = sum(len(w.slots) for w in program.prologue[: result.ii])
            kernel_ops = sum(len(w.slots) for w in program.kernel)
            assert first_fill <= kernel_ops

    def test_destinations_shown_with_allocation(self):
        result, machine, rf = scheduled("daxpy", "2C32S32")
        allocation = allocate_registers(result, machine, rf)
        program = generate_code(result, allocation=allocation)
        rendered = program.render()
        assert "->" in rendered
        assert "kernel:" in rendered

    def test_static_code_size_formula(self):
        for kernel in ("vadd", "normalize3", "fir_filter"):
            result, machine, rf = scheduled(kernel, "S64")
            program = generate_code(result)
            # Prologue and epilogue each have (SC-1)*II words, the kernel II.
            expected = (2 * (program.stage_count - 1) + 1) * program.ii
            assert program.static_instructions == expected
            # Prologue + epilogue + kernel together issue SC copies of every
            # operation distributed over the fill/steady/drain phases.
            per_kernel_ops = sum(len(word.slots) for word in program.kernel)
            assert program.static_operations == program.stage_count * per_kernel_ops

    def test_failed_schedule_rejected(self):
        result, machine, rf = scheduled("vadd", "S64")
        result.success = False
        with pytest.raises(ValueError):
            generate_code(result)

    def test_cluster_annotation_in_rendering(self):
        result, machine, rf = scheduled("daxpy", "4C16S16")
        rendered = generate_code(result).render()
        assert "@c" in rendered          # cluster-resident operations
        assert "@mem" in rendered or "@shr" in rendered
