"""Smoke tests for the runnable examples.

The examples double as end-to-end integration tests: they exercise the
public API exactly the way the README advertises it.  The heavyweight
``reproduce_paper.py`` script is exercised indirectly through
``tests/test_eval_experiments.py`` (same drivers, smaller workbenches).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "design_space_exploration.py",
                "multimedia_kernels.py", "reproduce_paper.py"} <= names

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "S64" in out and "4C16S16" in out
        assert "II=" in out

    def test_design_space_exploration_runs(self, capsys, monkeypatch):
        # argv: [n_loops, budget] -- a tiny budget keeps the tier-1 run fast.
        monkeypatch.setattr(
            sys, "argv", ["design_space_exploration.py", "6", "8"]
        )
        module = load_example("design_space_exploration")
        module.main()
        out = capsys.readouterr().out
        assert "Design-space exploration" in out
        assert "Pareto frontier" in out
        assert "Fastest configuration" in out
        assert "Frontier digest:" in out

    def test_multimedia_kernels_runs(self, capsys):
        module = load_example("multimedia_kernels")
        module.main()
        out = capsys.readouterr().out
        assert "fir_8" in out or "fir_filter" in out or "fir" in out
        assert "4C16S16" in out

    def test_reproduce_paper_importable(self):
        module = load_example("reproduce_paper")
        assert hasattr(module, "main")


class TestApiDocstrings:
    def test_api_examples_run(self):
        """The usage examples in repro.api docstrings execute as written."""
        import doctest

        import repro.api

        results = doctest.testmod(repro.api, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 6  # every verb documents a runnable example

    def test_session_examples_run(self):
        """The usage examples in the Session docstrings execute as written."""
        import doctest

        import repro.session.core

        results = doctest.testmod(repro.session.core, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 8  # every verb documents a runnable example
