"""Auto-replay of the regression corpus.

Every JSON case under ``tests/corpus/`` is discovered and pushed through
the full verification pipeline -- schedule, statically validate,
allocate registers, emit code, differentially execute against the scalar
reference -- and the observed outcome must match the case's ``expect``
field.  Fuzz failures land here (minimized) once fixed; hand-written
regressions (like the PR 1 spill dead-end loops that seed the corpus)
are pinned the same way.
"""

import hashlib
from pathlib import Path

import pytest

from repro.verify.corpus import discover_cases, load_case
from repro.verify.fuzz import run_pipeline

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = discover_cases(CORPUS_DIR)


def test_corpus_is_seeded():
    """The corpus must never silently vanish (a glob typo would otherwise
    turn the whole replay suite into a no-op)."""
    assert len(CASES) >= 4


@pytest.mark.parametrize("path", CASES, ids=[path.stem for path in CASES])
def test_replay_corpus_case(path):
    case = load_case(path)
    outcome = run_pipeline(
        case.loop,
        case.rf,
        case.machine,
        budget_ratio=case.budget_ratio,
        scale_to_clock=case.scale_to_clock,
        n_iterations=case.n_iterations,
        reproducer=f"python -m repro.cli fuzz --replay {path}",
        policy=case.policy,
    )
    assert outcome.status == case.expect, (
        f"{path.name}: expected {case.expect!r}, observed {outcome.status!r}\n"
        f"{case.description}\n{outcome.message}"
    )
    if path.stem.startswith("spill_"):
        # The seeded PR 1 cases are only meaningful while they exercise
        # the two-level spill chain; if a scheduler change stops them
        # spilling, the corpus needs harder cases.
        assert outcome.result is not None
        assert outcome.result.n_spill_memory_ops > 0


def _schedule_digest(result) -> str:
    """Content hash of everything schedule-shaped in a result.

    Wall-clock time is the only field allowed to differ between the
    object and array scheduler cores, so it is zeroed before hashing;
    every placement, counter and usage figure participates.
    """
    payload = result.to_dict()
    payload["scheduling_time_s"] = 0.0
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


@pytest.mark.parametrize("path", CASES, ids=[path.stem for path in CASES])
def test_corpus_case_is_core_invariant(path):
    """Both scheduler cores produce bit-identical schedules on the corpus.

    The array core is a drop-in replacement for the object core; replay
    every frozen case under both and require the same outcome status,
    the same II, the same spill count and the same full-schedule digest
    (placements, clusters, register usage, search trace).
    """
    case = load_case(path)
    outcomes = {
        core: run_pipeline(
            case.loop,
            case.rf,
            case.machine,
            budget_ratio=case.budget_ratio,
            scale_to_clock=case.scale_to_clock,
            n_iterations=case.n_iterations,
            reproducer=f"python -m repro.cli fuzz --replay {path} --core {core}",
            policy=case.policy,
            core=core,
        )
        for core in ("object", "array")
    }
    obj, arr = outcomes["object"], outcomes["array"]
    assert obj.status == arr.status
    assert (obj.result is None) == (arr.result is None)
    if obj.result is not None:
        assert obj.result.ii == arr.result.ii
        assert obj.result.n_spill_memory_ops == arr.result.n_spill_memory_ops
        assert _schedule_digest(obj.result) == _schedule_digest(arr.result)
