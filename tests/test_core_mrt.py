"""Unit tests for the modulo reservation table."""

import pytest

from repro.core.mrt import ModuloReservationTable
from repro.machine.resources import ResourceKind, ResourceUse

FU0 = (ResourceKind.FU, 0)
FU1 = (ResourceKind.FU, 1)
MEM = (ResourceKind.MEM, -1)


def make_table(ii=4, fu=2, mem=1):
    return ModuloReservationTable(ii, {FU0: fu, FU1: fu, MEM: mem})


class TestReservation:
    def test_basic_reserve_release(self):
        table = make_table()
        use = [ResourceUse(FU0)]
        assert table.can_reserve(use, 0)
        table.reserve(1, use, 0)
        assert table.holds(1)
        table.release(1)
        assert not table.holds(1)

    def test_capacity_enforced(self):
        table = make_table(fu=1)
        table.reserve(1, [ResourceUse(FU0)], 0)
        assert not table.can_reserve([ResourceUse(FU0)], 0)
        assert table.can_reserve([ResourceUse(FU0)], 1)
        # Same modulo slot, different absolute cycle -> still full.
        assert not table.can_reserve([ResourceUse(FU0)], 4)

    def test_reserve_checks_capacity(self):
        table = make_table(fu=1)
        table.reserve(1, [ResourceUse(FU0)], 0)
        with pytest.raises(ValueError):
            table.reserve(2, [ResourceUse(FU0)], 4)

    def test_multiple_instances(self):
        table = make_table(fu=2)
        table.reserve(1, [ResourceUse(FU0)], 0)
        assert table.can_reserve([ResourceUse(FU0)], 0)
        table.reserve(2, [ResourceUse(FU0)], 0)
        assert not table.can_reserve([ResourceUse(FU0)], 0)

    def test_zero_capacity_resource(self):
        table = ModuloReservationTable(2, {FU0: 0})
        assert not table.can_reserve([ResourceUse(FU0)], 0)

    def test_release_is_idempotent(self):
        table = make_table()
        table.reserve(1, [ResourceUse(FU0)], 0)
        table.release(1)
        table.release(1)

    def test_invalid_ii(self):
        with pytest.raises(ValueError):
            ModuloReservationTable(0, {FU0: 1})


class TestUnpipelined:
    def test_duration_occupies_consecutive_slots(self):
        table = make_table(ii=4, fu=1)
        table.reserve(1, [ResourceUse(FU0, duration=3)], 1)
        for cycle in (1, 2, 3):
            assert not table.can_reserve([ResourceUse(FU0)], cycle)
        assert table.can_reserve([ResourceUse(FU0)], 0)

    def test_duration_longer_than_ii_occupies_everything(self):
        table = make_table(ii=2, fu=1)
        table.reserve(1, [ResourceUse(FU0, duration=17)], 0)
        assert not table.can_reserve([ResourceUse(FU0)], 0)
        assert not table.can_reserve([ResourceUse(FU0)], 1)

    def test_same_resource_twice_in_one_call(self):
        table = make_table(ii=4, fu=1)
        # Two uses of the same resource in the same slot need 2 instances.
        assert not table.can_reserve([ResourceUse(FU0), ResourceUse(FU0)], 0)

    def test_offset_uses(self):
        table = make_table(ii=4, mem=1)
        table.reserve(1, [ResourceUse(MEM, offset=2)], 0)
        assert not table.can_reserve([ResourceUse(MEM)], 2)
        assert table.can_reserve([ResourceUse(MEM)], 0)


class TestConflictsAndUtilization:
    def test_conflicting_nodes(self):
        table = make_table(fu=1)
        table.reserve(7, [ResourceUse(FU0)], 1)
        conflicts = table.conflicting_nodes([ResourceUse(FU0)], 5)  # slot 1
        assert conflicts == {7}
        assert table.conflicting_nodes([ResourceUse(FU0)], 2) == set()

    def test_conflicts_only_on_full_slots(self):
        table = make_table(fu=2)
        table.reserve(7, [ResourceUse(FU0)], 1)
        assert table.conflicting_nodes([ResourceUse(FU0)], 1) == set()

    def test_utilization(self):
        table = make_table(ii=4, fu=1)
        table.reserve(1, [ResourceUse(FU0)], 0)
        table.reserve(2, [ResourceUse(FU0)], 1)
        util = table.utilization()
        assert util[FU0] == pytest.approx(0.5)
        assert util[MEM] == 0.0
