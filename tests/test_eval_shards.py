"""Sharded, checkpointed evaluation: planning, the store, and resume."""

from __future__ import annotations

import itertools
import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import serialize
from repro.core.engine import SchedulerEngine
from repro.eval.experiments import iter_schedule_suite, schedule_suite
from repro.eval.shards import (
    DEFAULT_SHARD_SIZE,
    ResultStore,
    canonical_run_payload,
    iter_schedule_suite_sharded,
    plan_shards,
    report_digest,
    runs_digest,
)
from repro.session import Session
from repro.workloads.suite import WorkbenchSizeError, perfect_club_like_suite

N_LOOPS = 10
SHARD_SIZE = 3


@pytest.fixture(scope="module")
def workbench():
    return perfect_club_like_suite(n_loops=N_LOOPS, seed=2003)


@pytest.fixture(scope="module")
def uninterrupted(workbench):
    """Reference runs + canonical digest of an uninterrupted evaluation."""
    runs = schedule_suite(workbench, "S64")
    return runs, runs_digest(runs)


@pytest.fixture
def schedule_counter(monkeypatch):
    """Count every in-process engine scheduling call."""
    calls = []
    original = SchedulerEngine.schedule_loop

    def spy(self, loop):
        calls.append(loop.name)
        return original(self, loop)

    monkeypatch.setattr(SchedulerEngine, "schedule_loop", spy)
    return calls


class TestPlanning:
    def test_plan_is_deterministic(self, workbench):
        first = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        second = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        assert first == second
        assert [s.key for s in first.shards] == [s.key for s in second.shards]

    def test_plan_covers_every_position_once(self, workbench):
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        positions = list(
            itertools.chain.from_iterable(s.positions for s in plan.shards)
        )
        assert positions == list(range(N_LOOPS))
        assert len(plan.shards) == (N_LOOPS + SHARD_SIZE - 1) // SHARD_SIZE

    def test_keys_depend_on_configuration_and_knobs(self, workbench):
        base = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        other_rf = plan_shards(workbench, "4C16S16", shard_size=SHARD_SIZE)
        other_knob = plan_shards(
            workbench, "S64", shard_size=SHARD_SIZE, budget_ratio=2.0
        )
        other_policy = plan_shards(
            workbench, "S64", shard_size=SHARD_SIZE, scheduler="non_iterative"
        )
        keys = {tuple(s.key for s in plan.shards)
                for plan in (base, other_rf, other_knob, other_policy)}
        assert len(keys) == 4

    def test_shard_size_validation(self, workbench):
        with pytest.raises(ValueError):
            plan_shards(workbench, "S64", shard_size=0)


class TestResultStore:
    def test_round_trip_is_canonical(self, tmp_path, workbench, uninterrupted):
        runs, _digest = uninterrupted
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        store = ResultStore(tmp_path)
        shard = plan.shards[0]
        shard_runs = [runs[p] for p in shard.positions]
        store.put(shard, shard_runs, config_name=plan.config_name)
        restored = store.get(shard)
        assert restored is not None
        assert runs_digest(restored) == runs_digest(shard_runs)
        assert store.stats()["envelopes"] == 1

    def test_envelope_is_a_versioned_serialize_payload(
        self, tmp_path, workbench, uninterrupted
    ):
        runs, _digest = uninterrupted
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        store = ResultStore(tmp_path)
        shard = plan.shards[0]
        store.put(shard, [runs[p] for p in shard.positions])
        payload = json.loads(store.path_for(shard.key).read_text())
        serialize.validate(payload, expect_type="shard_result")
        assert payload["data"]["key"] == shard.key
        assert payload["data"]["positions"] == list(shard.positions)

    def test_corrupt_envelope_is_a_counted_miss(
        self, tmp_path, workbench, uninterrupted
    ):
        runs, _digest = uninterrupted
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        store = ResultStore(tmp_path)
        shard = plan.shards[0]
        store.put(shard, [runs[p] for p in shard.positions])
        store.path_for(shard.key).write_text("{ not json")
        with pytest.warns(RuntimeWarning, match=shard.key):
            assert store.get(shard) is None
        assert store.invalid == 1
        assert store.misses == 1

    def test_invalid_envelope_warns_once_with_the_shard_key(
        self, tmp_path, workbench, uninterrupted
    ):
        """A silently re-scheduled shard must not be *invisibly* silent.

        The first unusable envelope warns (naming the shard hash, so the
        store can be inspected); later ones are only counted -- a mostly
        corrupt store must not drown the run in one warning per shard.
        """
        runs, _digest = uninterrupted
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        store = ResultStore(tmp_path)
        first, second = plan.shards[0], plan.shards[1]
        for shard in (first, second):
            store.put(shard, [runs[p] for p in shard.positions])
            store.path_for(shard.key).write_text("{ not json")
        with pytest.warns(RuntimeWarning, match=first.key):
            assert store.get(first) is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(second) is None
        assert store.invalid == 2

    def test_key_mismatch_is_rejected(self, tmp_path, workbench, uninterrupted):
        runs, _digest = uninterrupted
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        store = ResultStore(tmp_path)
        first, second = plan.shards[0], plan.shards[1]
        store.put(first, [runs[p] for p in first.positions])
        # Masquerade the first shard's envelope under the second's key.
        store.path_for(second.key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(second.key).write_text(
            store.path_for(first.key).read_text()
        )
        with pytest.warns(RuntimeWarning, match=second.key):
            assert store.get(second) is None
        assert store.invalid == 1

    def test_write_failure_is_nonfatal_and_warned(
        self, tmp_path, workbench, uninterrupted, monkeypatch
    ):
        import repro.eval.shards as shards_mod

        runs, _digest = uninterrupted
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        store = ResultStore(tmp_path)

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(shards_mod.os, "replace", broken_replace)
        with pytest.warns(RuntimeWarning, match="shard checkpoint"):
            store.put(plan.shards[0], [runs[p] for p in plan.shards[0].positions])
        assert store.write_failures == 1
        assert store.count() == 0


class TestShardedEvaluation:
    def test_cold_run_matches_plain_run_and_persists_all(
        self, tmp_path, workbench, uninterrupted
    ):
        _runs, reference = uninterrupted
        store = ResultStore(tmp_path)
        runs = schedule_suite(
            workbench, "S64", store=store, shard_size=SHARD_SIZE
        )
        assert runs_digest(runs) == reference
        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        assert store.count() == len(plan.shards)

    def test_warm_run_schedules_nothing(
        self, tmp_path, workbench, uninterrupted, schedule_counter
    ):
        _runs, reference = uninterrupted
        store = ResultStore(tmp_path)
        schedule_suite(workbench, "S64", store=store, shard_size=SHARD_SIZE)
        scheduled_cold = len(schedule_counter)
        assert scheduled_cold == N_LOOPS
        runs = schedule_suite(
            workbench, "S64", store=store, shard_size=SHARD_SIZE
        )
        assert len(schedule_counter) == scheduled_cold  # zero new schedules
        assert runs_digest(runs) == reference

    def test_stream_marks_restored_runs_cached(self, tmp_path, workbench):
        store = ResultStore(tmp_path)
        list(iter_schedule_suite(
            workbench, "S64", store=store, shard_size=SHARD_SIZE
        ))
        flags = [
            cached
            for _pos, _run, cached in iter_schedule_suite(
                workbench, "S64", store=store, shard_size=SHARD_SIZE
            )
        ]
        assert flags == [True] * N_LOOPS

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(interrupt_after=st.integers(min_value=0, max_value=N_LOOPS - 1))
    def test_interrupted_resume_is_identical_and_schedules_no_completed_shard(
        self, tmp_path_factory, workbench, uninterrupted, interrupt_after
    ):
        """The resume contract, over every possible interruption point.

        An evaluation killed after ``interrupt_after`` loops, then
        resumed against the same store, must (a) schedule zero loops
        from shards that completed before the kill and (b) produce runs
        whose canonical (timing-normalized) serialized form is identical
        to an uninterrupted evaluation's.
        """
        _reference_runs, reference = uninterrupted
        tmp_path = tmp_path_factory.mktemp("ckpt")
        store = ResultStore(tmp_path)
        stream = iter_schedule_suite_sharded(
            workbench, "S64", store=store, shard_size=SHARD_SIZE
        )
        consumed = list(itertools.islice(stream, interrupt_after))
        stream.close()  # the "kill": abandon the evaluation mid-suite
        assert len(consumed) == interrupt_after

        completed = store.count()
        resume_store = ResultStore(tmp_path)  # a fresh process would
        scheduled: list = []
        original = SchedulerEngine.schedule_loop

        def spy(engine_self, loop):
            scheduled.append(loop.name)
            return original(engine_self, loop)

        SchedulerEngine.schedule_loop = spy
        try:
            resumed = [None] * N_LOOPS
            for pos, run, _cached in iter_schedule_suite_sharded(
                workbench, "S64", store=resume_store, shard_size=SHARD_SIZE
            ):
                resumed[pos] = run
        finally:
            SchedulerEngine.schedule_loop = original

        plan = plan_shards(workbench, "S64", shard_size=SHARD_SIZE)
        loops_in_completed = sum(
            len(shard.positions) for shard in plan.shards[:completed]
        )
        # (a) completed shards schedule nothing on resume...
        assert len(scheduled) == N_LOOPS - loops_in_completed
        restored_names = {
            workbench[p].name
            for shard in plan.shards[:completed]
            for p in shard.positions
        }
        assert restored_names.isdisjoint(scheduled)
        # ...and (b) the merged (restored + fresh) result is canonically
        # identical to the uninterrupted evaluation.
        assert runs_digest(resumed) == reference


class TestSessionCheckpointing:
    def test_session_reports_are_bit_identical_across_resume(
        self, tmp_path, workbench
    ):
        with Session(checkpoint=tmp_path / "ck", shard_size=SHARD_SIZE) as s:
            cold = s.evaluate_configuration("S64", loops=workbench)
        with Session(checkpoint=tmp_path / "ck", shard_size=SHARD_SIZE) as s:
            warm = s.evaluate_configuration("S64", loops=workbench)
            assert s.checkpoint.hits == len(
                plan_shards(workbench, "S64", shard_size=SHARD_SIZE).shards
            )
        # Bit-identical modulo wall-clock: the canonical serialized
        # payloads (timing zeroed) must match exactly, not just digests.
        cold_payload = [canonical_run_payload(r) for r in cold.runs]
        warm_payload = [canonical_run_payload(r) for r in warm.runs]
        assert cold_payload == warm_payload
        assert report_digest(cold) == report_digest(warm)

    def test_session_stats_expose_checkpoint_counters(self, tmp_path, workbench):
        with Session(checkpoint=tmp_path / "ck", shard_size=SHARD_SIZE) as s:
            s.evaluate_configuration("S64", loops=workbench)
            stats = s.stats()
        assert stats["checkpoint"]["stores"] > 0

    def test_evaluate_stream_resumes_from_checkpoint(self, tmp_path, workbench):
        with Session(checkpoint=tmp_path / "ck", shard_size=SHARD_SIZE) as s:
            list(s.evaluate_stream("S64", loops=workbench))
        with Session(checkpoint=tmp_path / "ck", shard_size=SHARD_SIZE) as s:
            runs = list(s.evaluate_stream("S64", loops=workbench))
            assert s.checkpoint.hits > 0 and s.checkpoint.stores == 0
        assert len(runs) == N_LOOPS

    def test_tier_overflow_raises_through_session(self):
        with Session() as s:
            with pytest.raises(WorkbenchSizeError, match="available tiers"):
                s.evaluate_configuration("S64", n_loops=100, tier="small")

    def test_default_shard_size_is_sane(self):
        assert 1 <= DEFAULT_SHARD_SIZE <= 256


class TestRoundThreeRegressions:
    """Review fixes: early jobs validation, single pool, no mkdir on --resume."""

    def test_negative_jobs_fails_up_front_even_when_fully_checkpointed(
        self, tmp_path, workbench
    ):
        store = ResultStore(tmp_path)
        schedule_suite(workbench, "S64", store=store, shard_size=SHARD_SIZE)
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            list(iter_schedule_suite(
                workbench, "S64", jobs=-2, store=store, shard_size=SHARD_SIZE
            ))

    def test_sharded_parallel_run_creates_one_pool(
        self, tmp_path, workbench, monkeypatch
    ):
        import repro.eval.parallel as parallel_mod
        import repro.eval.shards as shards_mod
        from concurrent.futures import ThreadPoolExecutor

        created = []

        def counting_pool(max_workers=None):
            created.append(max_workers)
            # Threads, not processes: cheap, and the scheduler is pure
            # Python so results are identical.
            return ThreadPoolExecutor(max_workers=max_workers)

        monkeypatch.setattr(shards_mod, "ProcessPoolExecutor", counting_pool,
                            raising=False)
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", counting_pool)
        store = ResultStore(tmp_path)
        runs = schedule_suite(
            workbench, "S64", jobs=2, store=store, shard_size=SHARD_SIZE
        )
        assert len(runs) == N_LOOPS
        # 4 shards scheduled, but exactly one pool for the whole suite.
        assert created == [2]
