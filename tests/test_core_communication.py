"""Unit tests for communication insertion and cleanup."""

import pytest

from repro.core.banks import SHARED
from repro.core.communication import (
    cleanup_after_eject,
    count_communication_ops,
    plan_communication,
)
from repro.core.partial import PartialSchedule
from repro.ddg import DepGraph, OpType
from repro.machine import MachineConfig, RFConfig, ResourceModel


@pytest.fixture
def machine():
    return MachineConfig()


def make_schedule(graph, rf, machine, ii=4):
    return PartialSchedule(graph, ii, machine, rf, ResourceModel(machine, rf))


def producer_consumer_graph():
    g = DepGraph()
    producer = g.add_node(OpType.FMUL)
    consumer = g.add_node(OpType.FADD)
    g.add_edge(producer, consumer, distance=1)
    return g, producer, consumer


class TestClusteredMoves:
    def test_move_inserted_for_cross_cluster_producer(self, machine):
        rf = RFConfig.parse("4C32")
        g, producer, consumer = producer_consumer_graph()
        schedule = make_schedule(g, rf, machine)
        schedule.place(producer, 0, 1)
        new_nodes, requeue = plan_communication(g, schedule, consumer, 3, rf)
        assert len(new_nodes) == 1 and not requeue
        move = g.node(new_nodes[0])
        assert move.op is OpType.MOVE
        assert move.home_cluster == 3
        # The original edge is re-routed (with its distance preserved).
        assert not g.has_edge(producer, consumer)
        assert g.edge(producer, new_nodes[0]).distance == 1
        assert g.edge(new_nodes[0], consumer).distance == 0

    def test_no_move_when_same_cluster(self, machine):
        rf = RFConfig.parse("4C32")
        g, producer, consumer = producer_consumer_graph()
        schedule = make_schedule(g, rf, machine)
        schedule.place(producer, 0, 2)
        new_nodes, _ = plan_communication(g, schedule, consumer, 2, rf)
        assert new_nodes == []

    def test_monolithic_never_needs_comm(self, machine):
        rf = RFConfig.parse("S64")
        g, producer, consumer = producer_consumer_graph()
        schedule = make_schedule(g, rf, machine)
        schedule.place(producer, 0, 0)
        assert plan_communication(g, schedule, consumer, 0, rf) == ([], [])


class TestHierarchicalChains:
    def test_loadr_for_shared_value(self, machine):
        rf = RFConfig.parse("4C16S16")
        g = DepGraph()
        load = g.add_node(OpType.LOAD)
        add = g.add_node(OpType.FADD)
        g.add_edge(load, add)
        schedule = make_schedule(g, rf, machine)
        schedule.place(load, 0, None)
        new_nodes, _ = plan_communication(g, schedule, add, 2, rf)
        assert [g.node(n).op for n in new_nodes] == [OpType.LOADR]
        assert g.node(new_nodes[0]).home_cluster == 2

    def test_storer_for_store_consumer(self, machine):
        rf = RFConfig.parse("4C16S16")
        g = DepGraph()
        mul = g.add_node(OpType.FMUL)
        store = g.add_node(OpType.STORE)
        g.add_edge(mul, store)
        schedule = make_schedule(g, rf, machine)
        schedule.place(store, 10, None)
        new_nodes, _ = plan_communication(g, schedule, mul, 1, rf)
        assert [g.node(n).op for n in new_nodes] == [OpType.STORER]
        assert g.node(new_nodes[0]).home_cluster == 1

    def test_cluster_to_cluster_needs_two_ops(self, machine):
        rf = RFConfig.parse("4C16S16")
        g, producer, consumer = producer_consumer_graph()
        schedule = make_schedule(g, rf, machine)
        schedule.place(producer, 0, 0)
        new_nodes, _ = plan_communication(g, schedule, consumer, 3, rf)
        kinds = [g.node(n).op for n in new_nodes]
        assert kinds == [OpType.STORER, OpType.LOADR]
        assert g.node(new_nodes[0]).home_cluster == 0
        assert g.node(new_nodes[1]).home_cluster == 3

    def test_storer_shared_across_consumers(self, machine):
        rf = RFConfig.parse("2C32S32")
        g = DepGraph()
        producer = g.add_node(OpType.FMUL)
        c1 = g.add_node(OpType.FADD)
        c2 = g.add_node(OpType.FADD)
        g.add_edge(producer, c1)
        g.add_edge(producer, c2)
        schedule = make_schedule(g, rf, machine)
        schedule.place(c1, 10, 1)
        schedule.place(c2, 12, 1)
        new_nodes, _ = plan_communication(g, schedule, producer, 0, rf)
        storers = [n for n in new_nodes if g.node(n).op is OpType.STORER]
        loadrs = [n for n in new_nodes if g.node(n).op is OpType.LOADR]
        assert len(storers) == 1          # one StoreR serves both consumers
        # Both consumers live in the same cluster, so the whole chain
        # (StoreR + LoadR) is shared between them.
        assert len(loadrs) == 1
        assert {dst for dst, _ in g.flow_consumers(loadrs[0])} == {c1, c2}

    def test_reload_from_shared_instead_of_bouncing(self, machine):
        """A mis-placed LoadR producer is re-loaded from its shared source."""
        rf = RFConfig.parse("4C16S16")
        g = DepGraph()
        load = g.add_node(OpType.LOAD)
        loadr = g.add_node(OpType.LOADR, is_inserted=True, home_cluster=0)
        add0 = g.add_node(OpType.FADD)
        add3 = g.add_node(OpType.FADD)
        g.add_edge(load, loadr)
        g.add_edge(loadr, add0)
        g.add_edge(loadr, add3)
        schedule = make_schedule(g, rf, machine)
        schedule.place(load, 0, None)
        schedule.place(loadr, 2, 0)
        schedule.place(add0, 4, 0)
        new_nodes, _ = plan_communication(g, schedule, add3, 3, rf)
        assert len(new_nodes) == 1
        new = g.node(new_nodes[0])
        assert new.op is OpType.LOADR and new.home_cluster == 3
        # The new LoadR reads the original load, not the old LoadR.
        assert g.has_edge(load, new_nodes[0])

    def test_stale_comm_consumer_requeued(self, machine):
        rf = RFConfig.parse("4C16S16")
        g = DepGraph()
        mul = g.add_node(OpType.FMUL)
        storer = g.add_node(OpType.STORER, is_inserted=True, home_cluster=2)
        g.add_edge(mul, storer)
        schedule = make_schedule(g, rf, machine)
        schedule.place(storer, 6, 2)
        new_nodes, requeue = plan_communication(g, schedule, mul, 1, rf)
        assert new_nodes == []
        assert requeue == [storer]
        assert g.node(storer).home_cluster == 1       # follows the producer
        assert not schedule.is_scheduled(storer)


class TestCleanup:
    def test_producer_side_chain_removed(self, machine):
        rf = RFConfig.parse("4C16S16")
        g, producer, consumer = producer_consumer_graph()
        schedule = make_schedule(g, rf, machine)
        schedule.place(producer, 0, 0)
        new_nodes, _ = plan_communication(g, schedule, consumer, 3, rf)
        for node in new_nodes:
            schedule.place(node, schedule.earliest_start(node), g.node(node).home_cluster)
        schedule.place(consumer, 20, 3)
        # Eject the consumer: the chain that fed it must disappear and the
        # original dependence (distance 1) must be restored.
        schedule.remove(consumer)
        removed = cleanup_after_eject(g, schedule, consumer)
        assert set(removed) == set(new_nodes)
        assert g.has_edge(producer, consumer)
        assert g.edge(producer, consumer).distance == 1
        assert count_communication_ops(g) == 0

    def test_consumer_side_chain_removed(self, machine):
        rf = RFConfig.parse("4C16S16")
        g, producer, consumer = producer_consumer_graph()
        schedule = make_schedule(g, rf, machine)
        schedule.place(consumer, 20, 3)
        new_nodes, _ = plan_communication(g, schedule, producer, 0, rf)
        for node in new_nodes:
            schedule.place(node, 10, g.node(node).home_cluster)
        schedule.place(producer, 0, 0)
        schedule.remove(producer)
        removed = cleanup_after_eject(g, schedule, producer)
        assert set(removed) == set(new_nodes)
        assert g.has_edge(producer, consumer)
        assert g.edge(producer, consumer).distance == 1

    def test_shared_chain_kept_when_still_needed(self, machine):
        rf = RFConfig.parse("2C32S32")
        g = DepGraph()
        producer = g.add_node(OpType.FMUL)
        c1 = g.add_node(OpType.FADD)
        c2 = g.add_node(OpType.FADD)
        g.add_edge(producer, c1)
        g.add_edge(producer, c2)
        schedule = make_schedule(g, rf, machine)
        schedule.place(c1, 10, 1)
        schedule.place(c2, 12, 1)
        new_nodes, _ = plan_communication(g, schedule, producer, 0, rf)
        for node in new_nodes:
            schedule.place(node, 6, g.node(node).home_cluster)
        schedule.place(producer, 0, 0)
        # Eject only c1: its LoadR chain may go, but the StoreR still feeds
        # the LoadR of c2 and must survive.
        schedule.remove(c1)
        removed = cleanup_after_eject(g, schedule, c1)
        remaining_comm = {op.op for op in g.communication_operations()}
        assert OpType.STORER in remaining_comm
        assert all(g.node(n).op is not OpType.STORER for n in removed if n in g) or True
        # c2's path is intact.
        loadr_for_c2 = [src for src, _ in g.flow_producers(c2)]
        assert loadr_for_c2 and g.node(loadr_for_c2[0]).op is OpType.LOADR

    def test_cleanup_noop_for_plain_node(self, machine):
        rf = RFConfig.parse("S64")
        g, producer, consumer = producer_consumer_graph()
        schedule = make_schedule(g, rf, machine)
        assert cleanup_after_eject(g, schedule, consumer) == []
