"""Unit tests for loop unrolling."""

import pytest

from repro.ddg import OpType, compute_mii, unroll
from repro.machine import MachineConfig, RFConfig, ResourceModel
from repro.workloads import build_kernel


@pytest.fixture
def machine():
    return MachineConfig()


class TestUnroll:
    def test_factor_one_is_copy(self):
        loop = build_kernel("daxpy")
        copy = unroll(loop, 1)
        assert len(copy.graph) == len(loop.graph)
        assert copy.name == loop.name

    def test_node_replication(self):
        loop = build_kernel("daxpy")          # 1 live-in + 5 ops
        unrolled = unroll(loop, 4)
        # Live-in values are shared; everything else is replicated.
        n_live = len(loop.graph.live_in_nodes())
        expected = n_live + (len(loop.graph) - n_live) * 4
        assert len(unrolled.graph) == expected
        assert len(unrolled.graph.live_in_nodes()) == n_live

    def test_trip_count_scaled(self):
        loop = build_kernel("vadd", trip_count=400)
        assert unroll(loop, 8).trip_count == 50

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            unroll(build_kernel("vadd"), 0)

    def test_memory_strides_scaled(self):
        loop = build_kernel("vadd", trip_count=400)
        unrolled = unroll(loop, 4)
        loads = [op for op in unrolled.graph.memory_operations() if op.op is OpType.LOAD]
        strides = {op.mem_ref.stride_bytes for op in loads}
        assert strides == {32}
        offsets = sorted(op.mem_ref.offset_bytes for op in loads if op.mem_ref.array == "a")
        assert offsets == [0, 8, 16, 24]

    def test_recurrence_preserved(self, machine):
        # An accumulator unrolled by 4 still has RecMII = 4 latencies over
        # distance ... the serial chain keeps the same cycles-per-original-
        # iteration ratio: 4 adds (16 cycles) per 1 new iteration.
        loop = build_kernel("vsum")
        resources = ResourceModel(machine, RFConfig.parse("S128"))
        original = compute_mii(loop.graph, resources, machine.latency)
        unrolled = unroll(loop, 4)
        transformed = compute_mii(unrolled.graph, resources, machine.latency)
        assert original.rec == machine.latency("fadd")
        assert transformed.rec == 4 * machine.latency("fadd")

    def test_unrolled_graph_has_no_zero_distance_cycle(self, machine):
        # heights() raises if a zero-distance cycle exists.
        from repro.ddg.analysis import heights

        for kernel in ("dot_product", "tridiagonal", "running_average"):
            unrolled = unroll(build_kernel(kernel), 4)
            heights(unrolled.graph, machine.latency)

    def test_unrolled_loop_schedules_and_validates(self, machine):
        from repro.core import schedule_loop, validate_schedule
        from repro.hwmodel import scaled_machine
        from repro.machine import baseline_machine, config_by_name

        unrolled = unroll(build_kernel("daxpy"), 4)
        rf = config_by_name("2C32S32")
        result = schedule_loop(unrolled, rf)
        scaled, _ = scaled_machine(baseline_machine(), rf)
        validate_schedule(result, scaled, rf)

    def test_attributes_record_factor(self):
        assert unroll(build_kernel("vadd"), 2).attributes["unroll_factor"] == 2
