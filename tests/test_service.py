"""Tests for the batch scheduling service (repro.service) and its CLI.

Covers the three layers: request validation, the in-process
:class:`BatchScheduler` (submit -> poll/stream -> serialized result),
and the HTTP wire (server + client helpers + ``repro submit``), all on a
single shared session exactly as ``repro serve`` runs them.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro import serialize
from repro.service import (
    BatchScheduler,
    JobRequest,
    fetch_json,
    make_server,
    poll_job,
    post_json,
    submit_job,
)
from repro.session import Session


@pytest.fixture(scope="module")
def scheduler():
    session = Session()
    batch = BatchScheduler(session)
    yield batch
    batch.shutdown()
    session.close()


@pytest.fixture(scope="module")
def server(scheduler):
    http_server = make_server(scheduler, "127.0.0.1", 0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


# --------------------------------------------------------------------------- #
# Request validation
# --------------------------------------------------------------------------- #
class TestJobRequest:
    def test_valid_schedule_request(self):
        request = JobRequest.from_dict(
            {"kind": "schedule",
             "params": {"kernel": "daxpy", "config": "4C16S16",
                        "kernel_params": {"trip_count": 64}}}
        )
        assert request.kind == "schedule"
        assert request.to_dict()["params"]["kernel"] == "daxpy"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobRequest.from_dict({"kind": "explode", "params": {}})

    def test_missing_required_params_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            JobRequest.from_dict({"kind": "schedule", "params": {"kernel": "daxpy"}})

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="unknown params"):
            JobRequest.from_dict(
                {"kind": "evaluate", "params": {"config": "S64", "frobnicate": 1}}
            )

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            JobRequest.from_dict("schedule daxpy")


# --------------------------------------------------------------------------- #
# In-process batch scheduler
# --------------------------------------------------------------------------- #
class TestBatchScheduler:
    def test_schedule_job_roundtrip(self, scheduler):
        job_id = scheduler.submit(
            {"kind": "schedule", "params": {"kernel": "daxpy", "config": "4C16S16"}}
        )
        status = scheduler.wait(job_id, timeout=120)
        assert status["state"] == "done"
        assert status["progress"] == {"n_done": 1, "n_total": 1}
        envelope = scheduler.result(job_id)
        serialize.validate(envelope, expect_type="schedule_result")
        result = serialize.from_dict(envelope)
        assert result.success and result.config_name == "4C16S16"

    def test_evaluate_job_reports_progress(self, scheduler):
        job_id = scheduler.submit(
            {"kind": "evaluate", "params": {"config": "S64", "n_loops": 4}}
        )
        snapshots = list(scheduler.stream(job_id, timeout=120))
        assert snapshots[-1]["state"] == "done"
        assert snapshots[-1]["progress"] == {"n_done": 4, "n_total": 4}
        report = serialize.from_dict(scheduler.result(job_id))
        assert report.n_failed == 0
        assert len(report.runs) == 4

    def test_failed_job_carries_error(self, scheduler):
        job_id = scheduler.submit(
            {"kind": "schedule",
             "params": {"kernel": "daxpy", "config": "not-a-config"}}
        )
        status = scheduler.wait(job_id, timeout=60)
        assert status["state"] == "failed"
        assert "not-a-config" in status["error"]
        with pytest.raises(RuntimeError, match="no result"):
            scheduler.result(job_id)

    def test_unknown_job_id_raises(self, scheduler):
        with pytest.raises(KeyError):
            scheduler.status("job-999999")

    def test_jobs_share_one_warm_session_cache(self):
        from repro.eval.cache import EvalCache

        session = Session(cache=EvalCache())
        batch = BatchScheduler(session)
        try:
            first = batch.submit(
                {"kind": "evaluate", "params": {"config": "S64", "n_loops": 3}}
            )
            batch.wait(first, timeout=120)
            stores = session.cache.stores
            assert stores == 3
            second = batch.submit(
                {"kind": "evaluate", "params": {"config": "S64", "n_loops": 3}}
            )
            batch.wait(second, timeout=120)
            # The second client's job was served entirely by the cache.
            assert session.cache.stores == stores
            assert session.cache.hits >= 3
        finally:
            batch.shutdown()
            session.close()

    def test_cancel_and_queue_order(self):
        session = Session()
        batch = BatchScheduler(session, start=False)
        try:
            first = batch.submit(
                {"kind": "schedule", "params": {"kernel": "daxpy", "config": "S64"}}
            )
            second = batch.submit(
                {"kind": "schedule", "params": {"kernel": "vadd", "config": "S64"}}
            )
            assert [job["state"] for job in batch.list_jobs()] == ["queued", "queued"]
            assert batch.cancel(second) is True
            assert batch.cancel(second) is False  # already cancelled
            batch.start()
            status = batch.wait(first, timeout=120)
            assert status["state"] == "done"
            assert batch.status(second)["state"] == "cancelled"
        finally:
            batch.shutdown()
            session.close()

    def test_submit_after_shutdown_rejected(self):
        session = Session()
        batch = BatchScheduler(session)
        batch.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            batch.submit(
                {"kind": "schedule", "params": {"kernel": "daxpy", "config": "S64"}}
            )
        session.close()


# --------------------------------------------------------------------------- #
# HTTP wire
# --------------------------------------------------------------------------- #
class TestHTTPService:
    def test_health_and_schema(self, base_url):
        health = fetch_json(f"{base_url}/v2/health")
        assert health["status"] == "ok"
        assert health["schema"] == serialize.SCHEMA_VERSION
        remote_schema = fetch_json(f"{base_url}/v2/schema")
        assert remote_schema == serialize.schema()

    def test_submit_poll_result_roundtrip(self, base_url):
        job_id = submit_job(
            base_url,
            {"kind": "schedule",
             "params": {"kernel": "fir_filter", "config": "S64",
                        "kernel_params": {"taps": 4}}},
        )
        status = poll_job(base_url, job_id, timeout=120, poll_interval=0.05)
        assert status["state"] == "done"
        envelope = status["result"]
        serialize.validate(envelope, expect_type="schedule_result")
        assert serialize.from_dict(envelope).success

    def test_bad_request_is_400(self, base_url):
        with pytest.raises(RuntimeError, match="unknown job kind"):
            submit_job(base_url, {"kind": "nope", "params": {}})

    def test_unknown_job_is_404(self, base_url):
        with pytest.raises(RuntimeError, match="404"):
            fetch_json(f"{base_url}/v2/jobs/job-424242")

    def test_unknown_path_is_404(self, base_url):
        with pytest.raises(RuntimeError, match="404"):
            fetch_json(f"{base_url}/v2/frobnicate")

    def test_jobs_listing(self, base_url):
        listing = fetch_json(f"{base_url}/v2/jobs")
        assert isinstance(listing["jobs"], list)


class TestQueryStringRouting:
    """Query strings must route like the bare path, on every route.

    Clients legitimately append them (cache busters, tracing ids);
    routing on the raw request target turned ``GET /v2/jobs?x=1`` into a
    404 while ``GET /v2/jobs`` worked.
    """

    def test_get_routes_accept_query_strings(self, base_url):
        assert fetch_json(f"{base_url}/v2/health?x=1")["status"] == "ok"
        assert fetch_json(f"{base_url}/v2/schema?probe=1") == serialize.schema()
        listing = fetch_json(f"{base_url}/v2/jobs?verbose=1")
        assert isinstance(listing["jobs"], list)

    def test_job_lifecycle_with_query_strings(self, base_url):
        from repro.service.http import _request_json

        # Submit, fetch and cancel one job, a query string on every call.
        payload = post_json(
            f"{base_url}/v2/jobs?trace=abc",
            {"kind": "schedule",
             "params": {"kernel": "daxpy", "config": "S64"}},
        )
        job_id = payload["job_id"]
        status = fetch_json(f"{base_url}/v2/jobs/{job_id}?include=result")
        assert status["job_id"] == job_id
        answer = _request_json(
            f"{base_url}/v2/jobs/{job_id}?reason=test", method="DELETE",
            timeout=10.0, retries=0, backoff=0.01,
        )
        assert answer["job_id"] == job_id  # cancelled or already running

    def test_worker_routes_accept_query_strings(self, base_url):
        # No coordinator attached: still routed (503), never a 404.
        with pytest.raises(RuntimeError, match="503"):
            fetch_json(f"{base_url}/v2/workers?x=1")
        with pytest.raises(RuntimeError, match="503"):
            post_json(f"{base_url}/v2/workers/register?x=1", {"name": "a"},
                      retries=0)

    def test_trailing_slash_routes_like_bare_path(self, base_url):
        assert fetch_json(f"{base_url}/v2/health/")["status"] == "ok"

    def test_unknown_path_with_query_string_is_still_404(self, base_url):
        with pytest.raises(RuntimeError, match="404"):
            fetch_json(f"{base_url}/v2/frobnicate?x=1")


# --------------------------------------------------------------------------- #
# Transient-failure retry in the client helpers
# --------------------------------------------------------------------------- #
class _FlakyServer(threading.Thread):
    """A TCP stub that drops the first N connections, then serves JSON.

    Dropping a freshly accepted connection looks to the client exactly
    like a service restart mid-poll: the TCP handshake succeeds and the
    HTTP exchange then dies (RemoteDisconnected/ConnectionReset) -- the
    transient failure class the client helpers must survive.
    """

    def __init__(self, payload: dict, n_failures: int) -> None:
        super().__init__(daemon=True)
        self.payload = payload
        self.n_failures = n_failures
        self.n_served = 0
        self._closing = False
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.url = "http://127.0.0.1:%d" % self.sock.getsockname()[1]

    def run(self) -> None:
        while not self._closing:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                if self.n_failures > 0:
                    self.n_failures -= 1
                    continue  # close without answering: transport failure
                try:
                    conn.recv(65536)  # drain the request; content ignored
                    body = json.dumps(self.payload).encode()
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                        b"Connection: close\r\n\r\n" + body
                    )
                    self.n_served += 1
                except OSError:  # pragma: no cover - client went away
                    pass

    def close(self) -> None:
        self._closing = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


@pytest.fixture()
def flaky_server(request):
    servers = []

    def make(payload: dict, n_failures: int) -> _FlakyServer:
        server = _FlakyServer(payload, n_failures)
        server.start()
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class TestTransientRetry:
    """The bugfix: one connection blip must not kill a client call."""

    def test_fetch_json_survives_transient_failures(self, flaky_server):
        server = flaky_server({"ok": True}, n_failures=2)
        assert fetch_json(server.url, retries=3, backoff=0.01) == {"ok": True}
        assert server.n_served == 1

    def test_fetch_json_without_retries_fails_fast(self, flaky_server):
        server = flaky_server({"ok": True}, n_failures=1)
        with pytest.raises(RuntimeError, match="after 1 attempt"):
            fetch_json(server.url, retries=0)

    def test_retry_budget_is_bounded(self, flaky_server):
        server = flaky_server({"ok": True}, n_failures=100)
        with pytest.raises(RuntimeError, match="after 3 attempt"):
            fetch_json(server.url, retries=2, backoff=0.01)

    def test_poll_job_survives_blips_inside_the_deadline(self, flaky_server):
        done = {"job_id": "job-1", "state": "done",
                "progress": {"n_done": 1, "n_total": 1}}
        server = flaky_server(done, n_failures=2)
        status = poll_job(server.url, "job-1", poll_interval=0.01, timeout=30)
        assert status["state"] == "done"

    def test_poll_job_retries_never_outlive_the_deadline(self, flaky_server):
        server = flaky_server({"state": "running"}, n_failures=10_000)
        with pytest.raises(RuntimeError, match="failed after"):
            poll_job(server.url, "job-1", poll_interval=0.01, timeout=0.3)

    def test_post_json_survives_transient_failures(self, flaky_server):
        server = flaky_server({"echo": True}, n_failures=1)
        answer = post_json(server.url, {"probe": 1}, retries=2, backoff=0.01)
        assert answer == {"echo": True}


# --------------------------------------------------------------------------- #
# Shutdown / wait-timeout lifecycle (the BatchScheduler bugfixes)
# --------------------------------------------------------------------------- #
class TestSchedulerLifecycle:
    def test_shutdown_cancels_queued_jobs(self):
        """Queued jobs must not be stranded ``queued`` forever."""
        session = Session()
        batch = BatchScheduler(session, start=False)  # nothing ever runs
        try:
            first = batch.submit(
                {"kind": "schedule", "params": {"kernel": "daxpy", "config": "S64"}}
            )
            second = batch.submit(
                {"kind": "schedule", "params": {"kernel": "vadd", "config": "S64"}}
            )
            batch.shutdown()
            for job_id in (first, second):
                status = batch.status(job_id)
                assert status["state"] == "cancelled"
                assert "shut down before the job started" in status["error"]
                assert status["finished_at"] is not None
            # Waiters observe the terminal state instead of hanging.
            status = batch.wait(first, timeout=5)
            assert status["state"] == "cancelled"
            assert "timed_out" not in status
        finally:
            session.close()

    def test_wait_timeout_is_distinguishable_from_completion(self):
        """``wait(timeout=)`` must mark a non-terminal return."""
        session = Session()
        batch = BatchScheduler(session, start=False)  # the job never starts
        try:
            job_id = batch.submit(
                {"kind": "schedule", "params": {"kernel": "daxpy", "config": "S64"}}
            )
            status = batch.wait(job_id, timeout=0.05)
            assert status["state"] == "queued"
            assert status["timed_out"] is True
            batch.start()
            status = batch.wait(job_id, timeout=120)
            assert status["state"] == "done"
            assert "timed_out" not in status
        finally:
            batch.shutdown()
            session.close()


# --------------------------------------------------------------------------- #
# CLI: serve/submit/schema plumbing
# --------------------------------------------------------------------------- #
class TestServiceCLI:
    def test_parser_serve_and_submit(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0", "--jobs", "2"])
        assert args.command == "serve" and args.port == 0

        args = build_parser().parse_args(
            ["submit", "--url", "http://localhost:1", "schedule", "daxpy",
             "4C16S16", "--param", "trip_count=64"]
        )
        assert args.kind == "schedule" and args.param == ["trip_count=64"]

        args = build_parser().parse_args(
            ["submit", "evaluate", "S64", "--loops", "8"]
        )
        assert args.kind == "evaluate" and args.loops == 8

        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])  # kind is required

    def test_parser_coordinator_and_worker(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--coordinator", "--lease-timeout", "30s", "--port", "0"]
        )
        assert args.coordinator is True and args.lease_timeout == 30.0
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.coordinator is False

        args = build_parser().parse_args(
            ["worker", "--url", "http://h:1", "--jobs", "2",
             "--max-leases", "5", "--idle-exit", "2s", "--name", "alice"]
        )
        assert args.command == "worker"
        assert (args.url, args.jobs, args.max_leases) == ("http://h:1", 2, 5)
        assert args.idle_exit == 2.0 and args.name == "alice"

    def test_build_submit_request_parses_params(self):
        from repro.cli import _build_submit_request, build_parser

        args = build_parser().parse_args(
            ["submit", "schedule", "fir_filter", "4C16S16",
             "--param", "taps=8", "--policy", "non_iterative"]
        )
        request = _build_submit_request(args)
        assert request == {
            "kind": "schedule",
            "params": {"kernel": "fir_filter", "config": "4C16S16",
                       "policy": "non_iterative",
                       "kernel_params": {"taps": 8}},
        }

    def test_submit_command_end_to_end(self, base_url, capsys):
        from repro.cli import main

        exit_code = main([
            "submit", "--url", base_url, "--poll", "0.05", "--validate",
            "schedule", "daxpy", "S64",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        envelope = json.loads(out)
        serialize.validate(envelope, expect_type="schedule_result")

    def test_schema_command_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "schema.json"
        assert main(["schema", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload == serialize.schema()
        assert main(["schema"]) == 0  # stdout variant
        printed = capsys.readouterr().out
        assert '"schedule_result"' in printed


# --------------------------------------------------------------------------- #
# HTTP error paths: malformed input is a structured 4xx, never a 500
# --------------------------------------------------------------------------- #
def _raw_request(url: str, body: bytes, *, method: str = "POST",
                 content_type: str = "application/json"):
    """Send raw bytes; returns (status_code, decoded JSON body)."""
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": content_type}, method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHTTPErrorPaths:
    def test_malformed_json_body_is_400(self, base_url):
        code, payload = _raw_request(f"{base_url}/v2/jobs", b'{"kind": "sche')
        assert code == 400
        assert "not valid JSON" in payload["error"]

    def test_non_object_json_body_is_400(self, base_url):
        code, payload = _raw_request(f"{base_url}/v2/jobs", b"[1, 2, 3]")
        assert code == 400
        assert "must be a JSON object" in payload["error"]

    def test_unknown_envelope_payload_is_400(self, base_url):
        # A structurally-valid dict that is not a valid job request.
        code, payload = _raw_request(
            f"{base_url}/v2/jobs",
            json.dumps({"kind": "schedule", "params": {
                "kernel": "daxpy", "config": "S64", "frobnicate": 1,
            }}).encode(),
        )
        assert code == 400
        assert "unknown params" in payload["error"]

    def test_oversized_body_is_400(self, scheduler):
        server = make_server(scheduler, "127.0.0.1", 0, max_body_bytes=256)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            big = json.dumps(
                {"kind": "schedule",
                 "params": {"kernel": "daxpy", "config": "S64",
                            "kernel_params": {"pad": "x" * 4096}}}
            ).encode()
            code, payload = _raw_request(f"http://{host}:{port}/v2/jobs", big)
            assert code == 400
            assert "256-byte limit" in payload["error"]
            # A small request still fits under the tightened ceiling.
            code, _ = _raw_request(
                f"http://{host}:{port}/v2/jobs",
                json.dumps({"kind": "schedule",
                            "params": {"kernel": "daxpy",
                                       "config": "S64"}}).encode(),
            )
            assert code == 202
        finally:
            server.shutdown()

    def test_runs_and_report_without_db_are_503(self, base_url):
        with pytest.raises(RuntimeError, match="503"):
            fetch_json(f"{base_url}/v2/runs")
        with pytest.raises(RuntimeError, match="503"):
            fetch_json(f"{base_url}/v2/report")

    def test_quota_exhaustion_is_429(self, tmp_path):
        session = Session()
        batch = BatchScheduler(session, max_queued_per_client=1, start=False)
        server = make_server(batch, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            submit_job(url, {"kind": "schedule",
                             "params": {"kernel": "daxpy", "config": "S64"}})
            with pytest.raises(RuntimeError, match="429"):
                submit_job(url, {"kind": "schedule",
                                 "params": {"kernel": "vadd",
                                            "config": "S64"}})
        finally:
            server.shutdown()
            batch.shutdown()
            session.close()


class TestFleetRouteErrorPaths:
    @pytest.fixture()
    def fleet_url(self, tmp_path):
        from repro.eval.shards import ResultStore
        from repro.service import ShardCoordinator

        session = Session()
        coordinator = ShardCoordinator(ResultStore(tmp_path / "store"))
        batch = BatchScheduler(session, coordinator=coordinator)
        server = make_server(batch, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        batch.shutdown()
        session.close()

    def test_missing_required_key_is_400(self, fleet_url):
        code, payload = _raw_request(f"{fleet_url}/v2/workers/lease", b"{}")
        assert code == 400
        assert "worker_id" in payload["error"]

    def test_unknown_result_envelope_type_is_400(self, fleet_url):
        code, payload = _raw_request(
            f"{fleet_url}/v2/workers/complete",
            json.dumps({"worker_id": "w", "lease_id": "l",
                        "result": {"schema": 1, "generator": "test",
                                   "type": "frobnicate", "data": {}}}).encode(),
        )
        assert code == 400

    def test_malformed_json_on_worker_route_is_400(self, fleet_url):
        code, payload = _raw_request(
            f"{fleet_url}/v2/workers/register", b"not json{"
        )
        assert code == 400
        assert "not valid JSON" in payload["error"]


# --------------------------------------------------------------------------- #
# The db-backed routes: /v2/runs and /v2/report
# --------------------------------------------------------------------------- #
class TestRunTableRoutes:
    @pytest.fixture(scope="class")
    def db_service(self, tmp_path_factory):
        session = Session()
        batch = BatchScheduler(
            session, db=tmp_path_factory.mktemp("dbsvc") / "runs.sqlite"
        )
        server = make_server(batch, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        for kernel in ("daxpy", "vadd"):
            job_id = submit_job(url, {
                "kind": "schedule",
                "params": {"kernel": kernel, "config": "S64"},
            })
            assert poll_job(url, job_id, timeout=120,
                            poll_interval=0.05)["state"] == "done"
        yield url
        server.shutdown()
        batch.shutdown()
        batch.db.close()
        session.close()

    def test_runs_route_returns_envelopes(self, db_service):
        listing = fetch_json(f"{db_service}/v2/runs")
        assert len(listing["runs"]) == 2
        for envelope in listing["runs"]:
            serialize.validate(envelope, expect_type="run_row")
            row = serialize.from_dict(envelope)
            assert row.status == "ok" and row.config_name == "S64"

    def test_runs_route_applies_filters(self, db_service):
        listing = fetch_json(f"{db_service}/v2/runs?loop=daxpy")
        assert len(listing["runs"]) == 1
        assert fetch_json(f"{db_service}/v2/runs?config=unseen")["runs"] == []

    def test_bad_query_parameter_is_400(self, db_service):
        with pytest.raises(RuntimeError, match="400"):
            fetch_json(f"{db_service}/v2/runs?frobnicate=1")
        with pytest.raises(RuntimeError, match="400"):
            fetch_json(f"{db_service}/v2/report?limit=0")

    def test_report_route_renders_html(self, db_service):
        import urllib.request

        with urllib.request.urlopen(
            f"{db_service}/v2/report", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith("text/html")
            page = response.read().decode()
        assert page.startswith("<!DOCTYPE html>")
        assert "daxpy" in page and "vadd" in page and "<svg" in page

    def test_report_route_renders_csv(self, db_service):
        import urllib.request

        with urllib.request.urlopen(
            f"{db_service}/v2/report?format=csv", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith("text/csv")
            text = response.read().decode()
        lines = text.splitlines()
        assert lines[0].startswith("run_key,")
        assert len(lines) == 3

    def test_health_exposes_scheduler_and_db_stats(self, db_service):
        health = fetch_json(f"{db_service}/v2/health")
        stats = health["scheduler"]
        assert stats["db"]["n_runs"] == 2
        assert stats["db"]["journal_mode"] == "wal"


class TestWorkbenchTierJobs:
    def test_unknown_tier_rejected_at_submission(self):
        with pytest.raises(ValueError, match="unknown workbench tier"):
            JobRequest.from_dict(
                {"kind": "evaluate", "params": {"config": "S64", "tier": "huge"}}
            )

    def test_oversized_tier_request_rejected_at_submission(self):
        with pytest.raises(ValueError, match="available tiers"):
            JobRequest.from_dict(
                {"kind": "evaluate",
                 "params": {"config": "S64", "tier": "tiny", "n_loops": 40}}
            )

    def test_evaluate_job_with_tier_runs(self, scheduler):
        job_id = scheduler.submit(
            {"kind": "evaluate",
             "params": {"config": "S64", "tier": "tiny", "n_loops": 4}}
        )
        status = scheduler.wait(job_id, timeout=120)
        assert status["state"] == "done"
        envelope = scheduler.result(job_id)
        assert envelope["type"] == "configuration_report"
        assert len(envelope["data"]["runs"]) == 4

    def test_checkpointed_session_resumes_across_jobs(self, tmp_path):
        from repro.session import Session

        session = Session(checkpoint=tmp_path / "ck", shard_size=2)
        scheduler = BatchScheduler(session)
        try:
            request = {"kind": "evaluate",
                       "params": {"config": "S64", "tier": "tiny",
                                  "n_loops": 4}}
            first = scheduler.submit(request)
            assert scheduler.wait(first, timeout=120)["state"] == "done"
            stores = session.checkpoint.stores
            assert stores > 0
            second = scheduler.submit(request)
            assert scheduler.wait(second, timeout=120)["state"] == "done"
            # the second job restored every shard instead of re-scheduling
            assert session.checkpoint.stores == stores
            assert session.checkpoint.hits >= stores
            assert scheduler.result(first) == scheduler.result(second)
        finally:
            scheduler.shutdown()
            session.close()


class TestTierJobDefaults:
    def test_tier_job_without_n_loops_runs_the_whole_tier(self, scheduler):
        job_id = scheduler.submit(
            {"kind": "evaluate", "params": {"config": "S64", "tier": "tiny"}}
        )
        status = scheduler.wait(job_id, timeout=120)
        assert status["state"] == "done"
        envelope = scheduler.result(job_id)
        assert len(envelope["data"]["runs"]) == 16  # the whole tiny tier

    def test_tierless_job_keeps_the_16_loop_default(self, scheduler):
        job_id = scheduler.submit(
            {"kind": "evaluate", "params": {"config": "S64"}}
        )
        status = scheduler.wait(job_id, timeout=120)
        assert status["state"] == "done"
        assert len(scheduler.result(job_id)["data"]["runs"]) == 16
