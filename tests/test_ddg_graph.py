"""Unit tests for the dependence-graph data structure."""

import pytest

from repro.ddg import DepGraph, OpType
from repro.ddg.operations import MemRef, OpClass
from repro.machine import MachineConfig


@pytest.fixture
def machine():
    return MachineConfig()


def build_simple_graph():
    """load -> mul -> add -> store with a live-in multiplier."""
    g = DepGraph()
    alpha = g.add_node(OpType.LIVE_IN, name="alpha")
    load = g.add_node(OpType.LOAD, name="ld", mem_ref=MemRef("x"))
    mul = g.add_node(OpType.FMUL, name="mul")
    add = g.add_node(OpType.FADD, name="add")
    store = g.add_node(OpType.STORE, name="st", mem_ref=MemRef("y"))
    g.add_edge(alpha, mul)
    g.add_edge(load, mul)
    g.add_edge(mul, add)
    g.add_edge(add, store)
    return g, (alpha, load, mul, add, store)


class TestOpType:
    def test_classification(self):
        assert OpType.FADD.op_class is OpClass.COMPUTE
        assert OpType.LOAD.op_class is OpClass.MEMORY
        assert OpType.LOADR.op_class is OpClass.COMMUNICATION
        assert OpType.LIVE_IN.op_class is OpClass.PSEUDO

    def test_defines_register(self):
        assert OpType.LOAD.defines_register
        assert OpType.STORER.defines_register
        assert not OpType.STORE.defines_register

    def test_mnemonics_unique(self):
        mnemonics = [op.mnemonic for op in OpType]
        assert len(mnemonics) == len(set(mnemonics))


class TestGraphConstruction:
    def test_add_nodes_and_edges(self):
        g, (alpha, load, mul, add, store) = build_simple_graph()
        assert len(g) == 5
        assert g.n_edges() == 4
        assert set(g.successors(mul)) == {add}
        assert set(g.predecessors(mul)) == {alpha, load}

    def test_unknown_node_edge_rejected(self):
        g = DepGraph()
        a = g.add_node(OpType.FADD)
        with pytest.raises(KeyError):
            g.add_edge(a, 999)

    def test_negative_distance_rejected(self):
        g = DepGraph()
        a = g.add_node(OpType.FADD)
        b = g.add_node(OpType.FADD)
        with pytest.raises(ValueError):
            g.add_edge(a, b, distance=-1)

    def test_remove_node_cleans_edges(self):
        g, (alpha, load, mul, add, store) = build_simple_graph()
        g.remove_node(mul)
        assert mul not in g
        assert add not in g.successors(load)
        assert g.n_edges() == 1  # only add -> store remains

    def test_remove_edge(self):
        g, (_, load, mul, _, _) = build_simple_graph()
        g.remove_edge(load, mul)
        assert not g.has_edge(load, mul)

    def test_node_ids_are_stable_after_removal(self):
        g, nodes = build_simple_graph()
        g.remove_node(nodes[2])
        new = g.add_node(OpType.FADD)
        assert new not in nodes  # ids are never reused

    def test_copy_is_deep(self):
        g, (_, load, mul, _, _) = build_simple_graph()
        clone = g.copy()
        clone.remove_node(mul)
        assert mul in g
        assert g.has_edge(load, mul)

    def test_copy_preserves_attributes(self):
        g = DepGraph()
        n = g.add_node(OpType.LOADR, is_inserted=True, home_cluster=3)
        clone = g.copy()
        assert clone.node(n).home_cluster == 3
        assert clone.node(n).is_inserted


class TestGraphQueries:
    def test_count_ops(self):
        g, _ = build_simple_graph()
        counts = g.count_ops()
        assert counts == {"compute": 2, "unpipelined": 0, "memory": 2, "comm": 0}

    def test_count_unpipelined(self):
        g = DepGraph()
        a = g.add_node(OpType.FDIV)
        b = g.add_node(OpType.FSQRT)
        g.add_edge(a, b)
        assert g.count_ops()["unpipelined"] == 2

    def test_op_listings(self):
        g, _ = build_simple_graph()
        assert len(g.memory_operations()) == 2
        assert len(g.compute_operations()) == 2
        assert len(g.live_in_nodes()) == 1
        assert g.communication_operations() == []

    def test_flow_consumers_and_producers(self):
        g, (alpha, load, mul, add, _) = build_simple_graph()
        assert [dst for dst, _ in g.flow_consumers(mul)] == [add]
        producers = {src for src, _ in g.flow_producers(mul)}
        assert producers == {alpha, load}

    def test_summary_is_readable(self):
        g, _ = build_simple_graph()
        summary = g.summary()
        assert "5 nodes" in summary and "2 compute" in summary


class TestEdgeLatency:
    def test_flow_edge_uses_producer_latency(self, machine):
        g, (_, load, mul, add, _) = build_simple_graph()
        edge = g.edge(mul, add)
        assert g.edge_latency(edge, machine.latency) == machine.latency("fmul")

    def test_live_in_edges_have_zero_latency(self, machine):
        g, (alpha, _, mul, _, _) = build_simple_graph()
        assert g.edge_latency(g.edge(alpha, mul), machine.latency) == 0

    def test_memory_edges_have_unit_latency(self, machine):
        g = DepGraph()
        st = g.add_node(OpType.STORE)
        ld = g.add_node(OpType.LOAD)
        edge = g.add_edge(st, ld, kind="mem")
        assert g.edge_latency(edge, machine.latency) == 1

    def test_latency_override(self, machine):
        g, (_, load, mul, _, _) = build_simple_graph()
        g.node(load).latency_override = 25
        assert g.edge_latency(g.edge(load, mul), machine.latency) == 25


class _RecordingListener:
    """Graph listener that logs every callback it receives."""

    def __init__(self):
        self.events = []

    def on_edge_added(self, edge):
        self.events.append(("edge_added", edge.src, edge.dst))

    def on_edge_removed(self, edge):
        self.events.append(("edge_removed", edge.src, edge.dst))

    def on_node_removed(self, node_id):
        self.events.append(("node_removed", node_id))


class TestListeners:
    def test_listener_sees_every_mutation(self):
        g, (alpha, load, mul, add, store) = build_simple_graph()
        listener = _RecordingListener()
        g.add_listener(listener)
        g.add_edge(load, add, kind="seq")
        g.remove_edge(load, add)
        g.remove_node(store)
        assert listener.events == [
            ("edge_added", load, add),
            ("edge_removed", load, add),
            # remove_node detaches incident edges (firing edge callbacks)
            # before announcing the node itself.
            ("edge_removed", add, store),
            ("node_removed", store),
        ]

    def test_remove_listener_unsubscribes(self):
        g, (_, load, _, add, _) = build_simple_graph()
        listener = _RecordingListener()
        g.add_listener(listener)
        g.add_edge(load, add, kind="seq")
        assert len(listener.events) == 1
        g.remove_listener(listener)
        g.remove_edge(load, add)
        assert len(listener.events) == 1

    def test_remove_unregistered_listener_is_a_noop(self):
        g, _ = build_simple_graph()
        g.remove_listener(_RecordingListener())   # must not raise

    def test_two_listeners_both_notified_in_order(self):
        g, (_, load, _, add, _) = build_simple_graph()
        first, second = _RecordingListener(), _RecordingListener()
        g.add_listener(first)
        g.add_listener(second)
        g.add_edge(load, add, kind="seq")
        assert first.events == second.events == [("edge_added", load, add)]

    def test_listeners_do_not_survive_pickling(self):
        import pickle

        g, (_, load, _, add, _) = build_simple_graph()
        listener = _RecordingListener()
        g.add_listener(listener)
        clone = pickle.loads(pickle.dumps(g))
        clone.add_edge(load, add, kind="seq")
        # The clone mutation must not reach the original's listener, and
        # the clone must come back with a clean listener list.
        assert listener.events == []
        assert clone._listeners == []
        g.add_edge(load, add, kind="seq")
        assert listener.events == [("edge_added", load, add)]

    def test_copy_does_not_carry_listeners(self):
        g, (_, load, _, add, _) = build_simple_graph()
        listener = _RecordingListener()
        g.add_listener(listener)
        clone = g.copy()
        clone.add_edge(load, add, kind="seq")
        assert listener.events == []


class TestDenseIndices:
    def test_indices_are_dense_and_unique(self):
        g, nodes = build_simple_graph()
        indices = [g.dense_index(n) for n in nodes]
        assert sorted(indices) == list(range(len(nodes)))
        assert g.dense_index_bound() == len(nodes)

    def test_removed_index_is_recycled_for_the_next_node(self):
        g, (_, load, mul, _, _) = build_simple_graph()
        freed = g.dense_index(mul)
        bound = g.dense_index_bound()
        g.remove_node(mul)
        with pytest.raises(KeyError):
            g.dense_index(mul)
        fresh = g.add_node(OpType.FADD)
        assert fresh != mul   # node ids are never reused ...
        assert g.dense_index(fresh) == freed   # ... but dense slots are
        assert g.dense_index_bound() == bound

    def test_index_freed_after_removal_listeners_run(self):
        g, (_, _, mul, _, _) = build_simple_graph()
        seen = {}

        class Probe:
            def on_edge_added(self, edge): pass
            def on_edge_removed(self, edge): pass
            def on_node_removed(self, node_id):
                # The dense index must still resolve while the removal
                # callback runs: array-backed listeners clear their slot
                # for exactly this index.
                seen[node_id] = g.dense_index(node_id)

        g.add_listener(Probe())
        expected = g.dense_index(mul)
        g.remove_node(mul)
        assert seen == {mul: expected}

    def test_pickle_round_trip_reassigns_dense_indices(self):
        import pickle

        g, (_, _, mul, _, _) = build_simple_graph()
        g.remove_node(mul)
        clone = pickle.loads(pickle.dumps(g))
        indices = sorted(clone.dense_index(n) for n in clone.node_ids())
        assert indices == list(range(len(clone)))
        assert clone.dense_index_bound() == len(clone)
