"""Unit tests for the named configurations used in the paper."""

import pytest

from repro.machine import (
    ALL_NAMED_CONFIGS,
    RFKind,
    baseline_machine,
    config_by_name,
    figure1_machines,
    figure4_cluster_counts,
    figure6_configs,
    table1_configs,
    table3_configs,
    table5_configs,
    table6_configs,
)


class TestBaseline:
    def test_baseline_machine(self):
        machine = baseline_machine()
        assert machine.n_fus == 8 and machine.n_mem_ports == 4

    def test_figure1_sweep(self):
        machines = figure1_machines()
        assert [(m.n_fus, m.n_mem_ports) for m in machines] == [
            (4, 2), (6, 3), (8, 4), (10, 5), (12, 6)
        ]


class TestNamedConfigs:
    def test_all_named_configs_fit_baseline(self):
        machine = baseline_machine()
        for rf in ALL_NAMED_CONFIGS.values():
            machine.validate_rf(rf)

    def test_lp_sp_match_paper(self):
        # Port counts the paper derives in Section 4 / Figure 4.
        assert (config_by_name("1C64S32").lp, config_by_name("1C64S32").sp) == (3, 2)
        assert (config_by_name("1C32S64").lp, config_by_name("1C32S64").sp) == (4, 2)
        assert (config_by_name("2C64S32").lp, config_by_name("2C64S32").sp) == (2, 1)
        assert (config_by_name("2C32S32").lp, config_by_name("2C32S32").sp) == (3, 1)
        assert (config_by_name("4C16S16").lp, config_by_name("4C16S16").sp) == (2, 1)
        assert (config_by_name("8C16S16").lp, config_by_name("8C16S16").sp) == (1, 1)

    def test_config_by_name_falls_back_to_parse(self):
        rf = config_by_name("2C8S8")
        assert rf.n_clusters == 2 and rf.cluster_regs == 8 and rf.shared_regs == 8

    def test_table1_configs(self):
        names = [rf.name for rf in table1_configs()]
        assert names == ["S128", "4C32", "1C64S64"]
        # The Table 1 configurations all have 128 registers in total.
        assert all(rf.total_registers == 128 for rf in table1_configs())

    def test_table5_has_fifteen_configs(self):
        configs = table5_configs()
        assert len(configs) == 15
        assert len({rf.name for rf in configs}) == 15

    def test_table6_same_as_table5(self):
        assert [rf.name for rf in table6_configs()] == [rf.name for rf in table5_configs()]

    def test_figure6_subset_of_table5(self):
        table5_names = {rf.name for rf in table5_configs()}
        for rf in figure6_configs():
            assert rf.name in table5_names

    def test_figure4_cluster_counts(self):
        assert figure4_cluster_counts() == [1, 2, 4, 8]


class TestTable3Configs:
    def test_pairs_are_unbounded(self):
        for unlimited, limited in table3_configs():
            if unlimited.cluster_regs is not None:
                assert unlimited.cluster_regs_unbounded
            if unlimited.shared_regs is not None:
                assert unlimited.shared_regs_unbounded

    def test_limited_ports_match_paper(self):
        ports = {
            limited.name: (limited.lp, limited.sp)
            for _, limited in table3_configs()
            if limited.has_cluster_banks
        }
        assert ports["1CinfSinf"] == (4, 2)
        assert ports["2CinfSinf"] == (3, 1)
        assert ports["4CinfSinf"] == (2, 1)
        assert ports["8CinfSinf"] == (1, 1)

    def test_covers_all_clustering_degrees(self):
        names = [limited.name for _, limited in table3_configs()]
        assert names[0] == "Sinf"
        assert "2Cinf" in names and "4Cinf" in names
        assert "8CinfSinf" in names

    def test_kinds(self):
        kinds = [limited.kind for _, limited in table3_configs()]
        assert RFKind.MONOLITHIC in kinds
        assert RFKind.CLUSTERED in kinds
        assert RFKind.HIERARCHICAL_CLUSTERED in kinds
