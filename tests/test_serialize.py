"""Tests for the versioned serialization registry (repro.serialize).

The contract under test:

* every registered type survives ``from_dict(to_dict(x))`` with
  canonical-form equality (``to_dict`` of the round-tripped object equals
  ``to_dict`` of the original) -- property-tested over random loops,
  configurations and machines;
* cache-keyed inputs (loops, configurations, machines) preserve the
  :func:`repro.eval.cache.schedule_key` exactly, so a result computed
  for a serialized problem is a cache hit for the deserialized one;
* envelopes are validated: unknown types, newer schemas and missing
  required keys are :class:`repro.serialize.SerializationError`, never
  silent garbage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import serialize
from repro.eval.cache import schedule_key
from repro.machine import MachineConfig, RFConfig, baseline_machine, config_by_name
from repro.machine.presets import table5_configs
from repro.hwmodel.timing import derive_hardware
from repro.workloads.generator import PROFILES, generate_loop
from repro.workloads.kernels import build_kernel

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
profile_names = st.sampled_from(sorted(PROFILES))
seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def random_loops(draw):
    profile = PROFILES[draw(profile_names)]
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    return generate_loop(rng, profile, index=0, name=f"ser_{seed}")


@st.composite
def random_rf_configs(draw):
    n_clusters = draw(st.sampled_from([1, 2, 4, 8]))
    cluster_regs = draw(st.sampled_from([None, 8, 16, 32]))
    shared_regs = draw(st.sampled_from([None, 16, 64, 128]))
    if cluster_regs is None:
        n_clusters = 1
        shared_regs = shared_regs or 128
    if cluster_regs is None and shared_regs is None:
        shared_regs = 64
    return RFConfig(
        n_clusters=n_clusters,
        cluster_regs=cluster_regs,
        shared_regs=shared_regs,
        lp=draw(st.integers(min_value=1, max_value=4)),
        sp=draw(st.integers(min_value=1, max_value=4)),
    )


@st.composite
def random_machines(draw):
    base = MachineConfig()
    n_clusters_divisible = draw(st.sampled_from([4, 8, 16]))
    latencies = dict(base.latencies)
    latencies["fadd"] = draw(st.integers(min_value=1, max_value=8))
    latencies["load"] = draw(st.integers(min_value=1, max_value=6))
    return MachineConfig(
        n_fus=n_clusters_divisible,
        n_mem_ports=draw(st.sampled_from([2, 4, 8])),
        latencies=latencies,
        miss_latency_ns=draw(st.sampled_from([5.0, 10.0, 20.0])),
    )


def roundtrip(obj):
    return serialize.loads(serialize.dumps(obj))


def canonical(obj):
    return serialize.to_dict(obj)


# --------------------------------------------------------------------------- #
# Property tests: JSON round trip preserves canonical form and cache keys
# --------------------------------------------------------------------------- #
class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(loop=random_loops())
    def test_loop_roundtrip_preserves_canonical_form_and_key(self, loop):
        back = roundtrip(loop)
        assert canonical(back) == canonical(loop)
        assert back.fingerprint() == loop.fingerprint()
        rf = config_by_name("4C16S16")
        machine = baseline_machine()
        assert schedule_key(back, rf, machine) == schedule_key(loop, rf, machine)

    @settings(max_examples=25, deadline=None)
    @given(rf=random_rf_configs())
    def test_rf_config_roundtrip_is_exact(self, rf):
        back = roundtrip(rf)
        assert back == rf
        loop = build_kernel("daxpy")
        machine = baseline_machine()
        assert schedule_key(loop, back, machine) == schedule_key(loop, rf, machine)

    @settings(max_examples=25, deadline=None)
    @given(machine=random_machines())
    def test_machine_roundtrip_is_exact(self, machine):
        back = roundtrip(machine)
        assert back == machine
        loop = build_kernel("daxpy")
        rf = config_by_name("S64")
        assert schedule_key(loop, rf, back) == schedule_key(loop, rf, machine)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(loop=random_loops(), config_name=st.sampled_from(["S64", "4C16S16"]))
    def test_schedule_result_roundtrip(self, loop, config_name):
        from repro.session import Session

        result = Session().schedule_kernel(loop, config_name)
        back = roundtrip(result)
        assert canonical(back) == canonical(result)
        assert back.ii == result.ii
        assert back.success == result.success
        assert len(back.assignments) == len(result.assignments)


# --------------------------------------------------------------------------- #
# Deterministic round trips for the composite types
# --------------------------------------------------------------------------- #
class TestCompositeRoundTrips:
    def test_hardware_spec_roundtrip(self):
        for rf in table5_configs()[:4]:
            spec = derive_hardware(baseline_machine(), rf)
            back = roundtrip(spec)
            assert back == spec
            assert back.total_area_mlambda2 == spec.total_area_mlambda2

    def test_loop_run_roundtrip(self):
        from repro.session import Session

        session = Session()
        run = next(iter(session.evaluate_stream("4C16S16", n_loops=1)))
        back = roundtrip(run)
        assert canonical(back) == canonical(run)
        assert back.cycles == run.cycles
        assert back.traffic == run.traffic
        assert back.time_ns == run.time_ns

    def test_configuration_report_roundtrip(self):
        from repro.session import Session

        report = Session().evaluate_configuration("S64", n_loops=3)
        back = roundtrip(report)
        assert canonical(back) == canonical(report)
        assert back.cycles == report.cycles
        assert back.n_failed == report.n_failed
        # The convenience methods are the same payloads.
        assert report.to_dict() == serialize.configuration_report_to_dict(report)

    def test_corpus_case_roundtrip(self, tmp_path):
        from repro.verify.corpus import discover_cases, load_case

        paths = discover_cases("tests/corpus")
        assert paths, "corpus must not be empty"
        case = load_case(paths[0])
        back = roundtrip(case)
        assert canonical(back) == canonical(case)
        assert back.loop.fingerprint() == case.loop.fingerprint()

    def test_fuzz_report_roundtrip(self):
        from repro.api import fuzz_schedules

        report = fuzz_schedules(2, base_seed=2003, shrink=False)
        back = roundtrip(report)
        assert canonical(back) == canonical(report)
        assert back.ok == report.ok
        assert report.to_dict()["n_cases"] == report.n_cases

    def test_save_load_file_roundtrip(self, tmp_path):
        rf = config_by_name("4C32S16")
        path = serialize.save(rf, tmp_path / "rf.json")
        assert serialize.load(path) == rf
        assert serialize.load(path, expect_type="rf_config") == rf

    def test_schedule_result_with_id_gap_graph(self):
        """Assignments stay consistent when the saved graph has id gaps."""
        from repro.session import Session

        loop = build_kernel("daxpy")
        # Force an id gap: add then remove a node before scheduling.
        doomed = loop.graph.add_node(next(iter(loop.graph.nodes())).op)
        loop.graph.remove_node(doomed)
        result = Session().schedule_kernel(loop, "4C16S16")
        back = roundtrip(result)
        # Remapped ids must agree between graph and assignments.
        graph_ids = set(back.graph.node_ids())
        assert set(back.assignments) <= graph_ids
        assert len(back.assignments) == len(result.assignments)


# --------------------------------------------------------------------------- #
# Envelope validation
# --------------------------------------------------------------------------- #
class TestEnvelopeValidation:
    def test_unregistered_object_rejected(self):
        with pytest.raises(serialize.SerializationError, match="not a registered"):
            serialize.to_dict(object())

    def test_missing_envelope_keys_rejected(self):
        with pytest.raises(serialize.SerializationError, match="missing keys"):
            serialize.from_dict({"type": "rf_config"})

    def test_unknown_type_rejected(self):
        with pytest.raises(serialize.SerializationError, match="unknown envelope type"):
            serialize.from_dict({"schema": 1, "type": "nope", "data": {}})

    def test_newer_schema_rejected(self):
        envelope = serialize.to_dict(config_by_name("S64"))
        envelope["schema"] = serialize.SCHEMA_VERSION + 1
        with pytest.raises(serialize.SerializationError, match="unknown schema"):
            serialize.from_dict(envelope)

    def test_expect_type_mismatch_rejected(self):
        envelope = serialize.to_dict(config_by_name("S64"))
        with pytest.raises(serialize.SerializationError, match="expected an envelope"):
            serialize.from_dict(envelope, expect_type="schedule_result")

    def test_missing_required_data_keys_rejected(self):
        envelope = serialize.to_dict(config_by_name("S64"))
        del envelope["data"]["n_clusters"]
        with pytest.raises(serialize.SerializationError, match="required keys"):
            serialize.validate(envelope)

    def test_bad_json_rejected(self):
        with pytest.raises(serialize.SerializationError, match="not valid JSON"):
            serialize.loads("{nope")

    def test_schema_covers_every_registered_type(self):
        schema = serialize.schema()
        assert set(schema["types"]) == set(serialize.registered_types())
        for name, description in schema["types"].items():
            assert isinstance(description["required"], list)
