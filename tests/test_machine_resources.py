"""Unit tests for the per-cluster resource model."""

import pytest

from repro.machine import MachineConfig, RFConfig, ResourceKind, ResourceModel
from repro.machine.resources import GLOBAL, SHARED


@pytest.fixture
def machine():
    return MachineConfig()


class TestResourceInventory:
    def test_monolithic(self, machine):
        model = ResourceModel(machine, RFConfig.parse("S128"))
        assert model.count((ResourceKind.FU, 0)) == 8
        assert model.count((ResourceKind.MEM, SHARED)) == 4
        assert model.count((ResourceKind.BUS, GLOBAL)) == 0
        assert model.clusters == [0]

    def test_clustered(self, machine):
        model = ResourceModel(machine, RFConfig.parse("4C32"))
        for cluster in range(4):
            assert model.count((ResourceKind.FU, cluster)) == 2
            assert model.count((ResourceKind.MEM, cluster)) == 1
            assert model.count((ResourceKind.LP, cluster)) == 1
            assert model.count((ResourceKind.SP, cluster)) == 1
        assert model.count((ResourceKind.BUS, GLOBAL)) == 2
        assert model.n_clusters == 4

    def test_hierarchical_clustered(self, machine):
        rf = RFConfig.parse("4C16S16").with_ports(2, 1)
        model = ResourceModel(machine, rf)
        assert model.count((ResourceKind.MEM, SHARED)) == 4
        assert model.count((ResourceKind.LP, 0)) == 2
        assert model.count((ResourceKind.SP, 0)) == 1
        # No bus: communication goes through the shared bank.
        assert model.count((ResourceKind.BUS, GLOBAL)) == 0

    def test_eight_clusters_only_hierarchical(self, machine):
        # 8 clusters with only 4 memory ports is only possible when the
        # memory ports are decoupled onto the shared bank.
        ResourceModel(machine, RFConfig.parse("8C16S16"))
        with pytest.raises(ValueError):
            ResourceModel(machine, RFConfig(n_clusters=8, cluster_regs=16, shared_regs=None))

    def test_describe_mentions_all_kinds(self, machine):
        text = ResourceModel(machine, RFConfig.parse("2C32S32")).describe()
        assert "fu" in text and "mem" in text and "lp" in text


class TestOperationUses:
    def test_compute_uses_pipelined(self, machine):
        model = ResourceModel(machine, RFConfig.parse("4C32"))
        uses = model.compute_uses("fadd", 2)
        assert len(uses) == 1
        assert uses[0].key == (ResourceKind.FU, 2)
        assert uses[0].duration == 1

    def test_compute_uses_unpipelined(self, machine):
        model = ResourceModel(machine, RFConfig.parse("S64"))
        uses = model.compute_uses("fdiv", 0)
        assert uses[0].duration == machine.latency("fdiv")

    def test_memory_uses(self, machine):
        clustered = ResourceModel(machine, RFConfig.parse("4C32"))
        assert clustered.memory_uses(3)[0].key == (ResourceKind.MEM, 3)
        hierarchical = ResourceModel(machine, RFConfig.parse("4C16S16"))
        assert hierarchical.memory_uses(3)[0].key == (ResourceKind.MEM, SHARED)

    def test_move_uses(self, machine):
        model = ResourceModel(machine, RFConfig.parse("4C32"))
        keys = [use.key for use in model.move_uses(1, 3)]
        assert (ResourceKind.SP, 1) in keys
        assert (ResourceKind.LP, 3) in keys
        assert (ResourceKind.BUS, GLOBAL) in keys

    def test_loadr_storer_uses(self, machine):
        model = ResourceModel(machine, RFConfig.parse("2C32S32"))
        assert model.loadr_uses(1)[0].key == (ResourceKind.LP, 1)
        assert model.storer_uses(0)[0].key == (ResourceKind.SP, 0)


class TestResMIIComponents:
    def test_fu_bound(self, machine):
        model = ResourceModel(machine, RFConfig.parse("S128"))
        bounds = model.res_mii_components(
            n_compute=16, n_compute_unpipelined_cycles=0, n_memory=4
        )
        assert bounds["fu"] == 2
        assert bounds["mem"] == 1

    def test_mem_bound(self, machine):
        model = ResourceModel(machine, RFConfig.parse("S128"))
        bounds = model.res_mii_components(
            n_compute=4, n_compute_unpipelined_cycles=0, n_memory=9
        )
        assert bounds["mem"] == 3

    def test_unpipelined_cycles_count(self, machine):
        model = ResourceModel(machine, RFConfig.parse("S128"))
        bounds = model.res_mii_components(
            n_compute=1, n_compute_unpipelined_cycles=16, n_memory=0
        )
        assert bounds["fu"] == 3  # ceil(17 / 8)

    def test_comm_bound_hierarchical(self, machine):
        rf = RFConfig.parse("8C16S16")  # lp = sp = 1, 8 clusters
        model = ResourceModel(machine, rf)
        bounds = model.res_mii_components(
            n_compute=0, n_compute_unpipelined_cycles=0, n_memory=0, n_comm=33
        )
        assert bounds["com"] == 3  # ceil(33 / 16)

    def test_zero_ops(self, machine):
        model = ResourceModel(machine, RFConfig.parse("S64"))
        bounds = model.res_mii_components(0, 0, 0, 0)
        assert bounds == {"fu": 0, "mem": 0, "com": 0}
