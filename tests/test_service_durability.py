"""Tests for the durable service layer: content-hash job ids, the jobs
table write-through, crash recovery, content-idempotent resubmission,
per-client quotas and round-robin fairness.

This is the kill-and-restart contract of ``repro serve --db``: a second
scheduler constructed over the same database must re-enqueue whatever a
crash orphaned, finish it with the same job ids and the same canonical
``runs_digest``, and answer a resubmission of finished content from the
store without scheduling a single loop.
"""

from __future__ import annotations

import re

import pytest

from repro.service import BatchScheduler, QuotaExceeded, job_content_key
from repro.service.batch import JobRequest
from repro.session import Session
from repro.store import RunDatabase

DAXPY = {"kind": "schedule", "params": {"kernel": "daxpy", "config": "S64"}}
VADD = {"kind": "schedule", "params": {"kernel": "vadd", "config": "S64"}}
FIR = {"kind": "schedule", "params": {"kernel": "fir_filter", "config": "S64"}}


@pytest.fixture()
def session():
    sess = Session()
    yield sess
    sess.close()


# --------------------------------------------------------------------------- #
# Content-hash job ids (the sequential-id regression)
# --------------------------------------------------------------------------- #
class TestContentHashJobIds:
    def test_id_is_a_content_hash_prefix(self, session):
        batch = BatchScheduler(session, start=False)
        try:
            job_id = batch.submit(DAXPY)
            assert re.fullmatch(r"job-[0-9a-f]{16}", job_id)
            key = job_content_key(JobRequest.from_dict(DAXPY), session)
            assert job_id == f"job-{key[:16]}"
        finally:
            batch.shutdown()

    def test_ids_are_stable_across_scheduler_instances(self, session):
        """The regression: sequential ids collided across service
        lifetimes; content-derived ids must come out identical."""
        first = BatchScheduler(session, start=False)
        id_a = first.submit(DAXPY)
        first.shutdown()
        second = BatchScheduler(session, start=False)
        id_b = second.submit(DAXPY)
        id_other = second.submit(VADD)
        second.shutdown()
        assert id_a == id_b
        assert id_other != id_b

    def test_client_is_not_part_of_the_content_key(self, session):
        request = JobRequest.from_dict(DAXPY)
        assert job_content_key(request, session) == job_content_key(
            JobRequest.from_dict({**DAXPY, "client": "alice"}), session
        )

    def test_repeat_submission_without_db_gets_suffixed_id(self, session):
        # Without a database there is no dedup: both attempts run, each
        # keeps an addressable record.
        batch = BatchScheduler(session, start=False)
        try:
            first = batch.submit(DAXPY)
            second = batch.submit(DAXPY)
            assert second == f"{first}.2"
            assert len(batch.list_jobs()) == 2
        finally:
            batch.shutdown()

    def test_unrunnable_request_still_gets_a_stable_key(self, session):
        bad = {"kind": "schedule",
               "params": {"kernel": "daxpy", "config": "not-a-config"}}
        key = job_content_key(JobRequest.from_dict(bad), session)
        assert key == job_content_key(JobRequest.from_dict(bad), session)
        assert key != job_content_key(JobRequest.from_dict(DAXPY), session)


# --------------------------------------------------------------------------- #
# Write-through and crash recovery
# --------------------------------------------------------------------------- #
class TestDurability:
    def test_submission_is_written_through(self, tmp_path, session):
        path = tmp_path / "runs.sqlite"
        batch = BatchScheduler(session, db=path, start=False)
        try:
            job_id = batch.submit(DAXPY, client="alice")
            row = batch.db.job(job_id)
            assert row["state"] == "queued" and row["client"] == "alice"
            assert row["job_key"] and job_id.startswith(f"job-{row['job_key'][:16]}")
        finally:
            batch.shutdown()
        # A clean shutdown cancels the queued job *in the database* too,
        # so the next lifetime has nothing to recover.
        with RunDatabase(path) as db:
            assert db.job(job_id)["state"] == "cancelled"
            assert db.pending_jobs() == []

    def test_crashed_jobs_are_recovered_and_finished(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        session_a = Session()
        # start=False and no shutdown(): the jobs sit queued in the
        # database exactly as a SIGKILL would leave them.
        crashed = BatchScheduler(session_a, db=path, start=False)
        first = crashed.submit(DAXPY)
        second = crashed.submit(VADD)
        crashed.db.close()
        session_a.close()

        session_b = Session()
        revived = BatchScheduler(session_b, db=path)
        try:
            assert revived.n_recovered == 2
            for job_id in (first, second):
                status = revived.wait(job_id, timeout=120)
                assert status["state"] == "done"
                assert status["runs_digest"]
            # The finished state and results were written through.
            assert revived.db.job(first)["state"] == "done"
            assert revived.db.stats()["n_runs"] == 2
        finally:
            revived.shutdown()
            session_b.close()

    def test_running_rows_restart_from_queued(self, tmp_path, session):
        path = tmp_path / "runs.sqlite"
        with RunDatabase(path) as db:
            crashed = BatchScheduler(session, db=db, start=False)
            job_id = crashed.submit(DAXPY)
            # Simulate dying mid-run: the row says running, n_done > 0.
            db.update_job(job_id, state="running", started_at=1.0, n_done=1)
        revived = BatchScheduler(session, db=path, start=False)
        try:
            status = revived.status(job_id)
            assert status["state"] == "queued"
            assert status["started_at"] is None
            assert status["progress"]["n_done"] == 0
        finally:
            revived.shutdown()

    def test_old_form_sequential_ids_still_work(self, tmp_path, session):
        """Databases written by the sequential-id scheme keep working:
        the stored id is used verbatim on recovery."""
        path = tmp_path / "runs.sqlite"
        with RunDatabase(path) as db:
            db.upsert_job({
                "job_id": "job-3", "job_key": "legacy",
                "kind": "schedule", "client": "anonymous",
                "params": '{"kind": "schedule", "params": '
                          '{"kernel": "daxpy", "config": "S64"}}',
                "state": "queued", "submitted_at": 1.0,
            })
        revived = BatchScheduler(session, db=path)
        try:
            assert revived.n_recovered == 1
            status = revived.wait("job-3", timeout=120)
            assert status["state"] == "done"
            assert revived.result("job-3")["type"] == "schedule_result"
        finally:
            revived.shutdown()

    def test_corrupt_stored_request_fails_that_row_only(self, tmp_path, session):
        path = tmp_path / "runs.sqlite"
        with RunDatabase(path) as db:
            db.upsert_job({
                "job_id": "job-bad", "job_key": "bad", "kind": "schedule",
                "client": "anonymous", "params": "not json{",
                "state": "queued", "submitted_at": 1.0,
            })
            db.upsert_job({
                "job_id": "job-ok", "job_key": "ok", "kind": "schedule",
                "client": "anonymous",
                "params": '{"kind": "schedule", "params": '
                          '{"kernel": "daxpy", "config": "S64"}}',
                "state": "queued", "submitted_at": 2.0,
            })
        revived = BatchScheduler(session, db=path, start=False)
        try:
            assert revived.n_recovered == 1
            assert revived.db.job("job-bad")["state"] == "failed"
            assert revived.status("job-ok")["state"] == "queued"
        finally:
            revived.shutdown()


# --------------------------------------------------------------------------- #
# Content-idempotent resubmission
# --------------------------------------------------------------------------- #
class TestIdempotentResubmission:
    def test_done_content_answers_from_the_store(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        session_a = Session()
        producer = BatchScheduler(session_a, db=path)
        job_id = producer.submit(DAXPY)
        assert producer.wait(job_id, timeout=120)["state"] == "done"
        digest = producer.status(job_id)["runs_digest"]
        envelope = producer.result(job_id)
        producer.shutdown()
        producer.db.close()
        session_a.close()

        # A fresh lifetime with a cold session and start=False: if the
        # resubmission scheduled anything at all it would sit queued
        # forever -- instead it answers done, from the run table.
        from repro.eval.cache import EvalCache

        session_b = Session(cache=EvalCache())
        replayer = BatchScheduler(session_b, db=path, start=False)
        try:
            again = replayer.submit(DAXPY)
            assert again == job_id
            status = replayer.status(again)
            assert status["state"] == "done"
            assert status["runs_digest"] == digest
            assert replayer.result(again) == envelope
            # Zero loops scheduled: the session's engine was never touched.
            assert session_b.cache.stores == 0 and session_b.cache.hits == 0
        finally:
            replayer.shutdown()
            session_b.close()

    def test_queued_content_dedupes_to_the_existing_job(self, tmp_path, session):
        batch = BatchScheduler(session, db=tmp_path / "runs.sqlite",
                               start=False)
        try:
            first = batch.submit(DAXPY)
            assert batch.submit(DAXPY) == first
            assert batch.submit(DAXPY, client="alice") == first
            assert len(batch.list_jobs()) == 1
        finally:
            batch.shutdown()

    def test_failed_content_gets_a_fresh_attempt(self, tmp_path, session):
        bad = {"kind": "schedule",
               "params": {"kernel": "daxpy", "config": "not-a-config"}}
        batch = BatchScheduler(session, db=tmp_path / "runs.sqlite")
        try:
            first = batch.submit(bad)
            assert batch.wait(first, timeout=60)["state"] == "failed"
            second = batch.submit(bad)
            assert second == f"{first}.2"
        finally:
            batch.shutdown()

    def test_digest_is_identical_across_lifetimes(self, tmp_path):
        """The CI durability-smoke invariant, in-process: an interrupted
        run finished by a second lifetime digests identically to an
        uninterrupted one."""
        digests = []
        for name in ("one", "two"):
            sess = Session()
            batch = BatchScheduler(sess, db=tmp_path / f"{name}.sqlite")
            try:
                job_id = batch.submit(DAXPY)
                status = batch.wait(job_id, timeout=120)
                assert status["state"] == "done"
                digests.append(status["runs_digest"])
            finally:
                batch.shutdown()
                batch.db.close()
                sess.close()
        assert digests[0] == digests[1]


# --------------------------------------------------------------------------- #
# Quotas and fairness
# --------------------------------------------------------------------------- #
class TestQuotasAndFairness:
    def test_quota_limits_queued_jobs_per_client(self, session):
        batch = BatchScheduler(session, max_queued_per_client=2, start=False)
        try:
            batch.submit(DAXPY, client="alice")
            batch.submit(VADD, client="alice")
            with pytest.raises(QuotaExceeded, match="quota: 2"):
                batch.submit(FIR, client="alice")
            # Another client's queue is untouched by alice's quota.
            batch.submit(FIR, client="bob")
        finally:
            batch.shutdown()

    def test_quota_must_be_positive(self, session):
        with pytest.raises(ValueError, match=">= 1"):
            BatchScheduler(session, max_queued_per_client=0, start=False)

    def test_resubmission_of_done_content_never_hits_the_quota(
        self, tmp_path, session
    ):
        batch = BatchScheduler(session, db=tmp_path / "runs.sqlite",
                               max_queued_per_client=1)
        try:
            job_id = batch.submit(DAXPY, client="alice")
            assert batch.wait(job_id, timeout=120)["state"] == "done"
            other = batch.submit(VADD, client="alice")
            # Queue is now full for alice, but replaying finished work is
            # answered from the store -- not a new queue entry.
            assert batch.submit(DAXPY, client="alice") == job_id
            batch.wait(other, timeout=120)
        finally:
            batch.shutdown()

    def test_round_robin_across_clients_fifo_within(self, session):
        batch = BatchScheduler(session, start=False)
        try:
            a1 = batch.submit(DAXPY, client="alice")
            a2 = batch.submit(VADD, client="alice")
            a3 = batch.submit(FIR, client="alice")
            b1 = batch.submit(DAXPY, client="bob")
            with batch._lock:
                order = [batch._dequeue_locked() for _ in range(4)]
            # bob's single job is not stuck behind alice's backlog.
            assert order == [a1, b1, a2, a3]
        finally:
            batch.shutdown()

    def test_stats_expose_queue_and_recovery_counters(self, session):
        batch = BatchScheduler(session, max_queued_per_client=5, start=False)
        try:
            batch.submit(DAXPY, client="alice")
            stats = batch.stats()
            assert stats["queued_by_client"] == {"alice": 1}
            assert stats["max_queued_per_client"] == 5
            assert stats["n_recovered"] == 0
            assert "db" not in stats
        finally:
            batch.shutdown()
