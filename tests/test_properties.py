"""Property-based tests (hypothesis) on core data structures and invariants.

These tests generate random dependence graphs, register-file
configurations and reservation-table workloads, and check the invariants
that the rest of the system relies on:

* the MII is a true lower bound: every schedule the scheduler produces has
  ``II >= RecMII`` of its own graph and passes the independent validator;
* MaxLive accounting never loses a value and scales with loop-carried
  distances;
* the modulo reservation table never oversubscribes a resource;
* unrolling preserves the per-original-iteration work of a loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MirsHC, validate_schedule
from repro.core.lifetimes import register_usage
from repro.core.mrt import ModuloReservationTable
from repro.core.banks import SHARED
from repro.ddg import DepGraph, OpType, compute_mii, unroll
from repro.ddg.analysis import heights, rec_mii
from repro.hwmodel import scaled_machine
from repro.machine import MachineConfig, RFConfig, ResourceModel, baseline_machine, config_by_name
from repro.machine.resources import ResourceKind, ResourceUse
from repro.workloads.generator import PROFILES, generate_loop

MACHINE = MachineConfig()

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
profile_names = st.sampled_from(sorted(PROFILES))
seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def random_loops(draw):
    """A random generated loop (dependence graph + metadata)."""
    profile = PROFILES[draw(profile_names)]
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    return generate_loop(rng, profile, index=0, name=f"hyp_{seed}")


@st.composite
def random_dags(draw):
    """A small random acyclic dependence graph of compute ops."""
    n = draw(st.integers(min_value=2, max_value=12))
    graph = DepGraph()
    kinds = [OpType.FADD, OpType.FMUL]
    nodes = [graph.add_node(draw(st.sampled_from(kinds))) for _ in range(n)]
    for i in range(1, n):
        n_preds = draw(st.integers(min_value=0, max_value=min(2, i)))
        preds = draw(
            st.lists(st.integers(min_value=0, max_value=i - 1),
                     min_size=n_preds, max_size=n_preds, unique=True)
        )
        for p in preds:
            graph.add_edge(nodes[p], nodes[i])
    return graph, nodes


hypothesis_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# Graph / analysis properties
# --------------------------------------------------------------------------- #
class TestGraphProperties:
    @given(random_loops())
    @hypothesis_settings
    def test_generated_loops_are_well_formed(self, loop):
        graph = loop.graph
        # No zero-distance cycles (heights() would raise).
        heights(graph, MACHINE.latency)
        # Every load has a consumer; every edge endpoint exists.
        for op in graph.memory_operations():
            if op.op is OpType.LOAD:
                assert graph.successors(op.node_id)
        for edge in graph.edges():
            assert edge.src in graph and edge.dst in graph

    @given(random_loops())
    @hypothesis_settings
    def test_mii_is_positive_and_rec_consistent(self, loop):
        resources = ResourceModel(MACHINE, RFConfig.parse("S128"))
        breakdown = compute_mii(loop.graph, resources, MACHINE.latency)
        assert breakdown.mii >= 1
        assert breakdown.mii >= breakdown.rec
        assert breakdown.mii >= breakdown.res_mem

    @given(random_dags())
    @hypothesis_settings
    def test_copy_preserves_structure(self, graph_and_nodes):
        graph, _ = graph_and_nodes
        clone = graph.copy()
        assert len(clone) == len(graph)
        assert clone.n_edges() == graph.n_edges()
        assert sorted(n.op.mnemonic for n in clone.nodes()) == sorted(
            n.op.mnemonic for n in graph.nodes()
        )

    @given(random_dags(), st.integers(min_value=1, max_value=3))
    @hypothesis_settings
    def test_rec_mii_scales_with_distance(self, graph_and_nodes, distance):
        graph, nodes = graph_and_nodes
        graph.add_edge(nodes[-1], nodes[0], distance=distance)
        value = rec_mii(graph, MACHINE.latency)
        double = DepGraph()
        # RecMII with distance d is at least RecMII with distance 2d.
        graph2 = graph.copy()
        graph2.remove_edge(nodes[-1], nodes[0])
        graph2.add_edge(nodes[-1], nodes[0], distance=2 * distance)
        assert rec_mii(graph2, MACHINE.latency) <= value


# --------------------------------------------------------------------------- #
# Unrolling properties
# --------------------------------------------------------------------------- #
class TestUnrollProperties:
    @given(random_loops(), st.integers(min_value=2, max_value=4))
    @hypothesis_settings
    def test_unroll_preserves_work(self, loop, factor):
        unrolled = unroll(loop, factor)
        original_ops = sum(1 for op in loop.graph.nodes() if not op.op.is_pseudo)
        unrolled_ops = sum(1 for op in unrolled.graph.nodes() if not op.op.is_pseudo)
        assert unrolled_ops == factor * original_ops
        # No zero-distance cycles are introduced.
        heights(unrolled.graph, MACHINE.latency)

    @given(random_loops(), st.integers(min_value=2, max_value=4))
    @hypothesis_settings
    def test_unroll_work_per_original_iteration_not_reduced(self, loop, factor):
        resources = ResourceModel(MACHINE, RFConfig.parse("S128"))
        original = compute_mii(loop.graph, resources, MACHINE.latency)
        unrolled = compute_mii(unroll(loop, factor).graph, resources, MACHINE.latency)
        # The unrolled body does `factor` original iterations, so its MII
        # must be at least the original MII (it cannot get cheaper per
        # original iteration than the resource bound allows).
        assert unrolled.mii >= original.mii


# --------------------------------------------------------------------------- #
# Reservation-table properties
# --------------------------------------------------------------------------- #
class TestMRTProperties:
    @given(
        st.integers(min_value=1, max_value=8),           # II
        st.integers(min_value=1, max_value=3),           # capacity
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=30),
    )
    @hypothesis_settings
    def test_never_oversubscribed(self, ii, capacity, cycles):
        key = (ResourceKind.FU, 0)
        table = ModuloReservationTable(ii, {key: capacity})
        per_slot = {s: 0 for s in range(ii)}
        for node_id, cycle in enumerate(cycles):
            use = [ResourceUse(key)]
            if table.can_reserve(use, cycle):
                table.reserve(node_id, use, cycle)
                per_slot[cycle % ii] += 1
        assert all(count <= capacity for count in per_slot.values())
        util = table.utilization()[key]
        assert 0.0 <= util <= 1.0

    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.tuples(st.integers(0, 30), st.integers(1, 20)), min_size=1, max_size=15),
    )
    @hypothesis_settings
    def test_release_restores_capacity(self, ii, reservations):
        key = (ResourceKind.MEM, SHARED)
        table = ModuloReservationTable(ii, {key: 1})
        placed = []
        for node_id, (cycle, duration) in enumerate(reservations):
            use = [ResourceUse(key, duration=duration)]
            if table.can_reserve(use, cycle):
                table.reserve(node_id, use, cycle)
                placed.append(node_id)
        for node_id in placed:
            table.release(node_id)
        # After releasing everything the table is empty again.
        assert table.can_reserve([ResourceUse(key)], 0)
        assert table.utilization()[key] == 0.0


# --------------------------------------------------------------------------- #
# Register-pressure properties
# --------------------------------------------------------------------------- #
class TestPressureProperties:
    @given(random_loops(), st.integers(min_value=1, max_value=6))
    @hypothesis_settings
    def test_maxlive_counts_every_scheduled_value(self, loop, ii):
        graph = loop.graph
        rf = RFConfig.parse("S128")
        times = {}
        clusters = {}
        cycle = 0
        for node in graph.nodes():
            if node.op.is_pseudo:
                continue
            times[node.node_id] = cycle
            clusters[node.node_id] = 0 if node.op.is_compute else None
            cycle += 1
        usage = register_usage(graph, times, clusters, ii, rf, MACHINE.latency)
        assert usage[SHARED] >= 1
        # MaxLive never exceeds the sum of per-value instance counts (each
        # value contributes at most ceil(lifetime / II) concurrent copies)
        # plus one register per live-in value.
        from repro.core.lifetimes import lifetimes_by_bank

        per_bank = lifetimes_by_bank(graph, times, clusters, ii, rf, MACHINE.latency)
        upper = sum(
            -(-lifetime.length // ii) for lifetime in per_bank.get(SHARED, [])
        ) + len(graph.live_in_nodes())
        assert usage[SHARED] <= upper


# --------------------------------------------------------------------------- #
# Incremental pressure tracker: differential oracle
# --------------------------------------------------------------------------- #
class TestPressureTrackerProperties:
    """The tracker must equal a from-scratch MaxLive recompute, always.

    The refactored engine trusts :class:`PressureTracker` for every spill
    check; this oracle drives a partial schedule through arbitrary
    place / eject / spill / cleanup sequences (including the graph edits
    spilling and communication insertion perform) and asserts after every
    step that the incremental state matches ``register_usage`` recomputed
    from scratch.
    """

    @given(
        random_loops(),
        st.sampled_from(["S32", "2C32S32", "4C16S16", "4C32"]),
        st.integers(min_value=2, max_value=9),
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 10_000)),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tracker_equals_full_recompute(self, loop, config_name, ii, actions):
        from repro.core.communication import cleanup_after_eject, plan_communication
        from repro.core.cluster_select import select_cluster
        from repro.core.partial import PartialSchedule
        from repro.core.spill import SpillState, check_and_insert_spill
        from repro.machine import ResourceModel

        rf = config_by_name(config_name)
        machine, _ = scaled_machine(baseline_machine(), rf)
        graph = loop.graph.copy()
        schedule = PartialSchedule(
            graph, ii, machine, rf, ResourceModel(machine, rf),
            track_pressure=True,
        )
        spill_state = SpillState()

        def oracle():
            usage = schedule.pressure.usage()
            fresh = register_usage(
                graph, schedule.times, schedule.clusters, ii, rf, machine.latency
            )
            assert usage == fresh, f"tracker {usage} != recompute {fresh}"
            # The tracked lifetimes must match the full sweep as well
            # (they feed spill-victim selection).
            from repro.core.lifetimes import lifetimes_by_bank

            tracked = {
                bank: sorted(lts)
                for bank, lts in schedule.pressure.lifetimes_by_bank().items()
            }
            swept = {
                bank: sorted(lts)
                for bank, lts in lifetimes_by_bank(
                    graph, schedule.times, schedule.clusters, ii, rf, machine.latency
                ).items()
            }
            assert tracked == swept

        oracle()
        for action, pick in actions:
            schedulable = [
                n.node_id for n in graph.nodes()
                if not n.op.is_pseudo and n.node_id not in schedule.times
            ]
            scheduled = sorted(schedule.times)
            if action == 0 and schedulable:
                # Place a node (with communication planning and possible
                # force-and-eject, exactly like the engine does).
                node_id = schedulable[pick % len(schedulable)]
                cluster = select_cluster(graph, schedule, node_id, rf,
                                         schedule.pressure.usage())
                new_comm, _requeue = plan_communication(
                    graph, schedule, node_id, cluster, rf
                )
                for comm_node in new_comm:
                    if comm_node not in graph:
                        continue
                    schedule.schedule(comm_node, graph.node(comm_node).home_cluster)
                if node_id in graph:
                    schedule.schedule(node_id, cluster)
            elif action == 1 and scheduled:
                # Eject a node and clean up the communication it owned.
                node_id = scheduled[pick % len(scheduled)]
                schedule.remove(node_id)
                cleanup_after_eject(graph, schedule, node_id)
            elif action == 2:
                # Run the spill check (may insert spill code = graph edits).
                check_and_insert_spill(graph, schedule, rf, machine, spill_state)
            oracle()


# --------------------------------------------------------------------------- #
# End-to-end scheduling properties
# --------------------------------------------------------------------------- #
class TestSchedulerProperties:
    @given(random_loops(), st.sampled_from(["S64", "2C64", "2C32S32", "4C16S16"]))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_schedules_are_always_valid(self, loop, config_name):
        rf = config_by_name(config_name)
        machine, _ = scaled_machine(baseline_machine(), rf)
        result = MirsHC(machine, rf).schedule_loop(loop)
        assert result.success
        assert result.ii >= result.mii
        validate_schedule(result, machine, rf)
