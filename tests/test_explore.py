"""Design-space exploration: frontier invariants, search determinism,
store-backed resume, and the paper's headline result rediscovered.

The frontier properties are the satellite hypothesis suite of PR 10:

* the kept set is non-dominated after *any* insertion sequence;
* the final frontier (and its digest) is independent of insertion order;
* ``random``/``evolve`` probe traces are pure functions of the seed.

The heavier end-to-end tests pin the acceptance criteria: identical
frontier digests across runs, zero re-evaluated probes on ``--resume``,
and — on loops drawn from the small tier — a clustered-hierarchical
configuration that dominates monolithic S64 on the (area, time) plane.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import serialize
from repro.explore import (
    DesignSpace,
    Explorer,
    ExploreReport,
    ExploreSpec,
    FrontierPoint,
    ParetoFrontier,
    dominates,
    explore_key,
    probe_key,
    run_explore,
)
from repro.machine.config import RFConfig
from repro.session import FrontierUpdate, Session
from repro.store.db import RunDatabase

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

objective_values = st.floats(
    min_value=0.1, max_value=1000.0, allow_nan=False, allow_infinity=False
)


@st.composite
def frontier_points(draw):
    """A measured design point.

    A configuration's identity determines its objectives (one config =
    one deterministic measurement), mirroring the real system; exact
    duplicates — the same point inserted twice — remain possible.
    """
    area = draw(objective_values)
    time_ns = draw(objective_values)
    sum_ii = draw(st.integers(min_value=0, max_value=500))
    name = f"cfg-{area}-{time_ns}-{sum_ii}"
    return FrontierPoint(
        config={"name": name},
        config_name=name,
        kind="monolithic",
        area_mlambda2=area,
        time_ns=time_ns,
        sum_ii=sum_ii,
    )


point_lists = st.lists(frontier_points(), min_size=0, max_size=24)


def fake_objectives(rf: RFConfig) -> tuple:
    """Deterministic toy objectives keyed only on the configuration."""
    area = float(rf.total_registers * (1 + rf.lp + rf.sp)) / max(1, rf.n_clusters)
    time_ns = 1000.0 / (1 + rf.n_clusters) + float(rf.shared_regs or 0) * 0.5
    return (area, time_ns, int(area + time_ns), 0)


def fake_evaluate(rf, tier, n_loops):
    return fake_objectives(rf)


# --------------------------------------------------------------------------- #
# Frontier properties (hypothesis)
# --------------------------------------------------------------------------- #


@given(points=point_lists)
@settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
def test_frontier_is_always_non_dominated(points):
    frontier = ParetoFrontier()
    for point in points:
        frontier.insert(point)
        kept = frontier.points()
        for a in kept:
            assert a.n_failed == 0
            for b in kept:
                if a is not b:
                    assert not dominates(a, b)


@given(points=point_lists, order_seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
def test_frontier_is_insertion_order_independent(points, order_seed):
    forward = ParetoFrontier.from_points(points)
    shuffled = list(points)
    np.random.default_rng(order_seed).shuffle(shuffled)
    other = ParetoFrontier.from_points(shuffled)
    assert {p.config_name for p in forward.points()} == {
        p.config_name for p in other.points()
    }
    assert forward.digest() == other.digest()


@given(points=point_lists)
@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
def test_frontier_members_are_never_dominated_by_rejected_points(points):
    frontier = ParetoFrontier.from_points(points)
    for point in points:
        if point.n_failed == 0:
            assert not any(dominates(point, kept) for kept in frontier.points())


def test_failed_points_are_rejected():
    frontier = ParetoFrontier()
    bad = FrontierPoint(
        config={}, config_name="bad", kind="monolithic",
        area_mlambda2=0.1, time_ns=0.1, n_failed=2,
    )
    accepted, removed = frontier.insert(bad)
    assert not accepted and not removed and len(frontier) == 0


def test_equal_objective_points_coexist():
    a = FrontierPoint(config={"v": 1}, config_name="a", kind="monolithic",
                      area_mlambda2=1.0, time_ns=1.0)
    b = FrontierPoint(config={"v": 2}, config_name="b", kind="monolithic",
                      area_mlambda2=1.0, time_ns=1.0)
    assert not dominates(a, b) and not dominates(b, a)
    f1 = ParetoFrontier.from_points([a, b])
    f2 = ParetoFrontier.from_points([b, a])
    assert len(f1) == 2
    assert f1.digest() == f2.digest()


# --------------------------------------------------------------------------- #
# Design space
# --------------------------------------------------------------------------- #


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_space_operators_stay_inside_the_space(seed):
    space = DesignSpace()
    rng = np.random.default_rng(seed)
    a = space.sample(rng)
    b = space.sample(rng)
    assert space.contains(a) and space.contains(b)
    mutated = space.mutate(rng, a)
    assert space.contains(mutated)
    child = space.crossover(rng, a, b)
    assert space.contains(child)
    space.machine.validate_rf(mutated)
    space.machine.validate_rf(child)


def test_space_round_trips_through_dict():
    space = DesignSpace()
    assert DesignSpace.from_dict(space.to_dict()) == space


def test_space_contains_rejects_off_axis_configs():
    space = DesignSpace()
    assert not space.contains(RFConfig(shared_regs=100))  # off the axis
    assert space.contains(RFConfig(shared_regs=64))
    assert not space.contains(
        RFConfig(n_clusters=8, cluster_regs=16, shared_regs=None)
    )  # pure clustered beyond the memory ports


# --------------------------------------------------------------------------- #
# Search determinism (fake evaluator; no scheduling involved)
# --------------------------------------------------------------------------- #


def trace_of(spec: ExploreSpec) -> list:
    events = []
    run_explore(
        None,
        spec,
        evaluate=fake_evaluate,
        on_event=lambda u: events.append(
            (u.point.config_name, u.stage, u.n_done)
        ),
    )
    return events


@pytest.mark.parametrize("algo", ["random", "evolve"])
@pytest.mark.parametrize("seed", [0, 7, 2003])
def test_search_trace_is_seed_deterministic(algo, seed):
    spec = ExploreSpec(algo=algo, budget=24, seed=seed, tier="tiny")
    assert trace_of(spec) == trace_of(spec)


def test_different_seeds_give_different_traces():
    traces = {
        tuple(trace_of(ExploreSpec(algo="random", budget=24, seed=seed)))
        for seed in (0, 1, 2)
    }
    assert len(traces) > 1


def test_budget_is_respected_and_exhausted():
    for algo in ("random", "evolve"):
        spec = ExploreSpec(algo=algo, budget=17, seed=3)
        report = run_explore(None, spec, evaluate=fake_evaluate)
        assert report.n_probes == 17
        assert report.n_evaluated == 17
        assert report.n_restored == 0


def test_spec_validation():
    with pytest.raises(ValueError):
        ExploreSpec(algo="annealing")
    with pytest.raises(ValueError):
        ExploreSpec(budget=0)
    with pytest.raises(ValueError):
        ExploreSpec(population=1)
    with pytest.raises(ValueError):
        ExploreSpec(promote=9, population=8)


def test_explorer_requires_a_backend():
    with pytest.raises(ValueError):
        Explorer(session=None, spec=ExploreSpec())


def test_frontier_events_stream_like_run_ready():
    events = []
    spec = ExploreSpec(algo="evolve", budget=12, seed=5)
    run_explore(None, spec, evaluate=fake_evaluate, on_event=events.append)
    assert events and all(isinstance(e, FrontierUpdate) for e in events)
    assert [e.n_done for e in events] == sorted(e.n_done for e in events)
    assert {e.stage for e in events} <= {"probe", "frontier"}
    assert all(e.n_total == 12 for e in events)


# --------------------------------------------------------------------------- #
# Serialization envelopes
# --------------------------------------------------------------------------- #


def test_explore_envelopes_round_trip():
    spec = ExploreSpec(algo="evolve", budget=9, seed=4, tier="tiny")
    report = run_explore(None, spec, evaluate=fake_evaluate)
    for obj, expect in (
        (spec, "explore_spec"),
        (report.points[0], "frontier_point"),
        (report, "explore_report"),
    ):
        envelope = serialize.to_dict(obj)
        assert envelope["type"] == expect
        serialize.validate(envelope, expect_type=expect)
        rebuilt = serialize.from_dict(envelope)
        assert serialize.to_dict(rebuilt) == envelope
    rebuilt = serialize.from_dict(serialize.to_dict(report))
    assert rebuilt.digest == report.digest
    assert rebuilt.frontier().digest() == report.digest


# --------------------------------------------------------------------------- #
# Probe store: persistence and resume
# --------------------------------------------------------------------------- #


def test_probe_key_ignores_search_knobs():
    rf = RFConfig.parse("4C16S16")
    base = probe_key("fp", rf, "tiny", 4, 2003)
    assert base == probe_key("fp", rf, "tiny", 4, 2003)
    assert base != probe_key("fp", rf, "small", 4, 2003)
    assert base != probe_key("fp", rf, "tiny", 5, 2003)
    assert base != probe_key("other", rf, "tiny", 4, 2003)
    spec_a = ExploreSpec(seed=1)
    spec_b = ExploreSpec(seed=2)
    assert explore_key(spec_a, "fp") != explore_key(spec_b, "fp")


def test_resume_restores_probes_and_preserves_digest(tmp_path):
    spec = ExploreSpec(algo="evolve", budget=20, seed=6)
    with RunDatabase(tmp_path / "probes.sqlite") as db:
        first = run_explore(None, spec, db=db, evaluate=fake_evaluate)
        assert first.n_evaluated == 20 and first.n_restored == 0
        second = run_explore(None, spec, db=db, evaluate=fake_evaluate)
        assert second.n_evaluated == 0
        assert second.n_restored == second.n_probes == 20
        assert second.digest == first.digest
        assert [p.to_dict() for p in second.points] == [
            p.to_dict() for p in first.points
        ]
        assert db.stats()["n_probes"] == 20


def test_interrupted_run_resumes_with_zero_reevaluation(tmp_path):
    """Kill the explorer mid-budget; the rerun must not repeat any probe."""
    spec = ExploreSpec(algo="random", budget=15, seed=9)

    class Boom(RuntimeError):
        pass

    calls = {"n": 0}

    def dying_evaluate(rf, tier, n_loops):
        if calls["n"] >= 6:
            raise Boom("killed mid-budget")
        calls["n"] += 1
        return fake_objectives(rf)

    with RunDatabase(tmp_path / "probes.sqlite") as db:
        with pytest.raises(Boom):
            run_explore(None, spec, db=db, evaluate=dying_evaluate)
        assert db.stats()["n_probes"] == 6

        resumed = run_explore(None, spec, db=db, evaluate=fake_evaluate)
        # The deterministic trace re-requests the 6 completed probes and
        # restores every one of them from the store.
        assert resumed.n_restored == 6
        assert resumed.n_evaluated == spec.budget - 6

        uninterrupted = run_explore(None, spec, evaluate=fake_evaluate)
        assert resumed.digest == uninterrupted.digest


def test_probe_rows_are_validated(tmp_path):
    with RunDatabase(tmp_path / "probes.sqlite") as db:
        with pytest.raises(ValueError, match="unknown probes columns"):
            db.add_probe({"probe_key": "x", "nonsense": 1})
        assert db.probe("missing") is None
        assert db.probes() == []


# --------------------------------------------------------------------------- #
# End-to-end through a real session (the acceptance criteria)
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def explore_session():
    with Session(jobs=0) as session:
        yield session


def test_explore_digest_is_deterministic_through_a_session(explore_session):
    spec = ExploreSpec(algo="random", budget=6, seed=3, tier="tiny", n_loops=4)
    first = run_explore(explore_session, spec)
    second = run_explore(explore_session, spec)
    assert first.n_probes == second.n_probes == 6
    assert first.digest == second.digest
    assert [p.config_name for p in first.points] == [
        p.config_name for p in second.points
    ]


def test_search_rediscovers_hierarchical_clustered_sweet_spot(explore_session):
    """The paper's headline: on loops drawn from the small tier, a
    clustered-hierarchical organization dominates monolithic S64."""
    spec = ExploreSpec(
        algo="evolve", budget=24, seed=14, tier="small", n_loops=8,
        probe_tier="tiny", probe_n_loops=6,
    )
    report = run_explore(explore_session, spec)
    s64_report = explore_session.evaluate_configuration(
        "S64", tier="small", n_loops=8, seed=spec.workbench_seed
    )
    s64 = FrontierPoint(
        config={}, config_name="S64", kind="monolithic",
        area_mlambda2=s64_report.area_mlambda2, time_ns=s64_report.time_ns,
    )
    dominating = [
        p for p in report.points
        if p.kind == "hierarchical-clustered" and dominates(p, s64)
    ]
    assert dominating, (
        "expected a clustered-hierarchical config dominating S64, frontier: "
        + json.dumps([p.to_dict() for p in report.points], indent=2)
    )
    # S64 itself cannot sit on a frontier that contains its dominator.
    assert "S64" not in {p.config_name for p in report.points}


def test_session_probes_persist_and_resume(tmp_path, explore_session):
    spec = ExploreSpec(algo="random", budget=5, seed=11, tier="tiny", n_loops=3)
    with RunDatabase(tmp_path / "probes.sqlite") as db:
        first = run_explore(explore_session, spec, db=db)
        assert first.n_evaluated == 5
        second = run_explore(explore_session, spec, db=db)
        assert second.n_evaluated == 0 and second.n_restored == 5
        assert second.digest == first.digest
