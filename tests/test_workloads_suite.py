"""The stratified workbench registry (tiny/small/standard/full tiers)."""

from __future__ import annotations

import pytest

from repro.eval.metrics import static_bound_breakdown
from repro.workloads.suite import (
    PAPER_LOOP_COUNT,
    TABLE1_BOUND_TARGETS,
    WORKBENCH_TIERS,
    WorkbenchSizeError,
    build_workbench,
    perfect_club_like_suite,
    tier_names,
    workbench_tier,
)


class TestTierRegistry:
    def test_registered_tiers_and_sizes(self):
        assert tier_names() == ["tiny", "small", "standard", "full"]
        assert workbench_tier("tiny").n_loops == 16
        assert workbench_tier("small").n_loops == 48
        assert workbench_tier("standard").n_loops == 256
        assert workbench_tier("full").n_loops == PAPER_LOOP_COUNT == 1258

    def test_sizes_strictly_increase(self):
        sizes = [tier.n_loops for tier in WORKBENCH_TIERS.values()]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)

    def test_unknown_tier_lists_the_options(self):
        with pytest.raises(ValueError, match="tiny.*small.*standard.*full"):
            workbench_tier("huge")

    def test_build_matches_legacy_builder(self):
        tier = workbench_tier("tiny")
        built = build_workbench("tiny")
        legacy = perfect_club_like_suite(n_loops=tier.n_loops, seed=tier.seed)
        assert [l.name for l in built] == [l.name for l in legacy]
        assert [l.fingerprint() for l in built] == [l.fingerprint() for l in legacy]

    def test_smaller_tier_is_prefix_of_larger(self):
        small = build_workbench("small")
        standard_prefix = build_workbench("standard", n_loops=len(small))
        assert [l.fingerprint() for l in small] == [
            l.fingerprint() for l in standard_prefix
        ]


class TestSizeValidation:
    def test_oversized_request_raises_not_truncates(self):
        with pytest.raises(WorkbenchSizeError) as excinfo:
            build_workbench("small", n_loops=49)
        message = str(excinfo.value)
        # The error must advertise every available size, so the caller
        # can pick a tier that fits instead of guessing.
        for name, tier in WORKBENCH_TIERS.items():
            assert name in message
            assert str(tier.n_loops) in message

    def test_non_positive_request_raises(self):
        with pytest.raises(WorkbenchSizeError):
            build_workbench("small", n_loops=0)

    def test_exact_tier_size_is_allowed(self):
        assert len(build_workbench("tiny", n_loops=16)) == 16

    def test_prefix_request_is_allowed(self):
        assert len(build_workbench("standard", n_loops=10)) == 10


class TestFullTier:
    """The paper-scale workbench: 1258 loops, Table-1-like breakdown."""

    @pytest.fixture(scope="class")
    def full_workbench(self):
        return build_workbench("full")

    def test_full_tier_builds_1258_loops(self, full_workbench):
        assert len(full_workbench) == PAPER_LOOP_COUNT

    def test_full_tier_is_deterministic(self, full_workbench):
        again = build_workbench("full")
        assert [l.fingerprint() for l in again] == [
            l.fingerprint() for l in full_workbench
        ]

    def test_full_tier_bound_breakdown_matches_table1(self, full_workbench):
        """Static loop-bound breakdown lands near the paper's Table 1.

        Classified by the binding MII component on the baseline
        monolithic S128 machine -- about half the loops memory-bound, a
        fifth FU-bound, a third recurrence-bound.  The tolerance is wide
        enough to survive generator tweaks that preserve the calibration
        and tight enough to catch a broken or missing mix.
        """
        breakdown = static_bound_breakdown(full_workbench, rf="S128")
        assert sum(breakdown.values()) == pytest.approx(1.0)
        targets = TABLE1_BOUND_TARGETS
        assert breakdown["mem"] == pytest.approx(targets["mem"], abs=0.10)
        assert breakdown["fu"] == pytest.approx(targets["fu"], abs=0.10)
        assert breakdown["rec"] == pytest.approx(targets["rec"], abs=0.10)

    def test_full_tier_profile_diversity(self, full_workbench):
        """Every generator profile (and the kernels) is represented."""
        profiles = {
            loop.attributes.get("profile", "kernel") for loop in full_workbench
        }
        assert profiles >= {
            "kernel",
            "memory_bound",
            "compute_bound",
            "recurrence_bound",
            "balanced",
            "large",
        }
