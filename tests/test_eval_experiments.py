"""Integration tests for the experiment drivers (small workbenches).

These tests check that every table/figure driver runs end to end and that
the *shape* of its output matches the paper's qualitative claims (who
wins, in which direction a metric moves); absolute values are not
compared.  They use small workbenches to stay fast.
"""

import pytest

from repro.eval import (
    run_figure1,
    run_figure4,
    run_figure6,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    schedule_suite,
)
from repro.eval.experiments import (
    run_ablation_budget_ratio,
    run_ablation_ports,
    run_ablation_prefetch,
)
from repro.workloads import perfect_club_like_suite

N_LOOPS = 20
SEED = 11


@pytest.fixture(scope="module")
def loops():
    return perfect_club_like_suite(N_LOOPS, seed=SEED)


class TestScheduleSuite:
    def test_runs_and_orders_match(self, loops):
        runs = schedule_suite(loops, "S64")
        assert len(runs) == len(loops)
        assert all(run.result.success for run in runs)

    def test_unknown_scheduler_rejected(self, loops):
        with pytest.raises(ValueError):
            schedule_suite(loops[:2], "S64", scheduler="bogus")


class TestHardwareTables:
    def test_table2_matches_published_values(self):
        rows = run_table2().data["rows"]
        assert rows["S128"]["shared_access_ns"] == pytest.approx(1.145)
        assert rows["S128"]["total_area"] == pytest.approx(14.91, abs=0.01)
        assert rows["4C32"]["total_area"] == pytest.approx(4.28, abs=0.05)
        assert rows["1C64S64"]["clock_ns"] == pytest.approx(1.016, abs=0.01)

    def test_table5_has_all_configs_and_monotone_clock(self):
        rows = run_table5().data["rows"]
        assert len(rows) == 15
        # Clustering + hierarchy shrinks the first-level bank and the clock.
        assert rows["8C16S16"]["clock_ns"] < rows["4C32"]["clock_ns"] < rows["S128"]["clock_ns"]
        # Areas: every partitioned organization is smaller than S128.
        for name, row in rows.items():
            if name != "S128":
                assert row["total_area"] < rows["S128"]["total_area"]

    def test_table5_renders(self):
        text = run_table5().render()
        assert "8C16S16" in text and "clock" in text


class TestFigure1:
    def test_ipc_increases_and_saturates(self):
        points = run_figure1(n_loops=N_LOOPS, seed=SEED).data["points"]
        ipcs = [p["ipc"] for p in points]
        assert ipcs == sorted(ipcs)                      # monotone increase
        assert points[-1]["efficiency"] < points[0]["efficiency"]  # saturation
        # The 8+4 baseline extracts a healthy IPC from the workbench.
        baseline = next(p for p in points if p["label"] == "8+4")
        assert baseline["ipc"] > 2.0


class TestTable1:
    def test_breakdown_shape(self):
        result = run_table1(n_loops=N_LOOPS, seed=SEED)
        breakdown = result.data["breakdown"]
        assert set(breakdown) == {"S128", "4C32", "1C64S64"}
        for config, categories in breakdown.items():
            total_pct = sum(entry["loops"] for entry in categories.values())
            assert total_pct == N_LOOPS
        ratios = result.data["cycle_ratio_vs_s128"]
        # Partitioned register files never execute in fewer cycles than the
        # monolithic organization, and the hierarchical organization is
        # closer to monolithic than the pure clustered one (paper Table 1).
        assert ratios["4C32"] >= 1.0
        assert ratios["1C64S64"] >= 1.0
        assert ratios["1C64S64"] <= ratios["4C32"] + 0.15


class TestTable3:
    def test_static_evaluation_shape(self):
        result = run_table3(n_loops=12, seed=SEED)
        rows = result.data["rows"]
        assert "Sinf" in rows and "8CinfSinf" in rows
        mono = rows["Sinf"]["limited"]
        assert mono["pct_mii"] > 80.0
        for name, row in rows.items():
            # Limiting the inter-bank bandwidth can only lose II.
            assert row["limited"]["sum_ii"] >= row["unlimited"]["sum_ii"] - 1e-9
            # The monolithic organization has the smallest total II.
            assert row["limited"]["sum_ii"] >= mono["sum_ii"] - 1e-9


class TestTable4:
    def test_mirs_hc_at_least_as_good(self):
        result = run_table4(n_loops=16, seed=SEED)
        better = result.data["better"]["count"]       # non-iterative better
        worse = result.data["worse"]["count"]         # non-iterative worse
        equal = result.data["equal"]["count"]
        assert better + worse + equal == 16
        # The iterative scheduler wins overall (paper: MIRS_HC reduces sum II).
        total_baseline = (
            result.data["better"]["baseline_ii"]
            + result.data["equal"]["baseline_ii"]
            + result.data["worse"]["baseline_ii"]
        )
        total_mirs = (
            result.data["better"]["mirs_ii"]
            + result.data["equal"]["mirs_ii"]
            + result.data["worse"]["mirs_ii"]
        )
        assert total_mirs <= total_baseline


class TestTable6:
    def test_ideal_memory_shape(self):
        result = run_table6(n_loops=N_LOOPS, seed=SEED)
        rows = result.data["rows"]
        assert len(rows) == 15
        # Execution cycles: partitioned organizations take at least as many
        # cycles as the monolithic S128.
        assert rows["4C32"]["cycles"] >= rows["S128"]["cycles"] * 0.98
        assert rows["8C16S16"]["cycles"] >= rows["S128"]["cycles"] * 0.98
        # Execution time: the hierarchical clustered organizations beat the
        # monolithic baseline thanks to their shorter cycle time (the
        # paper's headline result).
        assert rows["4C32S16"]["speedup"] > 1.0
        assert rows["8C16S16"]["speedup"] > 1.0
        assert rows["S128"]["speedup"] < rows["8C16S16"]["speedup"]
        # Hierarchical organizations with a reasonably sized shared bank do
        # not increase memory traffic above small monolithic files.
        assert rows["1C32S64"]["traffic"] <= rows["S32"]["traffic"] * 1.05


class TestFigure4:
    def test_port_requirement_cdf(self):
        result = run_figure4(n_loops=12, seed=SEED)
        cdf = result.data["cdf"]
        assert set(cdf) == {1, 2, 4, 8}
        for n_clusters, curves in cdf.items():
            lp = curves["lp_cdf"]
            sp = curves["sp_cdf"]
            assert lp == sorted(lp) and sp == sorted(sp)     # cumulative
            assert lp[-1] == pytest.approx(100.0)
            assert sp[-1] == pytest.approx(100.0)
        # More clusters spread the LoadR traffic, so fewer ports per bank
        # are needed: the 8-cluster curve dominates the 1-cluster curve.
        assert cdf[8]["lp_cdf"][1] >= cdf[1]["lp_cdf"][1] - 1e-9


class TestFigure6:
    def test_real_memory_shape(self):
        result = run_figure6(n_loops=12, seed=SEED)
        rows = result.data["rows"]
        assert set(rows) == {"S64", "2C64", "4C32", "1C32S64", "2C32S32", "4C32S16", "8C16S16"}
        for row in rows.values():
            assert row["stall_cycles"] >= 0.0
            assert row["total_cycles"] >= row["useful_cycles"]
        # Relative useful cycles grow with partitioning, but the faster
        # clock keeps total time competitive (speedup >= ~1 for the
        # hierarchical clustered organizations).
        assert rows["8C16S16"]["relative_useful"] >= rows["S64"]["relative_useful"]
        assert rows["4C32S16"]["speedup"] > 0.9


class TestAblations:
    def test_budget_ratio_ablation(self):
        result = run_ablation_budget_ratio(ratios=(1.0, 6.0), n_loops=8, seed=SEED)
        rows = result.data["rows"]
        # More budget does not meaningfully hurt the achieved II (different
        # budgets can change individual tie-breaking decisions, so allow a
        # small tolerance).
        assert rows[6.0]["sum_ii"] <= rows[1.0]["sum_ii"] * 1.05 + 2

    def test_ports_ablation(self):
        result = run_ablation_ports(port_counts=((1, 1), (4, 2)), n_loops=8, seed=SEED)
        rows = result.data["rows"]
        assert rows[(4, 2)]["sum_ii"] <= rows[(1, 1)]["sum_ii"]

    def test_prefetch_ablation(self):
        result = run_ablation_prefetch(n_loops=8, seed=SEED)
        rows = result.data["rows"]
        assert rows[True]["stall"] <= rows[False]["stall"] + 1e-6
