"""Unit tests for the synthetic memory address streams."""

import numpy as np

from repro.workloads import build_kernel, loop_address_streams
from repro.workloads.traces import array_base_addresses
from repro.ddg.operations import OpType


class TestAddressStreams:
    def test_one_stream_per_memory_op(self):
        loop = build_kernel("daxpy")
        streams = loop_address_streams(loop)
        assert len(streams) == loop.n_memory_ops

    def test_unit_stride_progression(self):
        loop = build_kernel("vadd")
        stream = loop_address_streams(loop)[0]
        assert stream.address(1) - stream.address(0) == 8
        addrs = stream.addresses(16)
        assert np.all(np.diff(addrs) == 8)

    def test_different_arrays_do_not_overlap(self):
        loop = build_kernel("vadd")
        bases = array_base_addresses(loop)
        values = sorted(bases.values())
        assert len(values) == len(set(values))
        assert min(b - a for a, b in zip(values, values[1:])) >= 1 << 20

    def test_same_array_same_base(self):
        loop = build_kernel("hydro_fragment")
        streams = {s.node_id: s for s in loop_address_streams(loop)}
        z_streams = [
            streams[op.node_id]
            for op in loop.graph.memory_operations()
            if op.mem_ref and op.mem_ref.array == "z"
        ]
        assert len(z_streams) == 2
        # Same base region, different starting offsets (z[i+10] vs z[i+11]).
        assert abs(z_streams[0].address(0) - z_streams[1].address(0)) == 8

    def test_footprint_wraps(self):
        loop = build_kernel("vadd")
        stream = loop_address_streams(loop)[0]
        far = stream.address(10**7)
        assert stream.base <= far < stream.base + stream.footprint + abs(stream.stride)

    def test_spill_ops_get_scratch_addresses(self):
        from repro.ddg.loop import Loop

        loop = build_kernel("daxpy")
        spill = loop.graph.add_node(OpType.LOAD, is_spill=True)
        consumer = loop.graph.compute_operations()[0].node_id
        loop.graph.add_edge(spill, consumer)
        streams = loop_address_streams(loop)
        spill_stream = [s for s in streams if s.node_id == spill][0]
        assert spill_stream.stride == 0
        # Scratch region is separate from every named array.
        for other in streams:
            if other.node_id != spill:
                assert abs(other.base - spill_stream.base) >= 1 << 19

    def test_addresses_are_deterministic(self):
        loop = build_kernel("daxpy")
        first = loop_address_streams(loop)
        second = loop_address_streams(loop)
        for a, b in zip(first, second):
            assert a.address(5) == b.address(5)
            assert a.base == b.base and a.stride == b.stride
