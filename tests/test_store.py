"""Tests for the SQLite run database (repro.store).

Covers the durable state layer under ``repro serve --db``: schema and
journal mode, the jobs and runs tables, filtered queries, the
live-run converter, envelope round trips, and -- the concurrency
contract -- two independent *processes* writing one file at once.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import serialize
from repro.store import (
    DB_SCHEMA_VERSION,
    RunDatabase,
    RunRow,
    rows_from_runs,
    run_row_from_dict,
    run_row_to_dict,
)


def _row(key: str, **overrides) -> RunRow:
    defaults = dict(
        run_key=key,
        loop_name=f"loop_{key}",
        config_name="4C16S16",
        policy="mirs_hc",
        core="array",
        version="0.0",
        status="ok",
        ii=10,
        mii=8,
        spills=1,
        scheduling_time_s=0.25,
        digest=f"digest-{key}",
        job_id="job-aaaaaaaaaaaaaaaa",
        created_at=1000.0,
    )
    defaults.update(overrides)
    return RunRow(**defaults)


@pytest.fixture()
def db(tmp_path):
    database = RunDatabase(tmp_path / "runs.sqlite")
    yield database
    database.close()


class TestConnectionSetup:
    def test_wal_mode_and_busy_timeout(self, db):
        assert db.journal_mode == "wal"
        assert db.busy_timeout_s == pytest.approx(5.0)

    def test_database_file_is_shareable(self, tmp_path, db):
        # A second connection (the `repro report` reader) opens the same
        # file while the first stays live.
        with RunDatabase(tmp_path / "runs.sqlite") as reader:
            assert reader.stats()["n_runs"] == 0

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "future.sqlite"
        with RunDatabase(path) as database:
            database._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'db_schema'",
                (str(DB_SCHEMA_VERSION + 1),),
            )
            database._conn.commit()
        with pytest.raises(ValueError, match="understands <="):
            RunDatabase(path)


class TestJobsTable:
    def test_upsert_and_read_back(self, db):
        db.upsert_job({
            "job_id": "job-ab12", "job_key": "ab12ff", "kind": "schedule",
            "client": "alice", "params": "{}", "state": "queued",
            "submitted_at": 1.0,
        })
        row = db.job("job-ab12")
        assert row["state"] == "queued" and row["client"] == "alice"
        assert db.job("job-nope") is None

    def test_update_job_fields(self, db):
        db.upsert_job({
            "job_id": "job-1", "job_key": "k", "kind": "evaluate",
            "client": "anonymous", "params": "{}", "state": "queued",
            "submitted_at": 1.0,
        })
        db.update_job("job-1", state="done", result='{"x": 1}',
                      runs_digest="d" * 64)
        row = db.job("job-1")
        assert row["state"] == "done"
        assert row["runs_digest"] == "d" * 64

    def test_unknown_columns_rejected(self, db):
        with pytest.raises(ValueError, match="unknown jobs columns"):
            db.upsert_job({"job_id": "job-1", "explode": True})
        with pytest.raises(ValueError, match="unknown jobs columns"):
            db.update_job("job-1", explode=True)

    def test_job_by_key_returns_latest_submission(self, db):
        for index, job_id in enumerate(("job-k", "job-k.2")):
            db.upsert_job({
                "job_id": job_id, "job_key": "samekey", "kind": "schedule",
                "client": "anonymous", "params": "{}", "state": "done",
                "submitted_at": float(index),
            })
        assert db.job_by_key("samekey")["job_id"] == "job-k.2"
        assert db.job_by_key("unseen") is None

    def test_pending_jobs_in_submission_order(self, db):
        for index, (job_id, state) in enumerate((
            ("job-a", "done"), ("job-b", "running"),
            ("job-c", "queued"), ("job-d", "cancelled"),
        )):
            db.upsert_job({
                "job_id": job_id, "job_key": job_id, "kind": "schedule",
                "client": "anonymous", "params": "{}", "state": state,
                "submitted_at": float(index),
            })
        pending = [row["job_id"] for row in db.pending_jobs()]
        assert pending == ["job-b", "job-c"]
        assert [row["job_id"] for row in db.jobs()] == [
            "job-a", "job-b", "job-c", "job-d",
        ]


class TestRunsTable:
    def test_add_runs_is_idempotent_on_run_key(self, db):
        assert db.add_runs([_row("k1"), _row("k2")]) == 2
        # Re-evaluating identical work refreshes rows, never duplicates.
        assert db.add_runs([_row("k1", ii=9)]) == 1
        rows = db.query_runs()
        assert len(rows) == 2
        assert {row.run_key: row.ii for row in rows} == {"k1": 9, "k2": 10}

    def test_round_trips_through_sqlite(self, db):
        original = _row("k1", tier="small", seed=7)
        db.add_runs([original])
        assert db.query_runs() == [original]

    def test_query_filters(self, db):
        db.add_runs([
            _row("k1", config_name="4C16S16", policy="mirs_hc",
                 loop_name="daxpy_u4", created_at=100.0, tier="tiny"),
            _row("k2", config_name="S64", policy="mirs_hc",
                 loop_name="fir_filter", created_at=200.0, tier="small"),
            _row("k3", config_name="S64", policy="non_iterative",
                 loop_name="vadd", created_at=300.0, tier=None),
        ])
        assert [r.run_key for r in db.query_runs(configs=("S64",))] == ["k2", "k3"]
        assert [r.run_key for r in db.query_runs(policies=("mirs_hc",))] == [
            "k1", "k2",
        ]
        assert [r.run_key for r in db.query_runs(tiers=("tiny",))] == ["k1"]
        assert [r.run_key for r in db.query_runs(loop="fir")] == ["k2"]
        assert [r.run_key for r in db.query_runs(since=200.0)] == ["k2", "k3"]
        assert [r.run_key for r in db.query_runs(until=200.0)] == ["k1"]
        assert [r.run_key for r in db.query_runs(limit=2)] == ["k1", "k2"]
        assert db.query_runs(configs=("S64",), policies=("non_iterative",)) == [
            db.query_runs(loop="vadd")[0]
        ]

    def test_stats(self, db):
        db.add_runs([_row("k1")])
        db.upsert_job({
            "job_id": "job-1", "job_key": "k", "kind": "schedule",
            "client": "anonymous", "params": "{}", "state": "done",
            "submitted_at": 1.0,
        })
        stats = db.stats()
        assert stats["n_runs"] == 1 and stats["n_jobs"] == 1
        assert stats["jobs_by_state"] == {"done": 1}
        assert stats["journal_mode"] == "wal"


class TestRunRowEnvelope:
    def test_dict_round_trip(self):
        row = _row("k1", tier="small", seed=7)
        assert run_row_from_dict(run_row_to_dict(row)) == row

    def test_serialize_envelope_round_trip(self):
        row = _row("k1")
        envelope = serialize.to_dict(row)
        assert envelope["type"] == "run_row"
        serialize.validate(envelope, expect_type="run_row")
        assert serialize.from_dict(envelope) == row

    def test_optional_fields_default(self):
        row = run_row_from_dict({
            "run_key": "k", "loop_name": "l", "config_name": "c",
            "policy": "p", "core": "array", "status": "ok",
        })
        assert row.ii is None and row.spills == 0 and row.job_id is None


class TestRowsFromRuns:
    def test_rows_match_the_cache_identity(self):
        from repro.eval.cache import schedule_key
        from repro.eval.metrics import LoopRun
        from repro.session import Session
        from repro.workloads.kernels import build_kernel

        session = Session()
        try:
            loop = build_kernel("daxpy")
            result = session.schedule_kernel(loop, "S64")
            rf = session.resolve_rf("S64")
            rows = rows_from_runs(
                [LoopRun(loop=loop, result=result)],
                rf=rf, machine=session.machine,
                policy=session.policy, core=session.core,
                budget_ratio=session.budget_ratio,
                job_id="job-x", tier="tiny", created_at=42.0,
            )
        finally:
            session.close()
        (row,) = rows
        assert row.run_key == schedule_key(
            loop, rf, session.machine, budget_ratio=session.budget_ratio,
            scheduler=session.policy, core=session.core,
        )
        assert row.status == "ok" and row.ii >= row.mii >= 1
        assert row.digest and row.job_id == "job-x"
        assert row.created_at == 42.0


_WRITER_SCRIPT = textwrap.dedent("""
    import sys
    from repro.store import RunDatabase, RunRow

    path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
    db = RunDatabase(path, busy_timeout_s=20.0)
    for index in range(count):
        db.upsert_job({
            "job_id": f"job-{tag}-{index}", "job_key": f"{tag}-{index}",
            "kind": "schedule", "client": tag, "params": "{}",
            "state": "queued", "submitted_at": float(index),
        })
        db.add_runs([RunRow(
            run_key=f"{tag}-{index}", loop_name=f"loop_{index}",
            config_name="S64", policy="mirs_hc", core="array",
            version="0", status="ok", ii=10, mii=8, created_at=float(index),
        )])
    db.close()
""")


class TestTwoProcessContention:
    def test_concurrent_writers_share_one_file(self, tmp_path):
        """Two processes hammering one database must not lose writes.

        WAL plus the busy timeout is the contract: writers briefly queue
        behind each other instead of failing with 'database is locked'.
        """
        path = tmp_path / "contended.sqlite"
        RunDatabase(path).close()  # create tables up front
        count = 40
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT,
                 str(path), tag, str(count)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for tag in ("alpha", "beta")
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        with RunDatabase(path) as db:
            stats = db.stats()
            assert stats["n_jobs"] == 2 * count
            assert stats["n_runs"] == 2 * count
