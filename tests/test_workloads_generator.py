"""Unit tests for the random loop generator and the suite builder."""

import numpy as np
import pytest

from repro.ddg import OpType, compute_mii
from repro.ddg.analysis import heights, recurrence_components
from repro.machine import MachineConfig, RFConfig, ResourceModel
from repro.workloads import (
    PROFILES,
    GeneratorProfile,
    generate_loop,
    perfect_club_like_suite,
    tiny_suite,
)
from repro.workloads.suite import DEFAULT_PROFILE_MIX


@pytest.fixture
def machine():
    return MachineConfig()


@pytest.fixture
def resources(machine):
    return ResourceModel(machine, RFConfig.parse("S128"))


class TestGenerator:
    def test_deterministic_in_seed(self):
        a = generate_loop(np.random.default_rng(5), PROFILES["balanced"], 0)
        b = generate_loop(np.random.default_rng(5), PROFILES["balanced"], 0)
        assert len(a.graph) == len(b.graph)
        assert a.graph.n_edges() == b.graph.n_edges()
        assert [op.op for op in a.graph.nodes()] == [op.op for op in b.graph.nodes()]

    def test_op_count_within_profile_range(self):
        rng = np.random.default_rng(0)
        profile = PROFILES["memory_bound"]
        for i in range(20):
            loop = generate_loop(rng, profile, i)
            non_pseudo = sum(1 for op in loop.graph.nodes() if not op.op.is_pseudo)
            # Stores/loads rounding and consumer fixes may add a couple of nodes.
            assert profile.n_ops[0] - 2 <= non_pseudo <= profile.n_ops[1] + 4

    def test_loads_have_consumers(self):
        rng = np.random.default_rng(1)
        for i in range(20):
            loop = generate_loop(rng, PROFILES["balanced"], i)
            for op in loop.graph.memory_operations():
                if op.op is OpType.LOAD:
                    assert loop.graph.successors(op.node_id)

    def test_no_zero_distance_cycles(self, machine):
        rng = np.random.default_rng(2)
        for name, profile in PROFILES.items():
            for i in range(10):
                loop = generate_loop(rng, profile, i)
                heights(loop.graph, machine.latency)  # raises on a malformed graph

    def test_recurrence_profile_produces_recurrences(self):
        rng = np.random.default_rng(3)
        with_recurrence = 0
        for i in range(20):
            loop = generate_loop(rng, PROFILES["recurrence_bound"], i)
            if recurrence_components(loop.graph):
                with_recurrence += 1
        assert with_recurrence >= 15

    def test_memory_profile_is_memory_heavy(self):
        rng = np.random.default_rng(4)
        loop = generate_loop(rng, PROFILES["memory_bound"], 0)
        counts = loop.graph.count_ops()
        assert counts["memory"] >= counts["compute"] * 0.7

    def test_custom_profile(self):
        profile = GeneratorProfile(name="tiny", n_ops=(4, 6), mem_fraction=0.5)
        loop = generate_loop(np.random.default_rng(0), profile, 0)
        assert len(loop.graph) <= 10

    def test_attributes_record_profile(self):
        loop = generate_loop(np.random.default_rng(0), PROFILES["large"], 7)
        assert loop.attributes["profile"] == "large"
        assert loop.source == "generated"


class TestSuite:
    def test_size_and_determinism(self):
        a = perfect_club_like_suite(40, seed=9)
        b = perfect_club_like_suite(40, seed=9)
        assert len(a) == 40
        assert [l.name for l in a] == [l.name for l in b]

    def test_prefix_stability(self):
        small = perfect_club_like_suite(40, seed=9)
        large = perfect_club_like_suite(60, seed=9)
        assert [l.name for l in small] == [l.name for l in large[:40]]

    def test_kernels_included_by_default(self):
        suite = perfect_club_like_suite(80, seed=1)
        names = {l.name for l in suite}
        assert "daxpy" in names and "hydro_fragment" in names
        assert any(name.endswith("_x4") for name in names)  # unrolled variants

    def test_kernels_can_be_excluded(self):
        suite = perfect_club_like_suite(20, seed=1, include_kernels=False)
        assert all(l.source == "generated" for l in suite)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            perfect_club_like_suite(0)

    def test_profile_mix_must_be_positive(self):
        with pytest.raises(ValueError):
            perfect_club_like_suite(10, profile_mix={"balanced": 0.0})

    def test_tiny_suite(self):
        assert 1 <= len(tiny_suite()) <= 16

    def test_bound_distribution_matches_paper_shape(self, machine, resources):
        """On the baseline machine, about half the loops are memory bound.

        This is the property the paper's Table 1 relies on (50.9 % memory,
        29.1 % recurrence, 20 % FU bound); the synthetic suite is tuned to
        reproduce that shape within a loose tolerance.
        """
        suite = perfect_club_like_suite(160, seed=2003)
        counts = {"mem": 0, "rec": 0, "fu": 0, "com": 0}
        for loop in suite:
            counts[compute_mii(loop.graph, resources, machine.latency).bound] += 1
        total = len(suite)
        assert 0.35 <= counts["mem"] / total <= 0.70
        assert 0.12 <= counts["rec"] / total <= 0.45
        assert 0.05 <= counts["fu"] / total <= 0.35

    def test_mix_weights_sum_to_one(self):
        assert abs(sum(DEFAULT_PROFILE_MIX.values()) - 1.0) < 1e-9
