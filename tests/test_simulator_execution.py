"""Tests for binding prefetching and the stall-cycle simulation."""

import pytest

from repro.core import MirsHC
from repro.ddg import OpType
from repro.hwmodel import derive_hardware, scaled_machine
from repro.machine import baseline_machine, config_by_name
from repro.simulator import (
    CacheConfig,
    PrefetchPolicy,
    classify_loads,
    simulate_loop_execution,
)
from repro.simulator.prefetch import apply_binding_prefetch
from repro.workloads import build_kernel


def cache_for(config_name):
    machine = baseline_machine()
    spec = derive_hardware(machine, config_by_name(config_name))
    return CacheConfig(
        hit_latency=spec.mem_hit_latency,
        miss_latency=spec.miss_latency_cycles(machine.miss_latency_ns),
    )


class TestPrefetchClassification:
    def test_streaming_loads_prefetched(self):
        loop = build_kernel("daxpy", trip_count=1000)
        selected = classify_loads(loop)
        loads = [op.node_id for op in loop.graph.memory_operations() if op.op is OpType.LOAD]
        assert set(selected) == set(loads)

    def test_recurrence_loads_not_prefetched(self):
        loop = build_kernel("tridiagonal", trip_count=1000)
        # tridiagonal's loads feed the recurrence computation but are not
        # themselves in the cycle, so they may be prefetched; build a loop
        # where the load is in the recurrence instead.
        from repro.workloads import LoopBuilder

        b = LoopBuilder("rec_load")
        x = b.load("x")
        s = b.add(x, x)
        st = b.store("x", s)
        b.memory_order(st, x, distance=1)   # store feeds next iteration's load
        b.carried(s, s, distance=1)
        loop = b.build(trip_count=1000)
        selected = classify_loads(loop)
        assert x not in selected

    def test_short_loops_not_prefetched(self):
        loop = build_kernel("daxpy", trip_count=8)
        assert classify_loads(loop) == set()

    def test_disabled_policy(self):
        loop = build_kernel("daxpy", trip_count=1000)
        assert classify_loads(loop, PrefetchPolicy(enabled=False)) == set()

    def test_spill_loads_not_prefetched(self):
        loop = build_kernel("daxpy", trip_count=1000)
        spill = loop.graph.add_node(OpType.LOAD, is_spill=True)
        consumer = loop.graph.compute_operations()[0].node_id
        loop.graph.add_edge(spill, consumer)
        assert spill not in classify_loads(loop)

    def test_apply_override(self):
        loop = build_kernel("daxpy", trip_count=1000)
        selected = classify_loads(loop)
        apply_binding_prefetch(loop.graph, selected, 25)
        for node_id in selected:
            assert loop.graph.node(node_id).latency_override == 25


class TestExecutionSimulation:
    def _schedule(self, loop, config_name, prefetch=False):
        rf = config_by_name(config_name)
        machine, spec = scaled_machine(baseline_machine(), rf)
        if prefetch:
            cache = cache_for(config_name)
            apply_binding_prefetch(loop.graph, classify_loads(loop), cache.miss_latency)
        return MirsHC(machine, rf).schedule_loop(loop), spec

    def test_useful_cycles_follow_formula(self):
        loop = build_kernel("daxpy", trip_count=500)
        result, _ = self._schedule(loop, "S64")
        stats = simulate_loop_execution(loop, result, cache_for("S64"))
        expected = result.ii * (loop.total_iterations + (result.stage_count - 1) * loop.times_entered)
        assert stats.useful_cycles == pytest.approx(expected)

    def test_streaming_loop_without_prefetch_stalls(self):
        loop = build_kernel("vadd", trip_count=2000)
        result, _ = self._schedule(loop, "S64", prefetch=False)
        stats = simulate_loop_execution(loop, result, cache_for("S64"))
        assert stats.stall_cycles > 0
        assert stats.n_misses > 0

    def test_prefetch_removes_most_stalls(self):
        plain = build_kernel("vadd", trip_count=2000)
        result_plain, _ = self._schedule(plain, "1C32S64", prefetch=False)
        stats_plain = simulate_loop_execution(plain, result_plain, cache_for("1C32S64"))

        prefetched = build_kernel("vadd", trip_count=2000)
        result_pf, _ = self._schedule(prefetched, "1C32S64", prefetch=True)
        stats_pf = simulate_loop_execution(prefetched, result_pf, cache_for("1C32S64"))
        assert stats_pf.stall_cycles < stats_plain.stall_cycles

    def test_cache_resident_loop_has_negligible_stalls(self):
        # A loop that re-reads the same few locations every iteration hits
        # in the cache after the first touch, so stalls are negligible.
        from repro.workloads import LoopBuilder

        b = LoopBuilder("resident")
        x = b.load("x", stride=0, footprint=64)
        y = b.add(x, x)
        b.store("y", y, stride=0, footprint=64)
        loop = b.build(trip_count=4000)
        result, _ = self._schedule(loop, "S64")
        stats = simulate_loop_execution(loop, result, cache_for("S64"))
        assert stats.stall_cycles / stats.useful_cycles < 0.05
        assert stats.n_hits > stats.n_misses

    def test_failed_schedule_yields_no_stall(self):
        from repro.core.result import ScheduleResult
        from repro.ddg.analysis import MIIBreakdown

        loop = build_kernel("daxpy")
        bogus = ScheduleResult(
            loop_name=loop.name, config_name="S64", success=False, ii=4, mii=4,
            mii_breakdown=MIIBreakdown(1, 1, 0, 1, 1), stage_count=1,
        )
        stats = simulate_loop_execution(loop, bogus, cache_for("S64"))
        assert stats.stall_cycles == 0.0

    def test_stats_properties(self):
        loop = build_kernel("daxpy", trip_count=300)
        result, _ = self._schedule(loop, "S64")
        stats = simulate_loop_execution(loop, result, cache_for("S64"))
        assert stats.total_cycles == stats.useful_cycles + stats.stall_cycles
        assert 0.0 <= stats.miss_ratio <= 1.0
