"""Docs-drift gate: documentation must match the shipped CLI and tree.

Three invariants, enforced in tier-1 so stale docs fail CI:

1. Every ``repro <verb>`` mentioned in the documentation names a real
   sub-command of :func:`repro.cli.build_parser` (including nested verbs
   such as ``submit schedule`` and ``bench run``).
2. Every ``--flag`` mentioned in the documentation is accepted by some
   ``repro`` sub-command (or is a known pytest conftest flag).
3. Every intra-repo markdown link and every back-ticked repository path
   resolves to an existing file or directory (generated artifacts under
   ``benchmarks/output/`` are exempt).

The scanned set is README.md, EXPERIMENTS.md and every file under
docs/ — the user-facing surface.  Prose that merely *names* the package
(``from repro import ...``) is excluded by the import-line filter.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent

#: Flags defined by tests/conftest.py (pytest options), not by the CLI.
PYTEST_FLAGS = {"--runslow", "--runfuzz"}

#: Path prefixes that are generated at run time and need not exist.
GENERATED_PREFIXES = ("benchmarks/output/",)


def doc_files():
    files = [REPO / "README.md", REPO / "EXPERIMENTS.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


DOC_FILES = doc_files()
DOC_IDS = [str(f.relative_to(REPO)) for f in DOC_FILES]


def cli_inventory():
    """Walk the argparse tree: (verbs incl. nested, long option strings)."""

    def walk(parser, prefix):
        verbs, flags = set(), set()
        for action in parser._actions:
            flags.update(o for o in action.option_strings if o.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                for name, sub in action.choices.items():
                    verb = f"{prefix} {name}".strip()
                    verbs.add(verb)
                    sub_verbs, sub_flags = walk(sub, verb)
                    verbs.update(sub_verbs)
                    flags.update(sub_flags)
        return verbs, flags

    return walk(build_parser(), "")


VERBS, FLAGS = cli_inventory()

_IMPORT_LINE = re.compile(r"\bimport\b")
_VERB_MENTION = re.compile(r"\brepro ([a-z][a-z-]+)")
_FLAG_MENTION = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_TICKED_PATH = re.compile(
    r"`((?:src|docs|examples|tests|benchmarks|\.github)/[A-Za-z0-9_./-]*"
    r"|[A-Za-z0-9_-]+\.md)`"
)


def _doc_lines(path):
    for n, line in enumerate(path.read_text().splitlines(), start=1):
        yield n, line


@pytest.mark.parametrize("doc", DOC_FILES, ids=DOC_IDS)
def test_documented_verbs_exist(doc):
    stale = []
    for n, line in _doc_lines(doc):
        if _IMPORT_LINE.search(line):
            continue  # `from repro import ...` is the package, not the CLI
        for match in _VERB_MENTION.finditer(line):
            if match.group(1) not in VERBS:
                stale.append(f"{doc.name}:{n}: repro {match.group(1)}")
    assert not stale, (
        "documented sub-commands missing from repro.cli.build_parser(): "
        + ", ".join(stale)
    )


@pytest.mark.parametrize("doc", DOC_FILES, ids=DOC_IDS)
def test_documented_flags_exist(doc):
    stale = []
    for n, line in _doc_lines(doc):
        for match in _FLAG_MENTION.finditer(line):
            flag = match.group(1)
            if flag not in FLAGS and flag not in PYTEST_FLAGS:
                stale.append(f"{doc.name}:{n}: {flag}")
    assert not stale, (
        "documented flags not accepted by any repro sub-command: "
        + ", ".join(stale)
    )


def _resolves(doc, target):
    target = target.split("#", 1)[0]
    if not target:
        return True  # pure #anchor link
    if target.startswith(GENERATED_PREFIXES):
        return True
    return (doc.parent / target).exists() or (REPO / target).exists()


@pytest.mark.parametrize("doc", DOC_FILES, ids=DOC_IDS)
def test_markdown_links_resolve(doc):
    broken = []
    for n, line in _doc_lines(doc):
        for match in _MD_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not _resolves(doc, target):
                broken.append(f"{doc.name}:{n}: ({target})")
    assert not broken, "broken intra-repo markdown links: " + ", ".join(broken)


@pytest.mark.parametrize("doc", DOC_FILES, ids=DOC_IDS)
def test_ticked_paths_resolve(doc):
    broken = []
    for n, line in _doc_lines(doc):
        for match in _TICKED_PATH.finditer(line):
            if not _resolves(doc, match.group(1)):
                broken.append(f"{doc.name}:{n}: `{match.group(1)}`")
    assert not broken, "back-ticked paths that do not exist: " + ", ".join(broken)


def test_docs_index_links_every_doc_file():
    """docs/README.md is the index: it must link every sibling doc."""
    index = REPO / "docs" / "README.md"
    assert index.exists(), "docs/README.md index is missing"
    text = index.read_text()
    linked = {match.group(1).split("#", 1)[0] for match in _MD_LINK.finditer(text)}
    missing = [
        sibling.name
        for sibling in sorted((REPO / "docs").glob("*.md"))
        if sibling.name != "README.md" and sibling.name not in linked
    ]
    assert not missing, "docs/README.md does not link: " + ", ".join(missing)


def test_docs_index_cross_links_top_level():
    text = (REPO / "docs" / "README.md").read_text()
    linked = {match.group(1).split("#", 1)[0] for match in _MD_LINK.finditer(text)}
    for expected in ("../README.md", "../EXPERIMENTS.md", "../ROADMAP.md"):
        assert expected in linked, f"docs/README.md must link {expected}"
