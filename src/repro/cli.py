"""Command-line interface.

Four sub-commands cover the common workflows::

    python -m repro.cli schedule daxpy 4C16S16 --code --registers
    python -m repro.cli evaluate 4C16S16 S64 --loops 32 --jobs 4
    python -m repro.cli reproduce table6 --loops 48 --jobs 0 --cache .repro-cache
    python -m repro.cli fuzz --seeds 200 --budget 120s --corpus tests/corpus

* ``schedule`` schedules one named kernel on one configuration and prints
  the kernel table (optionally the register allocation and the emitted
  software-pipelined code);
* ``evaluate`` compares configurations on a workbench (area, clock,
  cycles, execution time);
* ``reproduce`` regenerates one of the paper's tables/figures (or ``all``);
* ``fuzz`` hunts for scheduler/codegen/allocation bugs by differentially
  executing randomized loops on preset or randomly sampled
  configurations (failures are shrunk and frozen as corpus cases;
  ``--replay FILE`` re-runs one such case).

Every sub-command takes ``--jobs N`` to schedule loops over N worker
processes (``--jobs 0`` = one per CPU) and ``--cache DIR`` to persist
scheduling results on disk, so re-runs -- and tables that share
(loop, configuration) pairs -- skip the scheduler entirely.

``schedule`` and ``evaluate`` additionally take ``--policy BUNDLE`` to
run the engine with a different policy bundle (``reproduce
ablation_policies`` compares all of them), and ``fuzz`` takes
``--policies BUNDLE... | all`` to spread the differential oracle over
several bundles.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro import api
from repro.core.allocation import allocate_registers
from repro.core.codegen import generate_code
from repro.core.policy import bundle_names
from repro.eval import experiments
from repro.eval.cache import EvalCache
from repro.hwmodel.timing import scaled_machine
from repro.machine.presets import baseline_machine, config_by_name
from repro.workloads.kernels import kernel_names

__all__ = ["main", "build_parser"]

#: Mapping of ``reproduce`` targets to experiment drivers.
EXPERIMENT_DRIVERS: Dict[str, Callable[..., "experiments.ExperimentResult"]] = {
    "figure1": experiments.run_figure1,
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "table4": experiments.run_table4,
    "table5": experiments.run_table5,
    "table6": experiments.run_table6,
    "figure4": experiments.run_figure4,
    "figure6": experiments.run_figure6,
    "ablation_policies": experiments.run_ablation_policies,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical clustered register files for VLIW processors "
        "(IPDPS 2003 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flags(
        command: argparse.ArgumentParser, *, policy: bool = True
    ) -> None:
        command.add_argument(
            "--jobs", type=_nonnegative_int, default=1, metavar="N",
            help="schedule loops over N worker processes (0 = one per CPU; "
                 "default: 1, serial)",
        )
        command.add_argument(
            "--cache", default=None, metavar="DIR",
            help="cache scheduling results in DIR so identical "
                 "(loop, configuration) pairs are never re-scheduled "
                 "(default: no cache)",
        )
        if policy:
            command.add_argument(
                "--policy", default="mirs_hc", choices=bundle_names(),
                metavar="BUNDLE",
                help="policy bundle driving the scheduling engine "
                     f"(default: mirs_hc; known: {', '.join(bundle_names())})",
            )

    schedule = sub.add_parser("schedule", help="schedule one kernel on one configuration")
    schedule.add_argument("kernel", choices=sorted(kernel_names()))
    schedule.add_argument("config", help="register-file configuration, e.g. 4C16S16")
    schedule.add_argument("--budget-ratio", type=float, default=6.0)
    schedule.add_argument("--registers", action="store_true",
                          help="also print the wrap-around register allocation")
    schedule.add_argument("--code", action="store_true",
                          help="also print the software-pipelined code")
    add_engine_flags(schedule)

    evaluate = sub.add_parser("evaluate", help="compare configurations on a workbench")
    evaluate.add_argument("configs", nargs="+", help="configuration names")
    evaluate.add_argument("--loops", type=int, default=32)
    evaluate.add_argument("--seed", type=int, default=2003)
    evaluate.add_argument("--reference", default="S64")
    add_engine_flags(evaluate)

    reproduce = sub.add_parser(
        "reproduce",
        help="regenerate a table/figure of the paper (or the policy ablation)",
    )
    reproduce.add_argument("target", choices=sorted(EXPERIMENT_DRIVERS) + ["all"])
    reproduce.add_argument("--loops", type=int, default=48)
    reproduce.add_argument("--seed", type=int, default=2003)
    # No --policy: the paper's tables are defined for the MIRS_HC bundle;
    # 'reproduce ablation_policies' compares every registered bundle.
    add_engine_flags(reproduce, policy=False)

    fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the scheduling pipeline "
             "(schedule -> validate -> emit -> execute vs. reference)",
    )
    fuzz.add_argument("--seeds", type=int, default=100, metavar="N",
                      help="number of fuzz cases (default: 100)")
    fuzz.add_argument("--base-seed", type=int, default=2003,
                      help="seed of the first case; case k uses base+k")
    fuzz.add_argument("--configs", nargs="+", default=None, metavar="CFG",
                      help="preset configurations to rotate through "
                           "(default: S128 S64 4C16S16)")
    fuzz.add_argument("--profiles", nargs="+", default=None, metavar="PROF",
                      help="generator profiles to draw loops from "
                           "(default: all profiles)")
    fuzz.add_argument("--policies", nargs="+", default=None, metavar="BUNDLE",
                      choices=bundle_names() + ["all"],
                      help="policy bundles to draw schedulers from; the "
                           "special value 'all' covers every registered "
                           "bundle (default: mirs_hc only)")
    fuzz.add_argument("--sample-configs", action="store_true",
                      help="sample a random machine/register-file pair per "
                           "case instead of rotating through --configs")
    fuzz.add_argument("--budget", type=_duration, default=None, metavar="TIME",
                      help="wall-clock budget, e.g. 60s or 5m "
                           "(the run stops early once exceeded)")
    fuzz.add_argument("--budget-ratio", type=float, default=6.0,
                      help="scheduler backtracking budget per node")
    fuzz.add_argument("--iterations", type=int, default=None, metavar="N",
                      help="iterations to execute differentially "
                           "(default: pipeline depth + a small window)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="write minimized failing cases into DIR "
                           "(e.g. tests/corpus)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="freeze failures as-is instead of minimizing them")
    fuzz.add_argument("--replay", default=None, metavar="FILE",
                      help="replay one corpus case file and exit")

    return parser


def _duration(text: str) -> float:
    """argparse type for --budget: seconds, accepting 60, 60s, 5m, 1h."""
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith(("s", "m", "h")):
        scale = {"s": 1.0, "m": 60.0, "h": 3600.0}[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid duration {text!r} (expected e.g. 60, 60s or 5m)"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(f"duration must be positive, got {text!r}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for --jobs: a non-negative worker count."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per CPU), got {value}"
        )
    return value


def _cache_from_args(args: argparse.Namespace) -> Optional[EvalCache]:
    """Build the on-disk result cache requested by ``--cache DIR`` (if any)."""
    if not args.cache:
        return None
    try:
        return EvalCache(args.cache)
    except OSError as exc:
        raise SystemExit(f"error: --cache {args.cache}: {exc}")


def _cmd_schedule(args: argparse.Namespace) -> int:
    result = api.schedule_kernel(
        args.kernel, args.config, budget_ratio=args.budget_ratio,
        policy=args.policy, jobs=args.jobs, cache=_cache_from_args(args),
    )
    print(result.summary())
    print(result.kernel_table())
    if not result.success:
        return 1
    rf = config_by_name(args.config)
    machine, _ = scaled_machine(baseline_machine(), rf)
    if args.registers or args.code:
        allocation = allocate_registers(result, machine, rf)
        if args.registers:
            print()
            print(allocation.describe())
        if args.code:
            print()
            print(generate_code(result, allocation=allocation).render())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    comparison = api.compare_configurations(
        args.configs, n_loops=args.loops, seed=args.seed, reference=args.reference,
        policy=args.policy, jobs=args.jobs, cache=_cache_from_args(args),
    )
    print(comparison["table"].render())
    print()
    print("ranking (fastest first):", ", ".join(comparison["ranking"]))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    targets = sorted(EXPERIMENT_DRIVERS) if args.target == "all" else [args.target]
    # One cache for the whole invocation: with ``reproduce all`` the
    # tables share many (loop, configuration) pairs, so later drivers
    # start warm even without --cache DIR.  (EvalCache.__bool__ makes an
    # empty cache truthy, but the None check stays explicit.)
    cache = _cache_from_args(args)
    if cache is None:
        cache = EvalCache()
    for target in targets:
        driver = EXPERIMENT_DRIVERS[target]
        result = driver(n_loops=args.loops, seed=args.seed,
                        jobs=args.jobs, cache=cache)
        print()
        print(result.render())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify.corpus import load_case
    from repro.verify.fuzz import DEFAULT_FUZZ_CONFIGS, fuzz_schedules, run_pipeline

    if args.replay:
        case = load_case(args.replay)
        outcome = run_pipeline(
            case.loop, case.rf, case.machine,
            budget_ratio=case.budget_ratio,
            scale_to_clock=case.scale_to_clock,
            n_iterations=case.n_iterations,
            reproducer=f"python -m repro.cli fuzz --replay {args.replay}",
            policy=case.policy,
        )
        print(f"{args.replay}: {outcome.status} (expected {case.expect})")
        if outcome.message:
            print(outcome.message)
        return 0 if outcome.status == case.expect else 1

    policies = args.policies
    if policies and "all" in policies:
        policies = bundle_names()
    report = fuzz_schedules(
        args.seeds,
        base_seed=args.base_seed,
        configs=args.configs or DEFAULT_FUZZ_CONFIGS,
        profiles=args.profiles,
        policies=policies,
        sample_configs=args.sample_configs,
        budget_ratio=args.budget_ratio,
        time_budget_s=args.budget,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        n_iterations=args.iterations,
        progress=print,
    )
    print(report.render())
    if report.failures:
        print()
        for failure in report.failures:
            print(f"--- {failure.status}: seed {failure.seed} "
                  f"({failure.profile} on {failure.config_name})")
            print(failure.message)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
