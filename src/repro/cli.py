"""Command-line interface.

Eleven sub-commands cover the common workflows::

    python -m repro.cli schedule daxpy 4C16S16 --code --registers
    python -m repro.cli evaluate 4C16S16 S64 --tier full --jobs 0 \\
        --checkpoint .repro-checkpoint
    python -m repro.cli explore --budget 32 --seed 7 --tier small \\
        --algo evolve --db runs.sqlite
    python -m repro.cli reproduce table6 --loops 48 --jobs 0 --cache .repro-cache
    python -m repro.cli fuzz --seeds 200 --budget 120s --corpus tests/corpus
    python -m repro.cli serve --port 8734 --jobs 0 --cache .repro-cache \\
        --db runs.sqlite
    python -m repro.cli serve --coordinator --checkpoint .repro-fleet
    python -m repro.cli worker --url http://127.0.0.1:8734 --jobs 0
    python -m repro.cli submit schedule daxpy 4C16S16
    python -m repro.cli report --db runs.sqlite --html report.html
    python -m repro.cli schema --out repro-schema.json
    python -m repro.cli bench run --tier small --out BENCH_workbench.json

* ``schedule`` schedules one named kernel on one configuration and prints
  the kernel table (optionally the register allocation, the emitted
  software-pipelined code, or the serialized JSON result);
* ``evaluate`` compares configurations on a workbench (area, clock,
  cycles, execution time);
* ``explore`` runs a budgeted Pareto search over the register-file
  design space (seeded ``random`` or ``evolve`` with successive-halving
  promotion) and prints the non-dominated (area, execution-time)
  frontier plus its content digest; with ``--db`` every probe persists
  and ``--resume`` replays a run with zero re-evaluations;
* ``reproduce`` regenerates one of the paper's tables/figures (or ``all``);
* ``fuzz`` hunts for scheduler/codegen/allocation bugs by differentially
  executing randomized loops on preset or randomly sampled
  configurations (failures are shrunk and frozen as corpus cases;
  ``--replay FILE`` re-runs one such case);
* ``serve`` runs the batch scheduling service: one long-lived
  :class:`~repro.session.Session` (warm cache, warm worker pool) behind
  a small HTTP API (see :mod:`repro.service`); with ``--coordinator``
  it also hands evaluate jobs out to a fleet of pull-based workers as
  content-addressed shard leases;
* ``worker`` runs one fleet worker against a coordinator: pull a shard
  lease, schedule its loops locally, post the result envelope back;
* ``submit`` sends one job to a running ``serve`` instance, polls it to
  completion and prints the JSON result envelope;
* ``report`` queries a ``serve --db`` run table (filter by
  configuration, policy, tier, loop name, time range), prints the
  paper-style aggregate table, and optionally renders the
  self-contained HTML report and/or the notebook CSV;
* ``schema`` writes the machine-readable serialization schema that wire
  results validate against;
* ``bench`` runs the workbench benchmark (``bench run`` writes the
  ``BENCH_workbench.json`` trajectory record) and gates fresh records
  against committed baselines (``bench compare``).

Every scheduling sub-command builds a :class:`repro.session.Session`
from its flags: ``--jobs N`` (worker processes; ``0`` = one per CPU),
``--cache DIR`` (persist scheduling results on disk), and -- where it
makes sense -- ``--policy BUNDLE`` (``reproduce ablation_policies``
compares all of them; ``fuzz`` takes ``--policies BUNDLE... | all``).
Workbench-sized commands additionally take ``--tier`` (the stratified
workbench registry; ``--loops`` beyond the tier size is an error) and
``--checkpoint DIR`` / ``--resume`` / ``--shard-size N`` (persist every
completed evaluation shard so an interrupted run resumes where it
stopped).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.core.allocation import allocate_registers
from repro.core.codegen import generate_code
from repro.core.policy import bundle_names
from repro.eval import experiments
from repro.eval.cache import EvalCache
from repro.eval.shards import DEFAULT_SHARD_SIZE, ResultStore
from repro.hwmodel.timing import scaled_machine
from repro.machine.presets import baseline_machine, config_by_name
from repro.session import Session
from repro.workloads.kernels import kernel_names
from repro.workloads.suite import WorkbenchSizeError, tier_names

__all__ = ["main", "build_parser"]

#: Mapping of ``reproduce`` targets to experiment drivers.
EXPERIMENT_DRIVERS: Dict[str, Callable[..., "experiments.ExperimentResult"]] = {
    "figure1": experiments.run_figure1,
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "table4": experiments.run_table4,
    "table5": experiments.run_table5,
    "table6": experiments.run_table6,
    "figure4": experiments.run_figure4,
    "figure6": experiments.run_figure6,
    "ablation_policies": experiments.run_ablation_policies,
}

DEFAULT_SERVICE_PORT = 8734


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical clustered register files for VLIW processors "
        "(IPDPS 2003 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flags(
        command: argparse.ArgumentParser, *, policy: bool = True
    ) -> None:
        command.add_argument(
            "--jobs", type=_nonnegative_int, default=1, metavar="N",
            help="schedule loops over N worker processes (0 = one per CPU; "
                 "default: 1, serial)",
        )
        command.add_argument(
            "--cache", default=None, metavar="DIR",
            help="cache scheduling results in DIR so identical "
                 "(loop, configuration) pairs are never re-scheduled "
                 "(default: no cache)",
        )
        command.add_argument(
            "--core", default="array", choices=("object", "array"),
            help="scheduler-core backend: the bitmask/flat-array core "
                 "(array, default) or the reference dict-of-objects core "
                 "(object); both produce bit-identical schedules",
        )
        if policy:
            command.add_argument(
                "--policy", default="mirs_hc", choices=bundle_names(),
                metavar="BUNDLE",
                help="policy bundle driving the scheduling engine "
                     f"(default: mirs_hc; known: {', '.join(bundle_names())})",
            )

    def add_checkpoint_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--checkpoint", default=None, metavar="DIR",
            help="persist every completed evaluation shard in DIR; a "
                 "re-run with the same DIR restores completed shards "
                 "instead of re-scheduling them (default: no checkpoint)",
        )
        command.add_argument(
            "--resume", action="store_true",
            help="require that --checkpoint DIR already holds shards to "
                 "resume from (guards against resuming into an empty or "
                 "mistyped directory)",
        )
        command.add_argument(
            "--shard-size", type=_positive_int, default=DEFAULT_SHARD_SIZE,
            metavar="N",
            help=f"loops per checkpoint shard (default: {DEFAULT_SHARD_SIZE})",
        )

    schedule = sub.add_parser("schedule", help="schedule one kernel on one configuration")
    schedule.add_argument("kernel", choices=sorted(kernel_names()))
    schedule.add_argument("config", help="register-file configuration, e.g. 4C16S16")
    schedule.add_argument("--budget-ratio", type=float, default=6.0)
    schedule.add_argument("--registers", action="store_true",
                          help="also print the wrap-around register allocation")
    schedule.add_argument("--code", action="store_true",
                          help="also print the software-pipelined code")
    schedule.add_argument("--json", action="store_true",
                          help="print the serialized JSON result envelope "
                               "instead of the human-readable tables")
    add_engine_flags(schedule)

    evaluate = sub.add_parser("evaluate", help="compare configurations on a workbench")
    evaluate.add_argument("configs", nargs="+", help="configuration names")
    evaluate.add_argument(
        "--loops", type=int, default=None,
        help="workbench size (default: 32, or the whole tier when --tier "
             "is given explicitly)",
    )
    evaluate.add_argument("--seed", type=int, default=2003)
    evaluate.add_argument(
        "--tier", default=None, choices=tier_names(),
        help="workbench tier the loops are drawn from (default: standard); "
             "naming a tier without --loops evaluates the whole tier, and "
             "--loops beyond the tier size is an error, not a truncation",
    )
    evaluate.add_argument("--reference", default="S64")
    add_engine_flags(evaluate)
    add_checkpoint_flags(evaluate)

    reproduce = sub.add_parser(
        "reproduce",
        help="regenerate a table/figure of the paper (or the policy ablation)",
    )
    reproduce.add_argument("target", choices=sorted(EXPERIMENT_DRIVERS) + ["all"])
    reproduce.add_argument("--loops", type=int, default=48)
    reproduce.add_argument("--seed", type=int, default=2003)
    # No --policy: the paper's tables are defined for the MIRS_HC bundle;
    # 'reproduce ablation_policies' compares every registered bundle.
    add_engine_flags(reproduce, policy=False)
    add_checkpoint_flags(reproduce)

    fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the scheduling pipeline "
             "(schedule -> validate -> emit -> execute vs. reference)",
    )
    fuzz.add_argument("--seeds", type=int, default=100, metavar="N",
                      help="number of fuzz cases (default: 100)")
    fuzz.add_argument("--base-seed", type=int, default=2003,
                      help="seed of the first case; case k uses base+k")
    fuzz.add_argument("--configs", nargs="+", default=None, metavar="CFG",
                      help="preset configurations to rotate through "
                           "(default: S128 S64 4C16S16)")
    fuzz.add_argument("--profiles", nargs="+", default=None, metavar="PROF",
                      help="generator profiles to draw loops from "
                           "(default: all profiles)")
    fuzz.add_argument("--policies", nargs="+", default=None, metavar="BUNDLE",
                      choices=bundle_names() + ["all"],
                      help="policy bundles to draw schedulers from; the "
                           "special value 'all' covers every registered "
                           "bundle (default: mirs_hc only)")
    fuzz.add_argument("--sample-configs", action="store_true",
                      help="sample a random machine/register-file pair per "
                           "case instead of rotating through --configs")
    fuzz.add_argument("--budget", type=_duration, default=None, metavar="TIME",
                      help="wall-clock budget, e.g. 60s or 5m "
                           "(the run stops early once exceeded)")
    fuzz.add_argument("--budget-ratio", type=float, default=6.0,
                      help="scheduler backtracking budget per node")
    fuzz.add_argument("--iterations", type=int, default=None, metavar="N",
                      help="iterations to execute differentially "
                           "(default: pipeline depth + a small window)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="write minimized failing cases into DIR "
                           "(e.g. tests/corpus)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="freeze failures as-is instead of minimizing them")
    fuzz.add_argument("--replay", default=None, metavar="FILE",
                      help="replay one corpus case file and exit")
    fuzz.add_argument("--core", default="array", choices=("object", "array"),
                      help="scheduler-core backend to fuzz (default: array)")

    serve = sub.add_parser(
        "serve",
        help="run the batch scheduling service (one warm session, "
             "many clients) behind a small HTTP API",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                       help=f"TCP port (default: {DEFAULT_SERVICE_PORT}; "
                            f"0 = pick a free one)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.add_argument(
        "--coordinator", action="store_true",
        help="also act as a fleet coordinator: evaluate jobs are planned "
             "into shards and handed out as leases to workers that "
             "connect with 'repro worker --url' (completed shards are "
             "persisted through --checkpoint DIR, or a temporary store)",
    )
    serve.add_argument(
        "--lease-timeout", type=_duration, default=60.0, metavar="TIME",
        help="fleet lease timeout (default: 60s); a worker silent for "
             "this long loses its shard to the next puller",
    )
    serve.add_argument(
        "--db", default=None, metavar="PATH",
        help="durable service state: a SQLite run database at PATH "
             "(jobs survive restarts, finished runs land in a queryable "
             "run table, and 'repro report' renders from it); "
             "default: in-memory only",
    )
    serve.add_argument(
        "--quota", type=_positive_int, default=None, metavar="N",
        help="per-client queued-job quota (submissions past it answer "
             "HTTP 429; default: unlimited)",
    )
    add_engine_flags(serve)
    add_checkpoint_flags(serve)

    worker = sub.add_parser(
        "worker",
        help="run one fleet worker against a 'repro serve --coordinator' "
             "instance: pull shard leases, schedule them locally, post "
             "the results back",
    )
    worker.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_SERVICE_PORT}",
                        metavar="URL", help="coordinator base URL")
    worker.add_argument("--name", default=None,
                        help="worker name shown in GET /v2/workers "
                             "(default: the coordinator-assigned id)")
    worker.add_argument("--jobs", type=_nonnegative_int, default=1, metavar="N",
                        help="local worker processes per shard "
                             "(0 = one per CPU; default: 1, serial)")
    worker.add_argument("--cache", default=None, metavar="DIR",
                        help="local scheduling-result cache (same as the "
                             "other sub-commands' --cache)")
    worker.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="idle lease-poll interval in seconds "
                             "(default: 0.5, backed off while idle)")
    worker.add_argument("--max-leases", type=_positive_int, default=None,
                        metavar="N",
                        help="exit after completing N leases "
                             "(default: run until killed)")
    worker.add_argument("--idle-exit", type=_duration, default=None,
                        metavar="TIME",
                        help="exit after this long without any work "
                             "(default: keep polling forever)")

    submit = sub.add_parser(
        "submit",
        help="submit one job to a running 'repro serve', poll it to "
             "completion and print the JSON result envelope",
    )
    submit.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_SERVICE_PORT}",
                        metavar="URL", help="service base URL")
    submit.add_argument("--timeout", type=_duration, default=300.0, metavar="TIME",
                        help="give up after this long (default: 300s)")
    submit.add_argument("--poll", type=float, default=0.25, metavar="S",
                        help="poll interval in seconds (default: 0.25)")
    submit.add_argument("--validate", action="store_true",
                        help="validate the result envelope against the "
                             "service's serialization schema")
    submit.add_argument("--client", default=None, metavar="NAME",
                        help="client name for the service's fairness/quota "
                             "accounting (default: anonymous)")
    submit_kind = submit.add_subparsers(dest="kind", required=True)
    submit_schedule = submit_kind.add_parser(
        "schedule", help="schedule one kernel on one configuration")
    submit_schedule.add_argument("kernel", choices=sorted(kernel_names()))
    submit_schedule.add_argument("config")
    submit_schedule.add_argument("--policy", default=None, choices=bundle_names())
    submit_schedule.add_argument("--param", action="append", default=[],
                                 metavar="KEY=VALUE",
                                 help="kernel parameter, e.g. --param taps=8")
    submit_evaluate = submit_kind.add_parser(
        "evaluate", help="evaluate a workbench on one configuration")
    submit_evaluate.add_argument("config")
    submit_evaluate.add_argument(
        "--loops", type=int, default=None,
        help="workbench size (default: 16, or the whole tier when --tier "
             "is given)",
    )
    submit_evaluate.add_argument("--seed", type=int, default=2003)
    submit_evaluate.add_argument("--tier", default=None, choices=tier_names(),
                                 help="workbench tier to draw the loops from "
                                      "(without --loops: the whole tier)")
    submit_evaluate.add_argument("--policy", default=None, choices=bundle_names())

    report = sub.add_parser(
        "report",
        help="query a 'serve --db' run table and render the paper-style "
             "report (stdout table, optional self-contained HTML and CSV)",
    )
    report.add_argument("--db", required=True, metavar="PATH",
                        help="the SQLite run database written by "
                             "'repro serve --db PATH'")
    report.add_argument("--config", action="append", default=[], metavar="CFG",
                        help="only runs on this configuration (repeatable)")
    report.add_argument("--policy", action="append", default=[],
                        metavar="BUNDLE",
                        help="only runs under this policy bundle (repeatable)")
    report.add_argument("--tier", action="append", default=[], metavar="TIER",
                        help="only runs from this workbench tier (repeatable)")
    report.add_argument("--loop", default=None, metavar="SUBSTR",
                        help="only runs whose loop name contains SUBSTR")
    report.add_argument("--since", type=float, default=None, metavar="TS",
                        help="only runs created at/after this UNIX timestamp")
    report.add_argument("--until", type=float, default=None, metavar="TS",
                        help="only runs created before this UNIX timestamp")
    report.add_argument("--limit", type=_positive_int, default=None,
                        metavar="N", help="at most N run rows (oldest first)")
    report.add_argument("--html", default=None, metavar="FILE",
                        help="write the self-contained HTML report to FILE")
    report.add_argument("--csv", default=None, metavar="FILE",
                        help="write the raw run table as CSV to FILE")

    explore = sub.add_parser(
        "explore",
        help="search the register-file design space for the Pareto "
             "frontier of (RF area, execution time)",
    )
    explore.add_argument(
        "--budget", type=_positive_int, default=16, metavar="N",
        help="total number of design-point measurements, cheap probes "
             "included (default: 16)",
    )
    explore.add_argument(
        "--seed", type=int, default=0,
        help="search seed; the probe trace and the final frontier digest "
             "are pure functions of it (default: 0)",
    )
    explore.add_argument(
        "--tier", default="small", choices=tier_names(),
        help="workbench tier frontier candidates are evaluated on "
             "(default: small)",
    )
    explore.add_argument(
        "--loops", type=int, default=None, metavar="N",
        help="evaluate candidates on only the tier's first N loops "
             "(default: the whole tier)",
    )
    explore.add_argument(
        "--algo", default="random", choices=("random", "evolve"),
        help="search strategy: seeded uniform sampling (random, default) "
             "or mutate/crossover with successive-halving promotion "
             "(evolve)",
    )
    explore.add_argument(
        "--probe-tier", default="tiny", choices=tier_names(),
        help="cheap tier 'evolve' probes candidates on before promotion "
             "(default: tiny)",
    )
    explore.add_argument(
        "--db", default=None, metavar="PATH",
        help="persist every completed probe in this SQLite run database; "
             "a rerun over the same PATH restores completed probes "
             "instead of re-evaluating them (default: no store)",
    )
    explore.add_argument(
        "--resume", action="store_true",
        help="require that --db PATH already holds completed probes to "
             "resume from (guards against resuming into an empty or "
             "mistyped database)",
    )
    explore.add_argument(
        "--json", action="store_true",
        help="print the serialized explore-report envelope instead of "
             "the human-readable frontier table",
    )
    add_engine_flags(explore)

    schema = sub.add_parser(
        "schema",
        help="write the machine-readable serialization schema "
             "(what service results validate against)",
    )
    schema.add_argument("--out", default=None, metavar="FILE",
                        help="write to FILE instead of stdout")

    bench = sub.add_parser(
        "bench",
        help="run or gate the machine-readable performance benchmarks "
             "(the BENCH_*.json trajectory records)",
    )
    bench_kind = bench.add_subparsers(dest="kind", required=True)
    bench_run = bench_kind.add_parser(
        "run",
        help="evaluate a workbench tier cold + resumed and write the "
             "BENCH_workbench.json record",
    )
    bench_run.add_argument("--tier", default="small", choices=tier_names(),
                           help="workbench tier to benchmark (default: small)")
    bench_run.add_argument("--configs", nargs="+", metavar="CFG",
                           default=["S64", "4C16S16"],
                           help="configurations to evaluate "
                                "(default: S64 4C16S16)")
    bench_run.add_argument("--loops", type=int, default=None, metavar="N",
                           help="benchmark only the tier's first N loops")
    bench_run.add_argument("--seed", type=int, default=None)
    bench_run.add_argument("--jobs", type=_nonnegative_int, default=1,
                           metavar="N",
                           help="worker processes (0 = one per CPU)")
    bench_run.add_argument("--shard-size", type=_positive_int,
                           default=DEFAULT_SHARD_SIZE, metavar="N")
    bench_run.add_argument("--checkpoint", default=None, metavar="DIR",
                           help="persist the benchmark's shard stores in DIR "
                                "(a rerun then resumes; default: temporary)")
    bench_run.add_argument("--out", default="BENCH_workbench.json",
                           metavar="FILE",
                           help="record path (default: BENCH_workbench.json)")
    bench_compare = bench_kind.add_parser(
        "compare",
        help="gate a fresh BENCH_*.json record against a committed baseline",
    )
    bench_compare.add_argument("baseline", help="committed baseline record")
    bench_compare.add_argument("fresh", help="freshly generated record")
    bench_compare.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed wall-clock regression as a fraction (default: 0.25); "
             "counter checks (full sweeps, failures, resume identity) are "
             "always exact",
    )

    return parser


def _duration(text: str) -> float:
    """argparse type for durations: seconds, accepting 60, 60s, 5m, 1h."""
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith(("s", "m", "h")):
        scale = {"s": 1.0, "m": 60.0, "h": 3600.0}[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid duration {text!r} (expected e.g. 60, 60s or 5m)"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(f"duration must be positive, got {text!r}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for --jobs: a non-negative worker count."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per CPU), got {value}"
        )
    return value


def _positive_int(text: str) -> int:
    """argparse type for strictly positive counts (e.g. --shard-size)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _cache_from_args(args: argparse.Namespace) -> Optional[EvalCache]:
    """Build the on-disk result cache requested by ``--cache DIR`` (if any)."""
    if not args.cache:
        return None
    try:
        return EvalCache(args.cache)
    except OSError as exc:
        raise SystemExit(f"error: --cache {args.cache}: {exc}")


def _store_from_args(args: argparse.Namespace) -> Optional[ResultStore]:
    """The shard checkpoint store requested by ``--checkpoint DIR`` (if any).

    ``--resume`` additionally requires the store to already hold at least
    one shard envelope: resuming into an empty (freshly created, or
    mistyped) directory is almost certainly not what the caller meant,
    and silently starting cold would discard hours of prior work.
    """
    checkpoint = getattr(args, "checkpoint", None)
    if not checkpoint:
        if getattr(args, "resume", False):
            raise SystemExit("error: --resume requires --checkpoint DIR")
        return None
    # Probed before ResultStore() so a mistyped path is rejected without
    # being mkdir'd into existence (an empty directory left behind would
    # make the typo look like a valid cold checkpoint on the next run).
    if getattr(args, "resume", False) and not ResultStore.has_shards(checkpoint):
        raise SystemExit(
            f"error: --resume: no completed shards found under "
            f"{checkpoint!r} (drop --resume for a cold checkpointed run)"
        )
    try:
        return ResultStore(checkpoint)
    except OSError as exc:
        raise SystemExit(f"error: --checkpoint {checkpoint}: {exc}")


def _session_from_args(
    args: argparse.Namespace, *, budget_ratio: Optional[float] = None
) -> Session:
    """The session one CLI invocation runs on (flags become defaults)."""
    return Session(
        policy=getattr(args, "policy", "mirs_hc"),
        budget_ratio=6.0 if budget_ratio is None else budget_ratio,
        core=getattr(args, "core", "array"),
        jobs=args.jobs,
        cache=_cache_from_args(args),
        checkpoint=_store_from_args(args),
        shard_size=getattr(args, "shard_size", DEFAULT_SHARD_SIZE),
    )


def _cmd_schedule(args: argparse.Namespace) -> int:
    with _session_from_args(args, budget_ratio=args.budget_ratio) as session:
        result = session.schedule_kernel(
            args.kernel, args.config,
            # Forward an explicit parallelism request so the session can
            # warn that it is a no-op for a single loop.
            jobs=args.jobs if args.jobs != 1 else None,
        )
    if args.json:
        from repro import serialize

        print(serialize.dumps(result))
        return 0 if result.success else 1
    print(result.summary())
    print(result.kernel_table())
    if not result.success:
        return 1
    rf = config_by_name(args.config)
    machine, _ = scaled_machine(baseline_machine(), rf)
    if args.registers or args.code:
        allocation = allocate_registers(result, machine, rf)
        if args.registers:
            print()
            print(allocation.describe())
        if args.code:
            print()
            print(generate_code(result, allocation=allocation).render())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.workloads.suite import workbench_tier

    # Naming a tier is asking for that workbench: '--tier full' without
    # --loops means all 1258 loops, not a silent 32-loop subset.  Without
    # an explicit tier the historical 32-loop default applies, validated
    # against the standard tier.
    tier = args.tier or "standard"
    n_loops = args.loops
    if n_loops is None:
        n_loops = workbench_tier(tier).n_loops if args.tier else 32
    with _session_from_args(args) as session:
        try:
            comparison = session.compare_configurations(
                args.configs, n_loops=n_loops, seed=args.seed,
                tier=tier, reference=args.reference,
            )
        except WorkbenchSizeError as exc:
            # --loops beyond the tier must be reported with the sizes
            # that are available, never silently truncated.
            raise SystemExit(f"error: --loops {args.loops}: {exc}")
    print(comparison["table"].render())
    print()
    print("ranking (fastest first):", ", ".join(comparison["ranking"]))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    targets = sorted(EXPERIMENT_DRIVERS) if args.target == "all" else [args.target]
    # One session for the whole invocation: with ``reproduce all`` the
    # tables share many (loop, configuration) pairs, so later drivers
    # start warm even without --cache DIR.
    cache = _cache_from_args(args)
    if cache is None:
        cache = EvalCache()
    with Session(
        jobs=args.jobs, cache=cache, core=getattr(args, "core", "array"),
        checkpoint=_store_from_args(args), shard_size=args.shard_size,
    ) as session:
        for target in targets:
            driver = EXPERIMENT_DRIVERS[target]
            result = driver(n_loops=args.loops, seed=args.seed, session=session)
            print()
            print(result.render())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import DEFAULT_FUZZ_CONFIGS, replay_case

    if args.replay:
        from repro.verify.corpus import load_case

        case = load_case(args.replay)
        outcome = replay_case(
            case,
            reproducer=f"python -m repro.cli fuzz --replay {args.replay}",
            core=args.core,
        )
        print(f"{args.replay}: {outcome.status} (expected {case.expect})")
        if outcome.message:
            print(outcome.message)
        return 0 if outcome.status == case.expect else 1

    policies = args.policies
    if policies and "all" in policies:
        policies = bundle_names()
    session = Session(budget_ratio=args.budget_ratio, core=args.core)
    report = session.fuzz_schedules(
        args.seeds,
        base_seed=args.base_seed,
        configs=args.configs or DEFAULT_FUZZ_CONFIGS,
        profiles=args.profiles,
        policies=policies,
        sample_configs=args.sample_configs,
        budget_ratio=args.budget_ratio,
        time_budget_s=args.budget,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        n_iterations=args.iterations,
        progress=print,
    )
    print(report.render())
    if report.failures:
        print()
        for failure in report.failures:
            print(f"--- {failure.status}: seed {failure.seed} "
                  f"({failure.profile} on {failure.config_name})")
            print(failure.message)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import BatchScheduler, ShardCoordinator, make_server

    session = _session_from_args(args)
    db = None
    if args.db:
        from repro.store import RunDatabase

        db = RunDatabase(args.db)
    coordinator = None
    if args.coordinator:
        # The coordinator persists completed shard envelopes through the
        # same ResultStore the local execution path checkpoints into, so
        # distributed runs resume (and digest-match) like local ones.
        # Without --checkpoint the store is a throwaway directory: the
        # fleet still works, it just starts cold on every restart.
        store = session.checkpoint
        if store is None:
            import tempfile

            store = ResultStore(tempfile.mkdtemp(prefix="repro-fleet-"))
        coordinator = ShardCoordinator(
            store, lease_timeout_s=args.lease_timeout, db=db,
        )
    scheduler = BatchScheduler(
        session, coordinator=coordinator, db=db,
        max_queued_per_client=args.quota,
    )
    server = make_server(scheduler, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    mode = "fleet coordinator" if coordinator is not None else "local"
    print(f"repro service listening on http://{host}:{port} "
          f"(mode={mode}, jobs={args.jobs}, "
          f"cache={args.cache or 'memory-only'}, "
          f"checkpoint={args.checkpoint or 'off'}, "
          f"db={args.db or 'off'}, "
          f"policy={args.policy})", flush=True)
    if scheduler.n_recovered:
        print(f"  recovered {scheduler.n_recovered} unfinished job(s) "
              f"from {args.db}", flush=True)
    if coordinator is not None:
        print(f"  workers connect with: repro worker --url http://{host}:{port}",
              flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.shutdown()
        scheduler.shutdown()
        session.close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from urllib.error import URLError

    from repro.service import run_worker

    cache = _cache_from_args(args)
    print(f"repro worker polling {args.url} "
          f"(jobs={args.jobs}, cache={args.cache or 'memory-only'})",
          file=sys.stderr, flush=True)
    try:
        stats = run_worker(
            args.url,
            name=args.name,
            jobs=args.jobs,
            cache=cache,
            poll_interval=args.poll,
            max_leases=args.max_leases,
            idle_exit_s=args.idle_exit,
            progress=lambda line: print(f"  {line}", file=sys.stderr, flush=True),
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("worker interrupted", file=sys.stderr, flush=True)
        return 0
    except URLError as exc:
        raise SystemExit(f"error: cannot reach coordinator at {args.url}: {exc}")
    print(f"worker {stats.worker_id} exiting: {stats.n_completed} shard(s) "
          f"completed ({stats.n_loops} loops), {stats.n_lost} lease(s) lost, "
          f"{stats.n_errors} error(s)", file=sys.stderr, flush=True)
    return 0 if not stats.n_errors else 1


def _build_submit_request(args: argparse.Namespace) -> Dict[str, object]:
    if args.kind == "schedule":
        kernel_params: Dict[str, object] = {}
        for item in args.param:
            key, sep, raw = item.partition("=")
            if not sep or not key:
                raise SystemExit(f"error: --param expects KEY=VALUE, got {item!r}")
            try:
                value: object = json.loads(raw)
            except json.JSONDecodeError:
                value = raw
            kernel_params[key] = value
        params: Dict[str, object] = {"kernel": args.kernel, "config": args.config}
        if args.policy:
            params["policy"] = args.policy
        if kernel_params:
            params["kernel_params"] = kernel_params
        request: Dict[str, object] = {"kind": "schedule", "params": params}
        if args.client:
            request["client"] = args.client
        return request
    params: Dict[str, object] = {"config": args.config, "seed": args.seed}
    if args.loops is not None:
        params["n_loops"] = args.loops
    if args.tier:
        params["tier"] = args.tier
    if args.policy:
        params["policy"] = args.policy
    request = {"kind": "evaluate", "params": params}
    if args.client:
        request["client"] = args.client
    return request


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro import serialize
    from repro.service import fetch_json, poll_job, submit_job

    request = _build_submit_request(args)
    job_id = submit_job(args.url, request)
    print(f"submitted {request['kind']} job {job_id} to {args.url}",
          file=sys.stderr, flush=True)

    def progress(status: Dict) -> None:
        bar = status.get("progress") or {}
        print(f"  {status['state']}: {bar.get('n_done', 0)}/"
              f"{bar.get('n_total', 0)}", file=sys.stderr, flush=True)

    try:
        status = poll_job(
            args.url, job_id,
            poll_interval=args.poll, timeout=args.timeout, progress=progress,
        )
    except TimeoutError as exc:
        raise SystemExit(f"error: {exc}")
    if status["state"] != "done":
        raise SystemExit(
            f"error: job {job_id} ended {status['state']}"
            + (f": {status['error']}" if status.get("error") else "")
        )
    envelope = status["result"]
    if args.validate:
        serialize.validate(envelope)
        remote = fetch_json(f"{args.url.rstrip('/')}/v2/schema")
        remote_type = remote.get("types", {}).get(envelope["type"])
        if remote_type is None:
            raise SystemExit(
                f"error: the service's schema does not describe "
                f"{envelope['type']!r} (version skew between client and "
                f"server?)"
            )
        required = remote_type["required"]
        lacking = [key for key in required if key not in envelope["data"]]
        if lacking:
            raise SystemExit(
                f"error: result is missing schema-required keys: {lacking}"
            )
        print(f"result validates against schema v{remote['schema']} "
              f"({envelope['type']})", file=sys.stderr, flush=True)
    print(json.dumps(envelope, indent=2, sort_keys=True))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from repro.report import ReportQuery, build_report, render_csv, render_html
    from repro.store import RunDatabase

    if not os.path.exists(args.db):
        raise SystemExit(f"error: no run database at {args.db} "
                         f"(start one with 'repro serve --db {args.db}')")
    query = ReportQuery(
        configs=tuple(args.config),
        policies=tuple(args.policy),
        tiers=tuple(args.tier),
        loop=args.loop,
        since=args.since,
        until=args.until,
        limit=args.limit,
    )
    with RunDatabase(args.db) as db:
        data = build_report(db, query)
    if not data.rows:
        print(f"no runs in {args.db} match the query", file=sys.stderr)
        return 1
    print(f"{data.n_runs} run(s), {data.n_failed} failed "
          f"({len(data.aggregates)} configuration/policy group(s))")
    header = f"{'config':<14} {'policy':<12} {'runs':>5} {'fail':>5} " \
             f"{'sum II':>8} {'sum MII':>8} {'II/MII':>7} {'spills':>7}"
    print(header)
    print("-" * len(header))
    for agg in data.aggregates:
        print(f"{agg.config_name:<14} {agg.policy:<12} {agg.n_runs:>5} "
              f"{agg.n_failed:>5} {agg.sum_ii:>8} {agg.sum_mii:>8} "
              f"{agg.ii_over_mii:>7.3f} {agg.spills:>7}")
    if args.html:
        from pathlib import Path

        path = Path(args.html)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(data))
        print(f"wrote HTML report to {path}")
    if args.csv:
        from pathlib import Path

        path = Path(args.csv)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_csv(data.rows))
        print(f"wrote run-table CSV to {path}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.eval.reporting import Table
    from repro.explore import ExploreSpec, Explorer
    from repro.workloads.suite import workbench_tier

    try:
        workbench_tier(args.tier).check_size(args.loops)
        spec = ExploreSpec(
            algo=args.algo,
            budget=args.budget,
            seed=args.seed,
            tier=args.tier,
            n_loops=args.loops,
            probe_tier=args.probe_tier,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    db = None
    if args.db:
        from repro.store.db import RunDatabase

        db = RunDatabase(args.db)
    if args.resume:
        if db is None:
            raise SystemExit("error: --resume requires --db PATH")
        if not db.probes():
            raise SystemExit(
                f"error: --resume: {args.db} holds no completed probes "
                f"(run once with --db {args.db} first)"
            )

    def on_event(update) -> None:
        verb = "restored" if update.restored else "probed"
        marker = " +frontier" if update.accepted else ""
        print(
            f"explore [{update.n_done}/{update.n_total}] {verb} "
            f"{update.point.config_name} ({update.stage}){marker}",
            file=sys.stderr,
        )

    # 'explore --resume' resumes from the probe store (--db), not from a
    # shard checkpoint; strip the flag so the shared session builder does
    # not mistake it for a '--checkpoint DIR' resume.
    session_args = argparse.Namespace(**{**vars(args), "resume": False})
    try:
        with _session_from_args(session_args) as session:
            explorer = Explorer(
                session=session, spec=spec, db=db, on_event=on_event
            )
            report = explorer.run()
    finally:
        if db is not None:
            db.close()

    if args.json:
        from repro import serialize

        print(serialize.dumps(report))
        return 0
    print(
        f"explored {report.n_probes} design point(s) with --algo {spec.algo} "
        f"on tier '{spec.tier}': {report.n_evaluated} evaluated, "
        f"{report.n_restored} restored from the probe store"
    )
    table = Table(
        ("config", "kind", "area (Ml^2)", "time (ns)", "sum II"),
        title=f"Pareto frontier ({len(report.points)} point(s))",
    )
    for point in report.points:
        table.add_row(
            point.config_name,
            point.kind,
            point.area_mlambda2,
            point.time_ns,
            point.sum_ii,
        )
    print(table.render())
    print(f"frontier digest: {report.digest}")
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    from repro import serialize

    text = json.dumps(serialize.schema(), indent=2, sort_keys=True)
    if args.out:
        from pathlib import Path

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"wrote serialization schema to {path}")
    else:
        print(text)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval import bench as bench_mod

    if args.kind == "run":
        try:
            record = bench_mod.run_workbench_bench(
                tier=args.tier,
                configs=args.configs,
                n_loops=args.loops,
                seed=args.seed,
                jobs=args.jobs,
                shard_size=args.shard_size,
                checkpoint_dir=args.checkpoint,
            )
        except WorkbenchSizeError as exc:
            raise SystemExit(f"error: --loops {args.loops}: {exc}")
        from pathlib import Path

        path = Path(args.out)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        totals = record["totals"]
        print(f"wrote {path} (tier={record['tier']}, "
              f"loops={record['n_loops']}, wall={totals['wall_s']:.2f}s, "
              f"resume_identical={totals['resume_identical']})")
        return 0 if totals["resume_identical"] else 1

    assert args.kind == "compare"
    baseline = bench_mod.load_record(args.baseline)
    fresh = bench_mod.load_record(args.fresh)
    problems, notes = bench_mod.compare_bench(
        baseline, fresh, tolerance=args.tolerance
    )
    for note in notes:
        print(f"note: {note}")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        print(f"{len(problems)} benchmark regression(s) vs {args.baseline}")
        return 1
    print(f"{args.fresh} is within tolerance of {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "schedule": _cmd_schedule,
        "evaluate": _cmd_evaluate,
        "reproduce": _cmd_reproduce,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "report": _cmd_report,
        "explore": _cmd_explore,
        "schema": _cmd_schema,
        "bench": _cmd_bench,
    }
    handler = handlers.get(args.command)
    if handler is None:  # pragma: no cover - argparse guards this
        raise AssertionError(f"unhandled command {args.command}")
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
