"""Versioned JSON serialization for every public result type.

Results used to live and die inside one process: a
:class:`~repro.core.result.ScheduleResult` carried a live dependence
graph, a :class:`~repro.eval.reporting.ConfigurationReport` a list of
live runs, and nothing but pickle could move either across a process or
wire boundary.  This module is the single registry that makes the whole
result surface serializable:

* ``to_dict(obj)`` wraps any registered object in a self-describing
  *envelope* -- ``{"schema": ..., "type": ..., "data": {...}}`` -- and
  ``from_dict(envelope)`` rebuilds the object;
* ``dumps``/``loads`` and ``save``/``load`` add the JSON round trip;
* ``schema()`` returns a machine-readable description of every
  registered type (the artifact the CI service smoke job validates
  against), and ``validate(envelope)`` checks a payload against it.

Registered types: :class:`~repro.machine.config.RFConfig`,
:class:`~repro.machine.config.MachineConfig`,
:class:`~repro.hwmodel.spec.HardwareSpec`,
:class:`~repro.ddg.loop.Loop`, :class:`~repro.core.result.ScheduleResult`,
:class:`~repro.eval.metrics.LoopRun`,
:class:`~repro.eval.reporting.ConfigurationReport`, the shard
checkpoints of :mod:`repro.eval.shards`
(:class:`~repro.eval.shards.ShardResult`), the fleet protocol's wire
types (:class:`~repro.service.wire.ShardLease`,
:class:`~repro.service.wire.LeaseHeartbeat`,
:class:`~repro.service.wire.WorkerStatus`), and the fuzz reproducers
(:class:`~repro.verify.corpus.CorpusCase`,
:class:`~repro.verify.fuzz.FuzzFailure`,
:class:`~repro.verify.fuzz.FuzzReport`), the durable-store types
(:class:`~repro.store.db.RunRow` run-table rows and
:class:`~repro.report.query.ReportQuery` report queries), and the
design-space exploration types (:class:`~repro.explore.ExploreSpec`,
:class:`~repro.explore.FrontierPoint`,
:class:`~repro.explore.ExploreReport`).

The graph/loop/configuration payload shapes are the JSON conventions the
verification corpus established (:mod:`repro.verify.corpus`): a corpus
case written by the fuzzer and a serialized loop embed graphs in exactly
the same node-by-node, edge-by-edge form.  Nothing here pickles:
payloads are plain dicts of JSON scalars, so a schedule produced by one
version replays on any other that understands the schema.

Round-trip contract: ``to_dict(from_dict(to_dict(x))) == to_dict(x)``
(canonical-form equality), and for cache-keyed inputs (loops,
configurations) the :func:`repro.eval.cache.schedule_key` is preserved
exactly -- a result computed for a serialized problem is a cache hit for
the deserialized one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.result import ScheduledOp, ScheduleResult
from repro.ddg.analysis import MIIBreakdown
from repro.ddg.loop import Loop
from repro.ddg.operations import OpType
from repro.eval.metrics import LoopRun
from repro.eval.reporting import ConfigurationReport
from repro.eval.shards import (
    ShardResult,
    shard_result_from_dict,
    shard_result_to_dict,
)
from repro.explore.driver import ExploreReport
from repro.explore.frontier import FrontierPoint
from repro.explore.search import ExploreSpec
from repro.hwmodel.spec import BankEstimate, HardwareSpec
from repro.machine.config import MachineConfig, RFConfig
from repro.report.query import (
    ReportQuery,
    report_query_from_dict,
    report_query_to_dict,
)
from repro.service.wire import (
    LeaseHeartbeat,
    ShardLease,
    WorkerStatus,
    lease_heartbeat_from_dict,
    lease_heartbeat_to_dict,
    shard_lease_from_dict,
    shard_lease_to_dict,
    worker_status_from_dict,
    worker_status_to_dict,
)
from repro.store.db import (
    RunRow,
    run_row_from_dict,
    run_row_to_dict,
)
from repro.verify.corpus import (
    CorpusCase,
    graph_from_json,
    graph_to_json,
    loop_from_json,
    loop_to_json,
)
from repro.verify.fuzz import (
    FuzzFailure,
    FuzzReport,
    fuzz_failure_from_dict,
    fuzz_failure_to_dict,
    fuzz_report_from_dict,
    fuzz_report_to_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "register",
    "registered_types",
    "to_dict",
    "from_dict",
    "dumps",
    "loads",
    "save",
    "load",
    "schema",
    "validate",
    "schedule_result_to_dict",
    "schedule_result_from_dict",
    "loop_run_to_dict",
    "loop_run_from_dict",
    "hardware_spec_to_dict",
    "hardware_spec_from_dict",
    "configuration_report_to_dict",
    "configuration_report_from_dict",
]

#: Bumped whenever an envelope or a registered payload shape changes
#: incompatibly.  ``from_dict`` refuses envelopes from a *newer* schema
#: (it cannot know what they mean) and keeps reading older ones as long
#: as the per-type decoders tolerate their missing keys.
SCHEMA_VERSION: int = 1


class SerializationError(ValueError):
    """A payload does not parse, validate, or name a registered type."""


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _TypeEntry:
    name: str
    cls: type
    encode: Callable[[object], Dict]
    decode: Callable[[Dict], object]
    #: Keys that must be present in ``data`` (the schema the service
    #: smoke job validates results against).
    required: Tuple[str, ...]


_REGISTRY: Dict[str, _TypeEntry] = {}
_BY_CLASS: Dict[type, str] = {}


def register(
    name: str,
    cls: type,
    encode: Callable[[object], Dict],
    decode: Callable[[Dict], object],
    *,
    required: Tuple[str, ...] = (),
) -> None:
    """Register one serializable type under a stable envelope name."""
    if name in _REGISTRY:
        raise ValueError(f"serialization type {name!r} is already registered")
    _REGISTRY[name] = _TypeEntry(name, cls, encode, decode, tuple(required))
    _BY_CLASS[cls] = name


def registered_types() -> List[str]:
    """Every registered envelope type name, sorted."""
    return sorted(_REGISTRY)


def _entry_for(obj: object) -> _TypeEntry:
    name = _BY_CLASS.get(type(obj))
    if name is None:
        raise SerializationError(
            f"cannot serialize {type(obj).__name__!r}: not a registered type "
            f"(known: {', '.join(registered_types())})"
        )
    return _REGISTRY[name]


# --------------------------------------------------------------------------- #
# Envelope API
# --------------------------------------------------------------------------- #
def to_dict(obj: object) -> Dict:
    """Wrap any registered object in a self-describing envelope."""
    import repro

    entry = _entry_for(obj)
    return {
        "schema": SCHEMA_VERSION,
        "generator": f"repro {repro.__version__}",
        "type": entry.name,
        "data": entry.encode(obj),
    }


def validate(payload: object, expect_type: Optional[str] = None) -> _TypeEntry:
    """Check an envelope against the schema; returns the type entry.

    Raises :class:`SerializationError` on a malformed envelope, an
    unknown or unexpected type, a newer schema version, or missing
    required data keys.  This is the check the service clients run on
    every wire result (``repro submit --validate``).
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"envelope must be a dict, got {type(payload).__name__}"
        )
    missing = [key for key in ("schema", "type", "data") if key not in payload]
    if missing:
        raise SerializationError(f"envelope is missing keys: {missing}")
    if not isinstance(payload["schema"], int) or payload["schema"] > SCHEMA_VERSION:
        raise SerializationError(
            f"envelope uses unknown schema {payload['schema']!r} "
            f"(this build understands <= {SCHEMA_VERSION})"
        )
    entry = _REGISTRY.get(payload["type"])
    if entry is None:
        raise SerializationError(
            f"unknown envelope type {payload['type']!r} "
            f"(known: {', '.join(registered_types())})"
        )
    if expect_type is not None and entry.name != expect_type:
        raise SerializationError(
            f"expected an envelope of type {expect_type!r}, got {entry.name!r}"
        )
    data = payload["data"]
    if not isinstance(data, dict):
        raise SerializationError(
            f"envelope data must be a dict, got {type(data).__name__}"
        )
    lacking = [key for key in entry.required if key not in data]
    if lacking:
        raise SerializationError(
            f"{entry.name} data is missing required keys: {lacking}"
        )
    return entry


def from_dict(payload: Dict, expect_type: Optional[str] = None) -> object:
    """Rebuild the object a :func:`to_dict` envelope describes."""
    entry = validate(payload, expect_type=expect_type)
    return entry.decode(payload["data"])


def dumps(obj: object, *, indent: Optional[int] = 2) -> str:
    """Serialize a registered object to a JSON string."""
    return json.dumps(to_dict(obj), indent=indent, sort_keys=True)


def loads(text: Union[str, bytes], expect_type: Optional[str] = None) -> object:
    """Rebuild an object from :func:`dumps` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"payload is not valid JSON: {exc}") from exc
    return from_dict(payload, expect_type=expect_type)


def save(obj: object, path: Union[str, Path]) -> Path:
    """Write one object as a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps(obj) + "\n")
    return path


def load(path: Union[str, Path], expect_type: Optional[str] = None) -> object:
    """Read back an object written by :func:`save`."""
    return loads(Path(path).read_text(), expect_type=expect_type)


def schema() -> Dict:
    """Machine-readable description of every registered envelope type.

    ``repro schema`` writes this to a file; the CI service smoke job
    uploads it as an artifact and validates wire results against it.
    """
    import repro

    return {
        "schema": SCHEMA_VERSION,
        "generator": f"repro {repro.__version__}",
        "envelope": {"required": ["schema", "type", "data"]},
        "types": {
            entry.name: {
                "class": entry.cls.__name__,
                "required": list(entry.required),
            }
            for entry in _REGISTRY.values()
        },
    }


# --------------------------------------------------------------------------- #
# Encoders / decoders
# --------------------------------------------------------------------------- #
def _mii_breakdown_to_dict(breakdown: MIIBreakdown) -> Dict:
    return {
        "res_fu": breakdown.res_fu,
        "res_mem": breakdown.res_mem,
        "res_com": breakdown.res_com,
        "rec": breakdown.rec,
        "mii": breakdown.mii,
    }


def _mii_breakdown_from_dict(payload: Dict) -> MIIBreakdown:
    return MIIBreakdown(
        res_fu=int(payload["res_fu"]),
        res_mem=int(payload["res_mem"]),
        res_com=int(payload["res_com"]),
        rec=int(payload["rec"]),
        mii=int(payload["mii"]),
    )


def schedule_result_to_dict(result: ScheduleResult) -> Dict:
    """The ``data`` payload of a serialized :class:`ScheduleResult`."""
    assignments = [
        {
            "node": placed.node_id,
            "op": placed.op.value,
            "cycle": placed.cycle,
            "cluster": placed.cluster,
        }
        for placed in sorted(
            result.assignments.values(), key=lambda placed: placed.node_id
        )
    ]
    return {
        "loop_name": result.loop_name,
        "config_name": result.config_name,
        "success": result.success,
        "ii": result.ii,
        "mii": result.mii,
        "mii_breakdown": _mii_breakdown_to_dict(result.mii_breakdown),
        "stage_count": result.stage_count,
        "assignments": assignments,
        "graph": graph_to_json(result.graph) if result.graph is not None else None,
        "register_usage": {
            str(bank): usage for bank, usage in sorted(result.register_usage.items())
        },
        "memory_ops_per_iteration": result.memory_ops_per_iteration,
        "n_spill_memory_ops": result.n_spill_memory_ops,
        "n_comm_ops": result.n_comm_ops,
        "scheduling_time_s": result.scheduling_time_s,
        "restarts": result.restarts,
        "bound": result.bound,
        "attempted_iis": list(result.attempted_iis),
        "n_pressure_checks": result.n_pressure_checks,
        "n_full_sweeps": result.n_full_sweeps,
        "policy": result.policy,
    }


def schedule_result_from_dict(payload: Dict) -> ScheduleResult:
    """Rebuild a :class:`ScheduleResult` from its ``data`` payload.

    Node ids in ``assignments`` are remapped through the rebuilt graph's
    id map, so results whose graphs were saved with id gaps (nodes
    removed by ejection cleanup) stay consistent.
    """
    graph = None
    id_map: Dict[int, int] = {}
    if payload.get("graph") is not None:
        graph, id_map = graph_from_json(payload["graph"])
    assignments: Dict[int, ScheduledOp] = {}
    for entry in payload.get("assignments", ()):
        node_id = id_map.get(entry["node"], entry["node"])
        assignments[node_id] = ScheduledOp(
            node_id=node_id,
            op=OpType(entry["op"]),
            cycle=int(entry["cycle"]),
            cluster=entry.get("cluster"),
        )
    return ScheduleResult(
        loop_name=payload["loop_name"],
        config_name=payload["config_name"],
        success=bool(payload["success"]),
        ii=int(payload["ii"]),
        mii=int(payload["mii"]),
        mii_breakdown=_mii_breakdown_from_dict(payload["mii_breakdown"]),
        stage_count=int(payload["stage_count"]),
        assignments=assignments,
        graph=graph,
        register_usage={
            int(bank): int(usage)
            for bank, usage in (payload.get("register_usage") or {}).items()
        },
        memory_ops_per_iteration=int(payload.get("memory_ops_per_iteration", 0)),
        n_spill_memory_ops=int(payload.get("n_spill_memory_ops", 0)),
        n_comm_ops=int(payload.get("n_comm_ops", 0)),
        scheduling_time_s=float(payload.get("scheduling_time_s", 0.0)),
        restarts=int(payload.get("restarts", 0)),
        bound=payload.get("bound", "fu"),
        # Entries are IIs (ints) except a policy's trailing
        # "skipped:..." audit note, which must survive the round trip.
        attempted_iis=[
            ii if isinstance(ii, str) else int(ii)
            for ii in payload.get("attempted_iis", ())
        ],
        n_pressure_checks=int(payload.get("n_pressure_checks", 0)),
        n_full_sweeps=int(payload.get("n_full_sweeps", 0)),
        policy=payload.get("policy", "mirs_hc"),
    )


def _bank_estimate_to_dict(bank: Optional[BankEstimate]) -> Optional[Dict]:
    if bank is None:
        return None
    return {"access_ns": bank.access_ns, "area_mlambda2": bank.area_mlambda2}


def _bank_estimate_from_dict(payload: Optional[Dict]) -> Optional[BankEstimate]:
    if payload is None:
        return None
    return BankEstimate(
        access_ns=float(payload["access_ns"]),
        area_mlambda2=float(payload["area_mlambda2"]),
    )


def hardware_spec_to_dict(spec: HardwareSpec) -> Dict:
    """The ``data`` payload of a serialized :class:`HardwareSpec`."""
    return {
        "config_name": spec.config_name,
        "cluster_bank": _bank_estimate_to_dict(spec.cluster_bank),
        "shared_bank": _bank_estimate_to_dict(spec.shared_bank),
        "logic_depth_fo4": spec.logic_depth_fo4,
        "clock_ns": spec.clock_ns,
        "mem_hit_latency": spec.mem_hit_latency,
        "fu_latency": spec.fu_latency,
        "loadr_latency": spec.loadr_latency,
        "from_published": spec.from_published,
        "n_cluster_banks": spec._n_cluster_banks,
    }


def hardware_spec_from_dict(payload: Dict) -> HardwareSpec:
    """Rebuild a :class:`HardwareSpec` from its ``data`` payload."""
    return HardwareSpec(
        config_name=payload["config_name"],
        cluster_bank=_bank_estimate_from_dict(payload.get("cluster_bank")),
        shared_bank=_bank_estimate_from_dict(payload.get("shared_bank")),
        logic_depth_fo4=int(payload["logic_depth_fo4"]),
        clock_ns=float(payload["clock_ns"]),
        mem_hit_latency=int(payload["mem_hit_latency"]),
        fu_latency=int(payload["fu_latency"]),
        loadr_latency=payload.get("loadr_latency"),
        from_published=bool(payload.get("from_published", True)),
        _n_cluster_banks=int(payload.get("n_cluster_banks", 1)),
    )


def loop_run_to_dict(run: LoopRun) -> Dict:
    """The ``data`` payload of a serialized :class:`LoopRun`."""
    return {
        "loop": loop_to_json(run.loop),
        "result": schedule_result_to_dict(run.result),
        "spec": hardware_spec_to_dict(run.spec) if run.spec is not None else None,
        "stall_cycles": run.stall_cycles,
    }


def loop_run_from_dict(payload: Dict) -> LoopRun:
    """Rebuild a :class:`LoopRun` from its ``data`` payload."""
    spec = payload.get("spec")
    return LoopRun(
        loop=loop_from_json(payload["loop"]),
        result=schedule_result_from_dict(payload["result"]),
        spec=hardware_spec_from_dict(spec) if spec is not None else None,
        stall_cycles=float(payload.get("stall_cycles", 0.0)),
    )


def configuration_report_to_dict(report: ConfigurationReport) -> Dict:
    """The ``data`` payload of a serialized :class:`ConfigurationReport`.

    Derived aggregates (cycles, traffic, time) are included read-only so
    wire consumers need not recompute them; ``from_dict`` rebuilds the
    report from the runs and ignores them.
    """
    return {
        "config": report.config.to_dict(),
        "config_name": report.config.name,
        "spec": hardware_spec_to_dict(report.spec),
        "runs": [loop_run_to_dict(run) for run in report.runs],
        "aggregates": {
            "cycles": report.cycles,
            "memory_traffic": report.memory_traffic,
            "time_ns": report.time_ns,
            "area_mlambda2": report.area_mlambda2,
            "n_failed": report.n_failed,
        },
    }


def configuration_report_from_dict(payload: Dict) -> ConfigurationReport:
    """Rebuild a :class:`ConfigurationReport` from its ``data`` payload."""
    return ConfigurationReport(
        config=RFConfig.from_dict(payload["config"]),
        spec=hardware_spec_from_dict(payload["spec"]),
        runs=[loop_run_from_dict(entry) for entry in payload.get("runs", ())],
    )


# --------------------------------------------------------------------------- #
# Registration
# --------------------------------------------------------------------------- #
register(
    "rf_config", RFConfig,
    lambda rf: rf.to_dict(), RFConfig.from_dict,
    required=("n_clusters", "lp", "sp"),
)
register(
    "machine_config", MachineConfig,
    lambda machine: machine.to_dict(), MachineConfig.from_dict,
    required=("n_fus", "n_mem_ports", "latencies"),
)
register(
    "hardware_spec", HardwareSpec,
    hardware_spec_to_dict, hardware_spec_from_dict,
    required=("config_name", "clock_ns", "mem_hit_latency", "fu_latency"),
)
register(
    "loop", Loop,
    loop_to_json, loop_from_json,
    required=("name", "nodes", "edges"),
)
register(
    "schedule_result", ScheduleResult,
    schedule_result_to_dict, schedule_result_from_dict,
    required=("loop_name", "config_name", "success", "ii", "mii",
              "mii_breakdown", "stage_count"),
)
register(
    "loop_run", LoopRun,
    loop_run_to_dict, loop_run_from_dict,
    required=("loop", "result"),
)
register(
    "configuration_report", ConfigurationReport,
    configuration_report_to_dict, configuration_report_from_dict,
    required=("config", "spec", "runs"),
)
register(
    "shard_result", ShardResult,
    shard_result_to_dict, shard_result_from_dict,
    required=("key", "positions", "runs"),
)
register(
    "shard_lease", ShardLease,
    shard_lease_to_dict, shard_lease_from_dict,
    required=("lease_id", "worker_id", "shard_key", "positions", "loops",
              "config", "machine"),
)
register(
    "lease_heartbeat", LeaseHeartbeat,
    lease_heartbeat_to_dict, lease_heartbeat_from_dict,
    required=("lease_id", "worker_id", "extended"),
)
register(
    "worker_status", WorkerStatus,
    worker_status_to_dict, worker_status_from_dict,
    required=("worker_id", "state"),
)
register(
    "corpus_case", CorpusCase,
    lambda case: case.to_json(), CorpusCase.from_json,
    required=("loop", "expect"),
)
register(
    "fuzz_failure", FuzzFailure,
    fuzz_failure_to_dict, fuzz_failure_from_dict,
    required=("seed", "status", "reproducer"),
)
register(
    "fuzz_report", FuzzReport,
    fuzz_report_to_dict, fuzz_report_from_dict,
    required=("n_cases", "n_ok", "n_unschedulable", "failures"),
)
register(
    "run_row", RunRow,
    run_row_to_dict, run_row_from_dict,
    required=("run_key", "loop_name", "config_name", "policy", "core",
              "status"),
)
register(
    "report_query", ReportQuery,
    report_query_to_dict, report_query_from_dict,
)
register(
    "explore_spec", ExploreSpec,
    ExploreSpec.to_dict, ExploreSpec.from_dict,
    required=("algo", "budget", "seed", "tier"),
)
register(
    "frontier_point", FrontierPoint,
    FrontierPoint.to_dict, FrontierPoint.from_dict,
    required=("config", "config_name", "area_mlambda2", "time_ns"),
)
register(
    "explore_report", ExploreReport,
    ExploreReport.to_dict, ExploreReport.from_dict,
    required=("spec", "points", "digest"),
)
