"""Randomized scheduler/codegen/allocation fuzzing with failure shrinking.

One fuzz *case* is fully determined by its seed: the seed picks a
generator profile, generates a loop, and (optionally) samples a random
machine/register-file pair; the case is then pushed through the whole
pipeline -- schedule, statically validate, allocate registers, emit
code, differentially execute against the scalar reference -- and any
failure is shrunk (operations and dependences are dropped while the
failure still reproduces) and frozen as a JSON corpus case that
``tests/test_corpus.py`` replays forever after.

Determinism contract: a failure report embeds a reproducer command of
the form ``python -m repro.cli fuzz --seeds 1 --base-seed S --profiles P
--configs C`` that regenerates the identical loop and configuration;
profile choice, loop generation and configuration sampling each use an
independent seeded generator so that pinning one of them on the command
line does not perturb the others.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.engine import SchedulerEngine
from repro.core.result import ScheduleResult
from repro.core.validate import ValidationError, validate_schedule
from repro.ddg.loop import Loop
from repro.hwmodel.timing import scaled_machine
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.presets import baseline_machine, config_by_name
from repro.machine.sampler import sample_machine, sample_rf_config
from repro.verify.corpus import CorpusCase, load_case, save_case
from repro.verify.differential import DifferentialReport, differential_check
from repro.workloads.generator import PROFILES, generate_loop

__all__ = [
    "DEFAULT_FUZZ_CONFIGS",
    "PipelineOutcome",
    "FuzzFailure",
    "FuzzReport",
    "format_reproducer",
    "run_pipeline",
    "replay_case",
    "shrink_loop",
    "fuzz_schedules",
    "fuzz_failure_to_dict",
    "fuzz_failure_from_dict",
    "fuzz_report_to_dict",
    "fuzz_report_from_dict",
]

#: The preset rotation fuzzed by default: the monolithic baseline, the
#: small monolithic file, and the paper's flagship hierarchical
#: clustered organization.
DEFAULT_FUZZ_CONFIGS: Tuple[str, ...] = ("S128", "S64", "4C16S16")

# Independent sub-seeds so pinning --profiles / --configs / --policies on
# replay does not change what the other generators draw.
_PROFILE_STREAM = 0x50524F46   # "PROF"
_CONFIG_STREAM = 0x434F4E46    # "CONF"
_POLICY_STREAM = 0x504F4C49    # "POLI"


@dataclass
class PipelineOutcome:
    """What one schedule->validate->emit->execute run observed."""

    #: "ok" | "unschedulable" | "invalid" | "emit-error" | "mismatch"
    status: str
    message: str = ""
    result: Optional[ScheduleResult] = None
    report: Optional[DifferentialReport] = None

    @property
    def is_failure(self) -> bool:
        """True for outcomes that indicate a pipeline *bug*.

        A loop that does not fit a configuration at any II is not a bug
        (``unschedulable``); everything else short of ``ok`` is.
        """
        return self.status in ("invalid", "emit-error", "mismatch")


def format_reproducer(
    seed: int,
    profile: str,
    config_name: str,
    *,
    ii: Optional[int] = None,
    sampled: bool = False,
    budget_ratio: float = 6.0,
    n_iterations: Optional[int] = None,
    policy: str = "mirs_hc",
) -> str:
    """The replay command (and context) embedded in failure messages.

    Every knob that influences the outcome and differs from its default
    is spelled out, so the command regenerates the failure verbatim.
    """
    context = f"seed={seed} profile={profile} config={config_name}"
    if policy != "mirs_hc":
        context += f" policy={policy}"
    if ii is not None:
        context += f" II={ii}"
    command = (
        f"python -m repro.cli fuzz --seeds 1 --base-seed {seed} "
        f"--profiles {profile} "
    )
    command += "--sample-configs" if sampled else f"--configs {config_name}"
    if policy != "mirs_hc":
        command += f" --policies {policy}"
    if budget_ratio != 6.0:
        command += f" --budget-ratio {budget_ratio}"
    if n_iterations is not None:
        command += f" --iterations {n_iterations}"
    return f"[{context}] {command}"


def run_pipeline(
    loop: Loop,
    rf: RFConfig,
    machine: Optional[MachineConfig] = None,
    *,
    budget_ratio: float = 6.0,
    scale_to_clock: bool = True,
    n_iterations: Optional[int] = None,
    reproducer: Optional[str] = None,
    policy: str = "mirs_hc",
    core: str = "array",
) -> PipelineOutcome:
    """Push one loop through the full verification pipeline.

    Returns a :class:`PipelineOutcome` rather than raising, so fuzzing
    and corpus replay can classify every ending uniformly.  ``machine``
    is the *base* datapath (latencies are re-scaled to the
    configuration's clock when ``scale_to_clock`` is set, exactly as the
    evaluation drivers do).  ``policy`` selects the policy bundle the
    engine schedules with, so the differential oracle covers every
    registered bundle, not just MIRS_HC.
    """
    base = machine or baseline_machine()
    if scale_to_clock:
        scaled, _spec = scaled_machine(base, rf)
    else:
        scaled = base
    try:
        result = SchedulerEngine(
            scaled, rf, policy=policy, budget_ratio=budget_ratio, core=core
        ).schedule_loop(loop)
    except Exception:
        return PipelineOutcome(
            status="emit-error",
            message=f"scheduler crashed:\n{traceback.format_exc()}",
        )
    if not result.success:
        return PipelineOutcome(
            status="unschedulable",
            message=f"no schedule up to II={result.ii}",
            result=result,
        )
    try:
        validate_schedule(result, scaled, rf, reproducer=reproducer)
    except ValidationError as exc:
        return PipelineOutcome(status="invalid", message=str(exc), result=result)
    try:
        report = differential_check(
            loop, result, scaled, rf, n_iterations=n_iterations
        )
    except Exception:
        return PipelineOutcome(
            status="emit-error",
            message=f"allocation/codegen/execution crashed:\n{traceback.format_exc()}",
            result=result,
        )
    if not report.ok:
        message = report.describe_failure()
        if reproducer:
            message = f"{message}\n  reproduce: {reproducer}"
        return PipelineOutcome(
            status="mismatch", message=message, result=result, report=report
        )
    return PipelineOutcome(status="ok", result=result, report=report)


def replay_case(
    case: Union[CorpusCase, str, Path],
    *,
    reproducer: Optional[str] = None,
    core: str = "array",
) -> PipelineOutcome:
    """Replay one frozen corpus case through the full pipeline.

    ``case`` is a :class:`~repro.verify.corpus.CorpusCase` or the path of
    one of its JSON files.  The replay runs with the exact knobs the case
    froze (budget ratio, clock scaling, iteration count, policy bundle);
    compare ``outcome.status`` against ``case.expect``.
    """
    if not isinstance(case, CorpusCase):
        path = Path(case)
        reproducer = reproducer or f"python -m repro.cli fuzz --replay {path}"
        case = load_case(path)
    return run_pipeline(
        case.loop, case.rf, case.machine,
        budget_ratio=case.budget_ratio,
        scale_to_clock=case.scale_to_clock,
        n_iterations=case.n_iterations,
        reproducer=reproducer,
        policy=case.policy,
        core=core,
    )


# --------------------------------------------------------------------------- #
# Shrinking
# --------------------------------------------------------------------------- #
def shrink_loop(
    loop: Loop,
    still_fails: Callable[[Loop], bool],
    *,
    max_attempts: int = 150,
    deadline: Optional[float] = None,
) -> Loop:
    """Greedily minimize a failing loop while the failure reproduces.

    Alternates node-removal and edge-removal passes until a fixpoint (or
    the attempt budget runs out).  ``still_fails`` re-runs the pipeline
    on a candidate and must return True when the original failure kind
    is still observed.  ``deadline`` (a ``time.perf_counter`` instant)
    bounds the wall-clock cost: every pipeline re-run can be expensive,
    so the fuzz driver's time budget covers shrinking too.
    """
    current = loop
    attempts = 0
    progressed = True

    def exhausted() -> bool:
        return attempts >= max_attempts or (
            deadline is not None and time.perf_counter() > deadline
        )

    while progressed and not exhausted():
        progressed = False
        for node_id in sorted(current.graph.node_ids(), reverse=True):
            if exhausted():
                break
            if len(current.graph) <= 1:
                break
            candidate = current.copy()
            candidate.graph.remove_node(node_id)
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progressed = True
        for edge in sorted(
            current.graph.edges(), key=lambda e: (e.src, e.dst), reverse=True
        ):
            if exhausted():
                break
            candidate = current.copy()
            candidate.graph.remove_edge(edge.src, edge.dst)
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progressed = True
    return current


# --------------------------------------------------------------------------- #
# The fuzz driver
# --------------------------------------------------------------------------- #
@dataclass
class FuzzFailure:
    """One failing case, after shrinking."""

    seed: int
    profile: str
    config_name: str
    status: str
    message: str
    reproducer: str
    corpus_path: Optional[Path] = None
    policy: str = "mirs_hc"


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    n_cases: int = 0
    n_ok: int = 0
    n_unschedulable: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        line = (
            f"fuzz: {self.n_cases} case(s) in {self.elapsed_s:.1f}s -- "
            f"{self.n_ok} ok, {self.n_unschedulable} unschedulable, "
            f"{len(self.failures)} failure(s)"
        )
        if self.stopped_early:
            line += " (stopped early: time budget)"
        return line

    def render(self) -> str:
        lines = [self.summary()]
        for failure in self.failures:
            lines.append(f"  [{failure.status}] {failure.reproducer}")
            if failure.corpus_path is not None:
                lines.append(f"    minimized case: {failure.corpus_path}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-safe dict of this report (see :mod:`repro.serialize`)."""
        return fuzz_report_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "FuzzReport":
        return fuzz_report_from_dict(payload)


# --------------------------------------------------------------------------- #
# Serialization (payload shapes registered in repro.serialize)
# --------------------------------------------------------------------------- #
def fuzz_failure_to_dict(failure: FuzzFailure) -> Dict:
    """The ``data`` payload of a serialized :class:`FuzzFailure`."""
    return {
        "seed": failure.seed,
        "profile": failure.profile,
        "config_name": failure.config_name,
        "status": failure.status,
        "message": failure.message,
        "reproducer": failure.reproducer,
        "corpus_path": str(failure.corpus_path) if failure.corpus_path else None,
        "policy": failure.policy,
    }


def fuzz_failure_from_dict(payload: Dict) -> FuzzFailure:
    corpus_path = payload.get("corpus_path")
    return FuzzFailure(
        seed=int(payload["seed"]),
        profile=payload.get("profile", ""),
        config_name=payload.get("config_name", ""),
        status=payload["status"],
        message=payload.get("message", ""),
        reproducer=payload["reproducer"],
        corpus_path=Path(corpus_path) if corpus_path else None,
        policy=payload.get("policy", "mirs_hc"),
    )


def fuzz_report_to_dict(report: FuzzReport) -> Dict:
    """The ``data`` payload of a serialized :class:`FuzzReport`."""
    return {
        "n_cases": report.n_cases,
        "n_ok": report.n_ok,
        "n_unschedulable": report.n_unschedulable,
        "failures": [fuzz_failure_to_dict(failure) for failure in report.failures],
        "elapsed_s": report.elapsed_s,
        "stopped_early": report.stopped_early,
    }


def fuzz_report_from_dict(payload: Dict) -> FuzzReport:
    return FuzzReport(
        n_cases=int(payload.get("n_cases", 0)),
        n_ok=int(payload.get("n_ok", 0)),
        n_unschedulable=int(payload.get("n_unschedulable", 0)),
        failures=[
            fuzz_failure_from_dict(entry) for entry in payload.get("failures", ())
        ],
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
        stopped_early=bool(payload.get("stopped_early", False)),
    )


def _case_loop(seed: int, profile: str) -> Loop:
    rng = np.random.default_rng(seed)
    return generate_loop(
        rng, PROFILES[profile], index=0, name=f"fuzz{seed}_{profile}"
    )


def _case_profile(seed: int, profiles: Sequence[str]) -> str:
    rng = np.random.default_rng((seed, _PROFILE_STREAM))
    return profiles[int(rng.integers(0, len(profiles)))]


def _case_policy(seed: int, policies: Sequence[str]) -> str:
    rng = np.random.default_rng((seed, _POLICY_STREAM))
    return policies[int(rng.integers(0, len(policies)))]


def _case_config(
    seed: int,
    index: int,
    configs: Sequence[str],
    sample_configs: bool,
    base: MachineConfig,
) -> Tuple[RFConfig, MachineConfig, str, bool]:
    if sample_configs:
        rng = np.random.default_rng((seed, _CONFIG_STREAM))
        machine = sample_machine(rng)
        rf = sample_rf_config(rng, machine)
        return rf, machine, rf.name, True
    name = configs[index % len(configs)]
    return config_by_name(name), base, name, False


def fuzz_schedules(
    n_seeds: int = 100,
    *,
    base_seed: int = 2003,
    configs: Sequence[str] = DEFAULT_FUZZ_CONFIGS,
    profiles: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    sample_configs: bool = False,
    machine: Optional[MachineConfig] = None,
    budget_ratio: float = 6.0,
    core: str = "array",
    time_budget_s: Optional[float] = None,
    corpus_dir: Optional[Union[str, Path]] = None,
    shrink: bool = True,
    max_shrink_attempts: int = 120,
    n_iterations: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Hunt for scheduler/codegen/allocation bugs with randomized cases.

    Case ``k`` uses seed ``base_seed + k``; the seed alone determines the
    loop (via a generator profile), the policy bundle (drawn from
    ``policies``; default: only ``mirs_hc``) and, with
    ``sample_configs``, the random machine/register-file pair --
    otherwise the case rotates through the ``configs`` presets.  Every
    failure is shrunk (when ``shrink``) and written into ``corpus_dir``
    as a JSON case the test suite replays.  ``time_budget_s`` bounds the
    wall-clock time: the run stops early (reported, not an error) once
    exceeded.

    Pass ``policies=repro.core.bundle_names()`` (CLI:
    ``--policies all``) to spread the differential oracle over every
    registered policy bundle.
    """
    profile_names = list(profiles) if profiles else sorted(PROFILES)
    # Validate bundle names up front: a typo'd --policies value must fail
    # loudly here, not be misclassified as a scheduler crash on every
    # case (and pollute the corpus with bogus "failures").
    from repro.core.policy import resolve_bundle

    policy_names = [
        resolve_bundle(name).name for name in (policies or ["mirs_hc"])
    ]
    base = machine or baseline_machine()
    report = FuzzReport()
    started = time.perf_counter()
    deadline = started + time_budget_s if time_budget_s is not None else None

    for index in range(n_seeds):
        if time_budget_s is not None and time.perf_counter() - started > time_budget_s:
            report.stopped_early = True
            break
        seed = base_seed + index
        profile = _case_profile(seed, profile_names)
        policy = _case_policy(seed, policy_names)
        rf, case_machine, config_name, sampled = _case_config(
            seed, index, configs, sample_configs, base
        )
        loop = _case_loop(seed, profile)
        reproducer = format_reproducer(
            seed, profile, config_name, sampled=sampled,
            budget_ratio=budget_ratio, n_iterations=n_iterations,
            policy=policy,
        )
        outcome = run_pipeline(
            loop, rf, case_machine,
            budget_ratio=budget_ratio,
            n_iterations=n_iterations,
            reproducer=reproducer,
            policy=policy,
            core=core,
        )
        report.n_cases += 1
        if outcome.status == "ok":
            report.n_ok += 1
            continue
        if outcome.status == "unschedulable":
            report.n_unschedulable += 1
            continue

        # ---- a real failure: shrink it and freeze a corpus case ------- #
        ii = outcome.result.ii if outcome.result is not None else None
        reproducer = format_reproducer(
            seed, profile, config_name, ii=ii, sampled=sampled,
            budget_ratio=budget_ratio, n_iterations=n_iterations,
            policy=policy,
        )
        if progress:
            progress(f"failure ({outcome.status}): {reproducer}")
        minimized = loop
        if shrink:
            failure_kind = outcome.status

            def still_fails(candidate: Loop) -> bool:
                probe = run_pipeline(
                    candidate, rf, case_machine,
                    budget_ratio=budget_ratio,
                    n_iterations=n_iterations,
                    policy=policy,
                    core=core,
                )
                return probe.status == failure_kind

            minimized = shrink_loop(
                loop, still_fails, max_attempts=max_shrink_attempts,
                deadline=deadline,
            )
            if progress and len(minimized.graph) < len(loop.graph):
                progress(
                    f"  shrunk {len(loop.graph)} -> {len(minimized.graph)} nodes"
                )
        corpus_path: Optional[Path] = None
        if corpus_dir is not None:
            case = CorpusCase(
                loop=minimized,
                rf=rf,
                machine=case_machine,
                expect="ok",
                description=(
                    f"fuzz failure ({outcome.status}) found with seed {seed}, "
                    f"profile {profile}, config {config_name}; minimized by "
                    f"the shrinker.  Expected behaviour after the fix: the "
                    f"full pipeline passes."
                ),
                origin={
                    "seed": seed,
                    "profile": profile,
                    "config": config_name,
                    "sampled_config": sampled,
                    "policy": policy,
                    "failure": outcome.status,
                },
                config_name=None if sampled else config_name,
                budget_ratio=budget_ratio,
                n_iterations=n_iterations,
                policy=policy,
            )
            corpus_path = save_case(
                case, Path(corpus_dir) / f"fuzz_{seed}_{config_name}.json"
            )
        report.failures.append(
            FuzzFailure(
                seed=seed,
                profile=profile,
                config_name=config_name,
                status=outcome.status,
                message=outcome.message,
                reproducer=reproducer,
                corpus_path=corpus_path,
                policy=policy,
            )
        )
    report.elapsed_s = time.perf_counter() - started
    return report
