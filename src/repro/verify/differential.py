"""Differential execution checker: reference dataflow vs emitted VLIW code.

One call to :func:`differential_check` takes a scheduled loop through the
whole back half of the pipeline -- register allocation, code emission,
cycle-by-cycle execution -- and compares the value stream of every store
against the scalar reference execution of the original loop.  Any
scheduler, communication, spill, allocation or code-emission bug that
changes *what the loop computes* surfaces as a mismatch; structural
problems observed along the way (register collisions, uncovered
iterations, spill-slot misses) are reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.allocation import RegisterAllocation, allocate_registers
from repro.core.codegen import VLIWProgram, generate_code
from repro.core.result import ScheduleResult
from repro.ddg.loop import Loop
from repro.machine.config import MachineConfig, RFConfig
from repro.verify.reference import reference_execute
from repro.verify.vliw import Anomaly, interpret_program

__all__ = [
    "DifferentialError",
    "Mismatch",
    "DifferentialReport",
    "differential_check",
    "default_iterations",
]

#: Iterations simulated by default (beyond the pipeline depth): enough to
#: exercise every loop-carried distance the workloads generate (up to 4)
#: through several kernel repetitions, while keeping a fuzz case cheap.
DEFAULT_WINDOW = 12


@dataclass(frozen=True)
class Mismatch:
    """First diverging element of one store's value stream."""

    store_id: int
    iteration: int
    expected: Optional[int]
    actual: Optional[int]

    def render(self) -> str:
        return (
            f"store {self.store_id} iteration {self.iteration}: "
            f"reference {self.expected!r} != vliw {self.actual!r}"
        )


class DifferentialError(AssertionError):
    """Raised when the emitted code does not compute what the loop means.

    ``reproducer`` (when given) is a ready-to-run command that replays
    the failing case locally; it is embedded in the message so a CI log
    is one copy-paste away from a local debug session.
    """

    def __init__(self, message: str, *, reproducer: Optional[str] = None) -> None:
        self.reproducer = reproducer
        if reproducer:
            message = f"{message}\n  reproduce: {reproducer}"
        super().__init__(message)


@dataclass
class DifferentialReport:
    """The outcome of one reference-vs-VLIW comparison."""

    loop_name: str
    config_name: str
    ii: int
    n_iterations: int
    mismatches: List[Mismatch] = field(default_factory=list)
    anomalies: List[Anomaly] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.anomalies

    def summary(self) -> str:
        status = "ok" if self.ok else (
            f"{len(self.mismatches)} mismatch(es), "
            f"{len(self.anomalies)} anomaly(ies)"
        )
        return (
            f"differential {self.loop_name} on {self.config_name} "
            f"(II={self.ii}, N={self.n_iterations}): {status}"
        )

    def describe_failure(self, limit: int = 6) -> str:
        lines = [self.summary()]
        for mismatch in self.mismatches[:limit]:
            lines.append("  " + mismatch.render())
        for anomaly in self.anomalies[:limit]:
            lines.append("  " + anomaly.render())
        shown = min(len(self.mismatches), limit) + min(len(self.anomalies), limit)
        hidden = len(self.mismatches) + len(self.anomalies) - shown
        if hidden > 0:
            lines.append(f"  ... and more ({hidden} suppressed)")
        return "\n".join(lines)

    def raise_for_failure(self, *, reproducer: Optional[str] = None) -> None:
        if not self.ok:
            raise DifferentialError(self.describe_failure(), reproducer=reproducer)


def default_iterations(loop: Loop, result: ScheduleResult) -> int:
    """Simulation window: the pipeline depth plus a few kernel repetitions."""
    return max(result.stage_count, min(max(loop.trip_count, 1), DEFAULT_WINDOW))


def differential_check(
    loop: Loop,
    result: ScheduleResult,
    machine: MachineConfig,
    rf: RFConfig,
    *,
    allocation: Optional[RegisterAllocation] = None,
    program: Optional[VLIWProgram] = None,
    n_iterations: Optional[int] = None,
) -> DifferentialReport:
    """Compare the scalar reference execution against the emitted code.

    ``loop`` must be the original loop the schedule was produced from and
    ``machine`` the (clock-scaled) datapath the scheduler used.  The
    register allocation and the VLIW program are derived on demand;
    passing them in lets tests corrupt one deliberately.
    """
    if not result.success or result.graph is None:
        raise ValueError("cannot differentially execute a failed schedule")
    if allocation is None:
        allocation = allocate_registers(result, machine, rf)
    if program is None:
        program = generate_code(result, allocation=allocation)
    n = n_iterations if n_iterations is not None else default_iterations(loop, result)
    n = max(n, result.stage_count)

    reference = reference_execute(loop, n)
    vliw = interpret_program(loop, result, program, allocation, machine, rf, n)

    report = DifferentialReport(
        loop_name=loop.name,
        config_name=result.config_name,
        ii=result.ii,
        n_iterations=n,
        anomalies=list(vliw.anomalies),
    )
    ref_stores = set(reference.store_streams)
    vliw_stores = set(vliw.store_streams)
    for store_id in sorted(ref_stores | vliw_stores):
        expected = reference.store_streams.get(store_id)
        actual = vliw.store_streams.get(store_id)
        if expected is None or actual is None:
            report.mismatches.append(
                Mismatch(store_id=store_id, iteration=-1,
                         expected=None if expected is None else -1,
                         actual=None if actual is None else -1)
            )
            continue
        for iteration, (want, got) in enumerate(zip(expected, actual)):
            if want != got:
                report.mismatches.append(
                    Mismatch(store_id=store_id, iteration=iteration,
                             expected=want, actual=got)
                )
                break
    return report
