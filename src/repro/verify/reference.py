"""Scalar reference executor: a loop body as dataflow over concrete values.

This is the oracle side of the differential checker: it ignores the
schedule entirely and interprets the dependence graph directly, one
iteration at a time, exactly as a sequential machine would execute the
source loop.  Values live in the 64-bit algebra of
:mod:`repro.verify.values`; loads draw from the loop's synthetic address
streams (:func:`repro.workloads.traces.loop_address_streams`), loop-carried
dependences read the value produced ``distance`` iterations earlier (or a
deterministic pre-loop value for the first iterations), and every
non-spill store appends to its observable output stream.

The executor also handles graphs that already contain communication and
spill operations (corpus cases can snapshot a mid-pipeline graph): Move,
LoadR and StoreR forward their producer's value unchanged, a spill store
records its producer's value in its spill slot, and a spill load reads
the slot back through its ``mem`` dependence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import OpType
from repro.verify import values as V
from repro.workloads.traces import AddressStream, loop_address_streams

__all__ = [
    "ReferenceTrace",
    "reference_execute",
    "dataflow_inputs",
    "dataflow_order",
    "preloop_value",
]


@dataclass
class ReferenceTrace:
    """The observable output of one reference execution."""

    loop_name: str
    n_iterations: int
    #: Per non-spill store node: the sequence of stored values.
    store_streams: Dict[int, List[int]] = field(default_factory=dict)
    #: Every computed value, keyed by (node_id, iteration) -- kept for
    #: debugging mismatches (the differential report prints the chain).
    values: Dict[Tuple[int, int], int] = field(default_factory=dict)


def dataflow_inputs(graph: DepGraph, node_id: int) -> List[Tuple[int, int]]:
    """The (producer, iteration distance) pairs feeding ``node_id``.

    Flow edges carry values; ``mem``/``seq`` edges are ordering-only --
    except for the spill reload pair, whose ``mem`` edge from the spill
    store is the only link to the value being reloaded.
    """
    node = graph.node(node_id)
    if node.op is OpType.LOAD:
        if not node.is_spill:
            return []  # fed by the address stream, not by registers
        return [
            (edge.src, edge.distance)
            for edge in graph.in_edges(node_id)
            if edge.kind == "mem" and graph.node(edge.src).is_spill
        ]
    return [
        (edge.src, edge.distance)
        for edge in graph.in_edges(node_id)
        if edge.kind == "flow"
    ]


def dataflow_order(graph: DepGraph) -> List[int]:
    """Topological order of the nodes over zero-distance dataflow edges.

    Loop-carried inputs (distance >= 1) refer to earlier iterations and
    impose no intra-iteration ordering.  Raises ``ValueError`` on a
    zero-distance dataflow cycle (such a loop has no sequential meaning).
    """
    indegree: Dict[int, int] = {node_id: 0 for node_id in graph.node_ids()}
    succ: Dict[int, List[int]] = {node_id: [] for node_id in graph.node_ids()}
    for node_id in graph.node_ids():
        for src, distance in dataflow_inputs(graph, node_id):
            if distance == 0 and src in indegree:
                indegree[node_id] += 1
                succ[src].append(node_id)
    ready = sorted(node_id for node_id, deg in indegree.items() if deg == 0)
    order: List[int] = []
    while ready:
        node_id = ready.pop()
        order.append(node_id)
        for nxt in succ[node_id]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(indegree):
        raise ValueError("zero-distance dataflow cycle in dependence graph")
    return order


def preloop_value(graph: DepGraph, node_id: int, iteration: int) -> int:
    """The pre-loop value a carried use resolves to (iteration < 0).

    Communication and spill nodes forward their source's value unchanged,
    so the chain is walked back to an *original* node before keying the
    deterministic initial value -- both executors use this same helper,
    which is what makes them agree on the first ``distance`` iterations
    of every carried use even when the graph already contains inserted
    comm/spill nodes (mid-pipeline corpus snapshots, final graphs).
    """
    node = graph.node(node_id)
    if node.op is OpType.LIVE_IN:
        return V.live_in_value(node_id)
    if node.is_spill or node.is_inserted:
        inputs = dataflow_inputs(graph, node_id)
        if inputs:
            src, distance = inputs[0]
            return preloop_value(graph, src, iteration - distance)
    return V.initial_value(node_id, iteration)


def address_streams_by_node(loop: Loop) -> Dict[int, AddressStream]:
    """Map every memory operation of the loop to its address stream."""
    return {stream.node_id: stream for stream in loop_address_streams(loop)}


def node_value(
    graph: DepGraph,
    node_id: int,
    iteration: int,
    fetch,
    streams: Dict[int, AddressStream],
) -> int:
    """The value one node produces at one iteration.

    ``fetch(src, iteration)`` resolves an operand value (negative
    iterations yield the deterministic pre-loop value).  Shared with the
    VLIW interpreter so both sides agree on every operator's semantics.
    """
    node = graph.node(node_id)
    op = node.op
    if op is OpType.LIVE_IN:
        return V.live_in_value(node_id)
    if op is OpType.LOAD and not node.is_spill:
        stream = streams.get(node_id)
        if stream is None:
            # A load with no stream (hand-built graph): a fixed location.
            return V.load_value(node_id)
        return V.load_value(stream.address(iteration))
    operands = [fetch(src, iteration - distance)
                for src, distance in dataflow_inputs(graph, node_id)]
    if op is OpType.STORE:
        return V.store_value(node_id, operands)
    if op.is_communication or (op is OpType.LOAD and node.is_spill):
        if not operands:
            return V.poison_value(node_id, iteration)
        return V.join_values(node_id, operands)
    return V.compute_value(op, operands)


def reference_execute(loop: Loop, n_iterations: int) -> ReferenceTrace:
    """Execute ``n_iterations`` of the loop body as scalar dataflow."""
    graph = loop.graph
    order = dataflow_order(graph)
    streams = address_streams_by_node(loop)
    trace = ReferenceTrace(loop_name=loop.name, n_iterations=n_iterations)
    values = trace.values

    def fetch(src: int, iteration: int) -> int:
        if iteration < 0:
            return preloop_value(graph, src, iteration)
        return values[(src, iteration)]

    store_nodes = [
        node.node_id
        for node in graph.nodes()
        if node.op is OpType.STORE and not node.is_spill
    ]
    for node_id in store_nodes:
        trace.store_streams[node_id] = []

    for iteration in range(n_iterations):
        for node_id in order:
            value = node_value(graph, node_id, iteration, fetch, streams)
            values[(node_id, iteration)] = value
        for node_id in store_nodes:
            trace.store_streams[node_id].append(values[(node_id, iteration)])
    return trace
