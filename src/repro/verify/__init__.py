"""Execution-based verification of the scheduling pipeline.

The static invariant checker (:mod:`repro.core.validate`) proves that a
schedule is *well-formed*; this package proves that the emitted
software-pipelined code is *semantically correct*.  It contains:

* :mod:`repro.verify.values` -- the deterministic 64-bit value algebra
  shared by both executors (every operation maps its operand multiset to
  a pseudo-random tag, so any dataflow difference is observable as a
  different value with overwhelming probability);
* :mod:`repro.verify.reference` -- a scalar reference executor that
  interprets a :class:`~repro.ddg.loop.Loop` directly as dataflow over
  concrete values (recurrences carried across iterations, loads fed from
  the loop's synthetic address streams);
* :mod:`repro.verify.vliw` -- a VLIW kernel interpreter that executes
  the emitted :class:`~repro.core.codegen.VLIWProgram` cycle by cycle
  against the :class:`~repro.core.allocation.RegisterAllocation`,
  modelling every register bank, communication operation and the
  two-level spill chain, so allocation collisions, wrong-bank reads and
  spill corruption become observable wrong *values*;
* :mod:`repro.verify.differential` -- the differential checker that
  asserts reference-vs-VLIW store-stream identity for one
  (loop, configuration) pair;
* :mod:`repro.verify.fuzz` -- the randomized fuzz driver
  (``repro fuzz`` / :func:`repro.api.fuzz_schedules`) with its failure
  shrinker; and
* :mod:`repro.verify.corpus` -- JSON (de)serialization of minimized
  failure cases, replayed by ``tests/test_corpus.py``.
"""

from repro.verify.differential import (
    DifferentialError,
    DifferentialReport,
    differential_check,
)
from repro.verify.fuzz import FuzzReport, fuzz_schedules, replay_case, run_pipeline
from repro.verify.reference import reference_execute
from repro.verify.vliw import interpret_program

__all__ = [
    "DifferentialError",
    "DifferentialReport",
    "differential_check",
    "FuzzReport",
    "fuzz_schedules",
    "replay_case",
    "run_pipeline",
    "reference_execute",
    "interpret_program",
]
