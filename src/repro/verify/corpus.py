"""JSON regression corpus for the verification pipeline.

Every fuzz failure is minimized and frozen as one JSON file under
``tests/corpus/``; ``tests/test_corpus.py`` auto-discovers and replays
them (schedule -> validate -> allocate -> emit -> differentially
execute) on every run, so a bug found once by randomized search is
guarded forever by the deterministic suite.  Cases are also written by
hand to pin regressions found outside the fuzzer (the PR 1 spill
dead-end loops seed the corpus).

The format is deliberately dumb and stable: the loop is stored node by
node and edge by edge (no pickles -- a corpus written by one version
replays on any other), the configuration either by preset name or as an
inline parameter object, and ``expect`` states what the replay must
observe (``"ok"`` for a full clean pipeline; ``"unschedulable"`` for
capacity cases that must *fail to schedule* gracefully rather than
loop or crash).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import MemRef, OpType
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.presets import config_by_name

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "CorpusCase",
    "graph_to_json",
    "graph_from_json",
    "loop_to_json",
    "loop_from_json",
    "rf_to_json",
    "rf_from_json",
    "machine_to_json",
    "machine_from_json",
    "load_case",
    "save_case",
    "discover_cases",
]

CORPUS_SCHEMA_VERSION = 1


# --------------------------------------------------------------------------- #
# Dependence graph <-> JSON
# --------------------------------------------------------------------------- #
def graph_to_json(graph: DepGraph) -> Dict:
    """Node-by-node, edge-by-edge JSON form of a dependence graph.

    This is the graph convention every serialized artifact shares: corpus
    cases, serialized loops and serialized schedule results (see
    :mod:`repro.serialize`) all embed graphs in this shape.
    """
    nodes = []
    for op in sorted(graph.nodes(), key=lambda node: node.node_id):
        entry: Dict[str, object] = {"id": op.node_id, "op": op.op.value}
        if op.name:
            entry["name"] = op.name
        if op.mem_ref is not None:
            entry["mem_ref"] = {
                "array": op.mem_ref.array,
                "stride_bytes": op.mem_ref.stride_bytes,
                "offset_bytes": op.mem_ref.offset_bytes,
                "footprint_bytes": op.mem_ref.footprint_bytes,
            }
        for flag in ("is_spill", "is_inserted"):
            if getattr(op, flag):
                entry[flag] = True
        if op.inserted_for is not None:
            entry["inserted_for"] = op.inserted_for
        if op.home_cluster is not None:
            entry["home_cluster"] = op.home_cluster
        if op.latency_override is not None:
            entry["latency_override"] = op.latency_override
        nodes.append(entry)
    edges = [
        [edge.src, edge.dst, edge.distance, edge.kind]
        for edge in sorted(
            graph.edges(), key=lambda e: (e.src, e.dst, e.distance, e.kind)
        )
    ]
    return {"nodes": nodes, "edges": edges}


def graph_from_json(payload: Dict) -> "tuple[DepGraph, Dict[int, int]]":
    """Rebuild a graph; returns ``(graph, id_map)``.

    Node ids are *preserved* -- including the gaps a shrunk or scheduled
    graph carries after node removal -- so per-node side tables (e.g. the
    assignments of a serialized schedule result) stay valid verbatim and
    a round trip is canonical-form exact.  ``id_map`` (payload id ->
    rebuilt id, the identity today) is returned for callers that remap
    defensively.
    """
    graph = DepGraph()
    id_map: Dict[int, int] = {}
    for entry in payload["nodes"]:
        ref = None
        if entry.get("mem_ref") is not None:
            mr = entry["mem_ref"]
            ref = MemRef(
                array=mr["array"],
                stride_bytes=mr.get("stride_bytes", 8),
                offset_bytes=mr.get("offset_bytes", 0),
                footprint_bytes=mr.get("footprint_bytes"),
            )
        node_id = graph.add_node(
            OpType(entry["op"]),
            name=entry.get("name", ""),
            mem_ref=ref,
            is_spill=bool(entry.get("is_spill", False)),
            is_inserted=bool(entry.get("is_inserted", False)),
            home_cluster=entry.get("home_cluster"),
            node_id=int(entry["id"]),
        )
        if entry.get("latency_override") is not None:
            graph.node(node_id).latency_override = int(entry["latency_override"])
        id_map[entry["id"]] = node_id
    # inserted_for references other nodes, so it is restored once every
    # node exists.  The owner may legitimately be gone from the final
    # graph (ejected after its communication node survived); the stored
    # id is kept verbatim in that case -- it is provenance, not an edge.
    for entry in payload["nodes"]:
        owner = entry.get("inserted_for")
        if owner is not None:
            graph.node(id_map[entry["id"]]).inserted_for = id_map.get(owner, owner)
    for src, dst, distance, kind in payload["edges"]:
        graph.add_edge(id_map[src], id_map[dst], distance=distance, kind=kind)
    return graph, id_map


# --------------------------------------------------------------------------- #
# Loop <-> JSON
# --------------------------------------------------------------------------- #
def loop_to_json(loop: Loop) -> Dict:
    payload = {
        "name": loop.name,
        "trip_count": loop.trip_count,
        "times_entered": loop.times_entered,
        "weight": loop.weight,
        "source": loop.source,
        "attributes": {
            key: value
            for key, value in loop.attributes.items()
            if isinstance(value, (str, int, float, bool))
        },
    }
    payload.update(graph_to_json(loop.graph))
    return payload


def loop_from_json(payload: Dict) -> Loop:
    graph, _id_map = graph_from_json(payload)
    return Loop(
        name=payload["name"],
        graph=graph,
        trip_count=payload.get("trip_count", 100),
        times_entered=payload.get("times_entered", 1),
        weight=payload.get("weight", 1.0),
        source=payload.get("source", "corpus"),
        attributes=dict(payload.get("attributes", {})),
    )


# --------------------------------------------------------------------------- #
# Configurations <-> JSON (delegating to the config objects' own
# to_dict/from_dict, the single JSON convention shared with repro.serialize)
# --------------------------------------------------------------------------- #
def rf_to_json(rf: RFConfig) -> Dict:
    return rf.to_dict()


def rf_from_json(payload: Union[str, Dict]) -> RFConfig:
    if isinstance(payload, str):
        return config_by_name(payload)
    return RFConfig.from_dict(payload)


def machine_to_json(machine: MachineConfig) -> Dict:
    return machine.to_dict()


def machine_from_json(payload: Optional[Dict]) -> MachineConfig:
    return MachineConfig.from_dict(payload)


# --------------------------------------------------------------------------- #
# Cases
# --------------------------------------------------------------------------- #
@dataclass
class CorpusCase:
    """One replayable verification case."""

    loop: Loop
    rf: RFConfig
    machine: MachineConfig
    #: What the replay must observe: "ok" (clean full pipeline) or
    #: "unschedulable" (the scheduler must give up gracefully).
    expect: str = "ok"
    description: str = ""
    #: Free-form provenance (fuzz seed, profile, original failure kind).
    origin: Dict[str, object] = field(default_factory=dict)
    #: Preset name when the configuration is a named one (readability).
    config_name: Optional[str] = None
    budget_ratio: float = 6.0
    scale_to_clock: bool = True
    n_iterations: Optional[int] = None
    #: Policy bundle the failing schedule was produced with (replay must
    #: use the same heuristics to reproduce the bug).
    policy: str = "mirs_hc"

    @property
    def name(self) -> str:
        return self.loop.name

    def to_json(self) -> Dict:
        payload: Dict[str, object] = {
            "schema": CORPUS_SCHEMA_VERSION,
            "description": self.description,
            "expect": self.expect,
            "origin": self.origin,
            "budget_ratio": self.budget_ratio,
            "scale_to_clock": self.scale_to_clock,
            "n_iterations": self.n_iterations,
            "policy": self.policy,
            "loop": loop_to_json(self.loop),
        }
        if self.config_name is not None:
            payload["config"] = self.config_name
        else:
            payload["rf"] = rf_to_json(self.rf)
        payload["machine"] = machine_to_json(self.machine)
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "CorpusCase":
        schema = payload.get("schema", 0)
        if schema > CORPUS_SCHEMA_VERSION:
            raise ValueError(f"corpus case uses unknown schema {schema}")
        config_name = payload.get("config")
        rf = rf_from_json(config_name if config_name else payload["rf"])
        return cls(
            loop=loop_from_json(payload["loop"]),
            rf=rf,
            machine=machine_from_json(payload.get("machine")),
            expect=payload.get("expect", "ok"),
            description=payload.get("description", ""),
            origin=dict(payload.get("origin", {})),
            config_name=config_name,
            budget_ratio=payload.get("budget_ratio", 6.0),
            scale_to_clock=payload.get("scale_to_clock", True),
            n_iterations=payload.get("n_iterations"),
            policy=payload.get("policy", "mirs_hc"),
        )


def save_case(case: CorpusCase, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: Union[str, Path]) -> CorpusCase:
    return CorpusCase.from_json(json.loads(Path(path).read_text()))


def discover_cases(directory: Union[str, Path]) -> List[Path]:
    """Every corpus case file under ``directory``, in stable order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))
