"""Deterministic 64-bit value algebra shared by both executors.

The differential oracle does not simulate floating-point arithmetic --
what it verifies is *dataflow*: that the scheduled, register-allocated
VLIW code routes exactly the same values to exactly the same stores as a
naive scalar execution of the loop.  Every operation therefore maps its
operand values to a pseudo-random 64-bit tag through a splitmix-style
mixer: two executions produce the same store streams iff they performed
the same dataflow (up to a ~2^-64 collision probability per comparison).

Two properties of the algebra are load-bearing:

* **Operand order insensitivity.**  Compute operations fold their
  operands as a *sorted* tuple, so re-routing an operand edge through a
  communication or spill chain (which preserves the producer and the
  total iteration distance, but not edge enumeration order) cannot
  change the result.
* **Determinism across processes.**  The mixer uses no string hashing
  (``PYTHONHASHSEED`` has no effect) -- a corpus case replays to the
  same values on any machine.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ddg.operations import OpType

__all__ = [
    "mix",
    "live_in_value",
    "initial_value",
    "load_value",
    "compute_value",
    "store_value",
    "join_values",
    "poison_value",
]

_MASK = (1 << 64) - 1

#: Stable small integer code per operation kind (enum order is part of
#: the public repertoire and changing it would change every tag anyway).
_OP_CODE = {op: index for index, op in enumerate(OpType)}

# Role tags keep the different value constructors in disjoint domains.
_TAG_LIVE_IN = 0x11
_TAG_INITIAL = 0x22
_TAG_LOAD = 0x33
_TAG_COMPUTE = 0x44
_TAG_STORE = 0x55
_TAG_POISON = 0x66


def _splitmix(value: int) -> int:
    """The splitmix64 finalizer: a fast, well-distributed 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


def mix(*parts: int) -> int:
    """Combine integer parts into one 64-bit value (order sensitive)."""
    state = 0x243F6A8885A308D3  # pi, for want of nothing up any sleeve
    for part in parts:
        state = _splitmix((state ^ (part & _MASK)) & _MASK)
    return state


def live_in_value(node_id: int) -> int:
    """The (constant) value of a loop-invariant live-in."""
    return mix(_TAG_LIVE_IN, node_id)


def initial_value(node_id: int, iteration: int) -> int:
    """The pre-loop value read by a loop-carried use at iteration < 0."""
    # ``iteration`` is negative; offset it into the non-negative range so
    # the mixer sees a plain unsigned part.
    return mix(_TAG_INITIAL, node_id, iteration + (1 << 32))


def load_value(address: int) -> int:
    """The memory content at ``address`` (a pure function of the address).

    Dependences through memory are ordering-only in the dependence-graph
    model (stores never feed loads through an address), so memory is
    modelled as an immutable pseudo-random array.  Spill slots are the
    exception and are handled as dataflow by the executors directly.
    """
    return mix(_TAG_LOAD, address)


def compute_value(op: OpType, operands: Sequence[int]) -> int:
    """The result of a compute operation over its operand multiset."""
    return mix(_TAG_COMPUTE, _OP_CODE[op], *sorted(operands))


def store_value(node_id: int, operands: Sequence[int]) -> int:
    """The value a store writes (its operand, or a fold of several)."""
    if len(operands) == 1:
        return operands[0]
    # Degenerate graphs can give a store zero or several producers; fold
    # deterministically so both executors agree.
    return mix(_TAG_STORE, node_id, *sorted(operands))


def join_values(node_id: int, operands: Sequence[int]) -> int:
    """Fold several operands of a communication node (degenerate graphs)."""
    if len(operands) == 1:
        return operands[0]
    return mix(_TAG_STORE, node_id, *sorted(operands))


def poison_value(node_id: int, iteration: int, salt: int = 0) -> int:
    """A sentinel for reads that found no value at all (empty register).

    Poison is keyed by the *reader*, so it never accidentally equals the
    value the reference executor expected.
    """
    return mix(_TAG_POISON, node_id, iteration + (1 << 32), salt)
