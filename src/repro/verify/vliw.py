"""Cycle-by-cycle interpreter for emitted software-pipelined VLIW code.

This is the machine side of the differential checker.  It does **not**
re-use the dependence graph's dataflow to route values; instead it
executes the :class:`~repro.core.codegen.VLIWProgram` exactly as the
modelled hardware would:

* the program's prologue / kernel / epilogue words are unrolled into
  issue events (:meth:`VLIWProgram.execution_trace`) and processed in
  absolute cycle order;
* every defined value is written into the *physical register* the
  wrap-around allocator assigned it, in its residence bank, following
  rotating-register-file semantics (a value whose lifetime spans ``k``
  initiation intervals occupies ``k`` register instances, aging by one
  register every II cycles; the cyclically *shared* instance is the one
  the allocator packed first-fit against other values);
* every operand is read from the bank the consuming operation is
  physically connected to (its cluster bank, the shared bank for memory
  ports, the producer's bank for a bus ``Move``), at the register the
  allocation dictates -- so a wrong-bank placement, a register
  collision, or a clobbered spill slot yields a *different value*, which
  then propagates to the observable store streams;
* spill stores write their operand into a per-iteration spill slot and
  spill loads read it back through their ``mem`` dependence, modelling
  the modulo-expanded spill buffers the two-level spill chain requires.

The interpreter is deliberately trusting about *timing* (the static
validator already proves dependences and resources); what it adds is the
value flow, plus structural checks that the emitted code covers every
(operation, iteration) instance exactly once at the scheduled cycle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.allocation import AllocatedValue, RegisterAllocation
from repro.core.banks import read_bank, value_bank
from repro.core.codegen import VLIWProgram
from repro.core.lifetimes import lifetimes_by_bank
from repro.core.result import ScheduleResult
from repro.ddg.loop import Loop
from repro.ddg.operations import OpType
from repro.machine.config import MachineConfig, RFConfig
from repro.verify import values as V
from repro.verify.reference import (
    address_streams_by_node,
    dataflow_inputs,
    preloop_value,
)

__all__ = ["Anomaly", "VLIWTrace", "interpret_program"]


@dataclass(frozen=True)
class Anomaly:
    """One structural or register-level problem observed during execution."""

    kind: str
    node_id: int
    iteration: int
    cycle: int
    detail: str

    def render(self) -> str:
        return (
            f"[{self.kind}] op {self.node_id} iter {self.iteration} "
            f"cycle {self.cycle}: {self.detail}"
        )


@dataclass
class VLIWTrace:
    """The observable output of one VLIW program execution."""

    loop_name: str
    config_name: str
    n_iterations: int
    #: Per non-spill store node: the sequence of stored values (indexed
    #: by iteration; ``None`` marks an iteration the code never executed,
    #: which is itself reported as a coverage anomaly).
    store_streams: Dict[int, List[Optional[int]]] = field(default_factory=dict)
    anomalies: List[Anomaly] = field(default_factory=list)
    #: Every computed value, keyed by (node_id, iteration), for debugging.
    values: Dict[Tuple[int, int], int] = field(default_factory=dict)


class _RegisterFile:
    """Tagged register banks with rotating (aging) instance placement."""

    def __init__(self, ii: int) -> None:
        self.ii = ii
        #: (bank, register key) -> (writer node, writer iteration, value).
        #: The register key is the physical index when the allocation
        #: pins it exactly, or a private ("priv", node, age) token for
        #: the always-alive instances of long-lived values, whose exact
        #: physical index the wrap-around allocator reserves exclusively
        #: (first-fit never shares a fully occupied register).
        self.contents: Dict[Tuple, Tuple[Optional[int], Optional[int], int]] = {}

    @staticmethod
    def _instance_key(av: AllocatedValue, length: int, age: int, ii: int):
        full, remainder = divmod(max(1, length), ii)
        if remainder == 0:
            return av.base_register + age
        if age == full:
            # The cyclically shared instance: the one whose occupancy is
            # ``length mod II`` cycles per II, packed first-fit with
            # other values' arcs on the allocator's arc register.
            return av.base_register
        return ("priv", av.node_id, age)

    def write_segments(
        self, av: AllocatedValue, birth: int, length: int
    ) -> List[Tuple[int, Tuple]]:
        """(cycle, key) pairs at which one value instance changes register."""
        full, remainder = divmod(max(1, length), self.ii)
        n_segments = full + (1 if remainder else 0)
        return [
            (
                birth + age * self.ii,
                (av.bank, self._instance_key(av, length, age, self.ii)),
            )
            for age in range(n_segments)
        ]

    def read_key(self, bank: int, av: AllocatedValue, length: int, age: int):
        return (bank, self._instance_key(av, length, age, self.ii))


def interpret_program(
    loop: Loop,
    result: ScheduleResult,
    program: VLIWProgram,
    allocation: RegisterAllocation,
    machine: MachineConfig,
    rf: RFConfig,
    n_iterations: int,
) -> VLIWTrace:
    """Execute ``n_iterations`` of the emitted program against the allocation.

    ``loop`` is the *original* (pre-scheduling) loop; it supplies the
    address streams of the non-spill memory operations, which survive
    scheduling with their node ids intact.  ``machine`` must be the same
    (clock-scaled) datapath the schedule was produced for.
    """
    graph = result.graph
    if not result.success or graph is None:
        raise ValueError("cannot interpret a failed schedule")
    ii = result.ii
    times = {node_id: placed.cycle for node_id, placed in result.assignments.items()}
    clusters = {node_id: placed.cluster for node_id, placed in result.assignments.items()}
    trace = VLIWTrace(
        loop_name=result.loop_name,
        config_name=result.config_name,
        n_iterations=n_iterations,
    )

    # ------------------------------------------------------------------ #
    # Static tables: lifetimes, allocations, address streams.
    # ------------------------------------------------------------------ #
    life: Dict[int, Tuple[int, int, int]] = {}
    for bank, lifetimes in lifetimes_by_bank(
        graph, times, clusters, ii, rf, machine.latency
    ).items():
        for lt in lifetimes:
            life[lt.node_id] = (bank, lt.start, lt.end)
    alloc_of: Dict[int, AllocatedValue] = {}
    for bank_alloc in allocation.banks.values():
        for av in bank_alloc.values:
            alloc_of[av.node_id] = av
    invariant_regs: Dict[Tuple[int, int], int] = {}
    for bank, bank_alloc in allocation.banks.items():
        for node_id, register in bank_alloc.invariants.items():
            invariant_regs[(bank, node_id)] = register
    streams = address_streams_by_node(loop)

    regfile = _RegisterFile(ii)
    # Loop invariants are pre-loaded into every bank that reads them.
    for (bank, node_id), register in invariant_regs.items():
        regfile.contents[(bank, register)] = (node_id, None, V.live_in_value(node_id))

    # ------------------------------------------------------------------ #
    # Unroll the program and check instance coverage.
    # ------------------------------------------------------------------ #
    slots = program.execution_trace(n_iterations)
    expected = {
        (node_id, iteration)
        for node_id in times
        if not graph.node(node_id).op.is_pseudo
        for iteration in range(n_iterations)
    }
    seen: Dict[Tuple[int, int], int] = {}
    for slot in slots:
        seen[(slot.node_id, slot.iteration)] = (
            seen.get((slot.node_id, slot.iteration), 0) + 1
        )
        scheduled = times.get(slot.node_id)
        if scheduled is None or slot.cycle != slot.iteration * ii + scheduled:
            trace.anomalies.append(
                Anomaly(
                    kind="codegen-cycle",
                    node_id=slot.node_id,
                    iteration=slot.iteration,
                    cycle=slot.cycle,
                    detail=f"emitted at cycle {slot.cycle}, schedule says "
                    f"{slot.iteration} * {ii} + {scheduled}",
                )
            )
    for instance, count in sorted(seen.items()):
        if count > 1 or instance not in expected:
            node_id, iteration = instance
            trace.anomalies.append(
                Anomaly(
                    kind="codegen-coverage",
                    node_id=node_id,
                    iteration=iteration,
                    cycle=-1,
                    detail=f"instance emitted {count} time(s), expected "
                    f"{'once' if instance in expected else 'never'}",
                )
            )
    for instance in sorted(expected - set(seen)):
        node_id, iteration = instance
        trace.anomalies.append(
            Anomaly(
                kind="codegen-coverage",
                node_id=node_id,
                iteration=iteration,
                cycle=-1,
                detail="instance never emitted",
            )
        )

    # ------------------------------------------------------------------ #
    # Cycle-by-cycle execution.
    # ------------------------------------------------------------------ #
    values = trace.values
    spill_mem: Dict[Tuple[int, int], int] = {}
    for node in graph.nodes():
        if node.op is OpType.STORE and not node.is_spill:
            trace.store_streams[node.node_id] = [None] * n_iterations
    #: (cycle, sequence, register key, writer, iteration, value)
    pending_writes: List[Tuple[int, int, Tuple, int, int, int]] = []
    write_seq = 0

    def flush_writes(now: int) -> None:
        while pending_writes and pending_writes[0][0] <= now:
            _, _, key, writer, iteration, value = heapq.heappop(pending_writes)
            regfile.contents[key] = (writer, iteration, value)

    def read_operand(consumer: int, consumer_cluster, src: int, j: int, cycle: int) -> int:
        if j < 0:
            return preloop_value(graph, src, j)
        src_node = graph.node(src)
        if src_node.op is OpType.LIVE_IN:
            bank = read_bank(graph, consumer, consumer_cluster, rf)
            register = invariant_regs.get((bank, src)) if bank is not None else None
            if register is None:
                trace.anomalies.append(
                    Anomaly("missing-invariant", consumer, j, cycle,
                            f"invariant {src} has no register in bank {bank}"))
                return V.poison_value(consumer, j, src)
            writer, _, value = regfile.contents[(bank, register)]
            if writer != src:
                trace.anomalies.append(
                    Anomaly("register-collision", consumer, j, cycle,
                            f"invariant register {bank}/r{register} holds "
                            f"value of {writer}, expected invariant {src}"))
            return value
        if not src_node.op.defines_register:
            # Degenerate graphs can use a store as an operand; there is no
            # register to read, forward the computed value directly.
            return values.get((src, j), V.poison_value(consumer, j, src))
        if graph.node(consumer).op is OpType.MOVE:
            # A bus Move reads the producer's bank by construction.
            bank = value_bank(graph, src, clusters.get(src), rf)
        else:
            bank = read_bank(graph, consumer, consumer_cluster, rf)
        av = alloc_of.get(src)
        entry = life.get(src)
        if av is None or entry is None or bank is None:
            trace.anomalies.append(
                Anomaly("no-allocation", consumer, j, cycle,
                        f"operand {src} has no register allocation"))
            return V.poison_value(consumer, j, src)
        _, start, end = entry
        birth = j * ii + start
        if cycle < birth:
            trace.anomalies.append(
                Anomaly("read-before-write", consumer, j, cycle,
                        f"operand {src} (iteration {j}) is written at "
                        f"cycle {birth}"))
            return V.poison_value(consumer, j, src)
        key = regfile.read_key(bank, av, end - start, (cycle - birth) // ii)
        found = regfile.contents.get(key)
        if found is None:
            trace.anomalies.append(
                Anomaly("empty-register", consumer, j, cycle,
                        f"register {key[0]}/{key[1]} never written "
                        f"(expected value of {src} iteration {j})"))
            return V.poison_value(consumer, j, src)
        writer, writer_iter, value = found
        if writer != src or writer_iter != j:
            trace.anomalies.append(
                Anomaly("register-collision", consumer, j, cycle,
                        f"register {key[0]}/{key[1]} holds value of "
                        f"{writer} iteration {writer_iter}, expected "
                        f"{src} iteration {j}"))
        return value  # whatever the register physically holds

    for slot in sorted(slots, key=lambda s: s.cycle):
        cycle, node_id, iteration = slot.cycle, slot.node_id, slot.iteration
        if not (0 <= iteration < n_iterations) or node_id not in graph:
            continue
        flush_writes(cycle)
        node = graph.node(node_id)
        cluster = clusters.get(node_id)
        op = node.op

        if op is OpType.LOAD and not node.is_spill:
            stream = streams.get(node_id)
            value = (
                V.load_value(stream.address(iteration))
                if stream is not None
                else V.load_value(node_id)
            )
        elif op is OpType.LOAD and node.is_spill:
            inputs = dataflow_inputs(graph, node_id)
            if not inputs:
                trace.anomalies.append(
                    Anomaly("spill-orphan", node_id, iteration, cycle,
                            "spill load has no spill store"))
                value = V.poison_value(node_id, iteration)
            else:
                reloaded = []
                for store_id, distance in inputs:
                    j = iteration - distance
                    if j < 0:
                        reloaded.append(preloop_value(graph, store_id, j))
                        continue
                    slot_value = spill_mem.get((store_id, j))
                    if slot_value is None:
                        trace.anomalies.append(
                            Anomaly("spill-miss", node_id, iteration, cycle,
                                    f"spill slot of store {store_id} "
                                    f"iteration {j} not yet written"))
                        slot_value = V.poison_value(node_id, iteration, store_id)
                    reloaded.append(slot_value)
                value = V.join_values(node_id, reloaded)
        else:
            operands = [
                read_operand(node_id, cluster, src, iteration - distance, cycle)
                for src, distance in dataflow_inputs(graph, node_id)
            ]
            if op is OpType.STORE:
                value = V.store_value(node_id, operands)
            elif op.is_communication:
                value = (
                    V.join_values(node_id, operands)
                    if operands
                    else V.poison_value(node_id, iteration)
                )
            else:
                value = V.compute_value(op, operands)

        values[(node_id, iteration)] = value

        if op is OpType.STORE:
            if node.is_spill:
                spill_mem[(node_id, iteration)] = value
            else:
                trace.store_streams[node_id][iteration] = value
        elif op.defines_register and not op.is_pseudo:
            av = alloc_of.get(node_id)
            entry = life.get(node_id)
            if av is None or entry is None:
                trace.anomalies.append(
                    Anomaly("no-allocation", node_id, iteration, cycle,
                            "defined value has no register allocation"))
            else:
                _, start, end = entry
                birth = iteration * ii + start
                for write_cycle, key in regfile.write_segments(av, birth, end - start):
                    heapq.heappush(
                        pending_writes,
                        (write_cycle, write_seq, key, node_id, iteration, value),
                    )
                    write_seq += 1
    return trace
