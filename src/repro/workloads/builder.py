"""A small fluent builder for dependence graphs.

Writing dependence graphs by hand (for the named kernels and for tests)
is much more readable through this builder than through raw
``add_node``/``add_edge`` calls: every arithmetic helper returns the node
id of the operation so the data flow of the original source loop can be
transcribed almost literally, e.g. the DAXPY loop ``y[i] = a*x[i] + y[i]``
becomes::

    b = LoopBuilder("daxpy")
    a = b.live_in("a")
    x = b.load("x")
    y = b.load("y")
    ax = b.mul(a, x)
    s = b.add(ax, y)
    b.store("y", s)
    loop = b.build(trip_count=1000)
"""

from __future__ import annotations

from typing import Optional

from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import MemRef, OpType

__all__ = ["LoopBuilder"]


class LoopBuilder:
    """Fluent construction of a :class:`~repro.ddg.loop.Loop`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = DepGraph()

    # ------------------------------------------------------------------ #
    # Values
    # ------------------------------------------------------------------ #
    def live_in(self, name: str) -> int:
        """A loop-invariant value (scalar kept in a register across iterations)."""
        return self.graph.add_node(OpType.LIVE_IN, name=name)

    def load(
        self,
        array: str,
        *,
        stride: int = 8,
        offset: int = 0,
        name: str = "",
        footprint: Optional[int] = None,
    ) -> int:
        """A memory load from ``array`` with the given per-iteration stride."""
        ref = MemRef(array=array, stride_bytes=stride, offset_bytes=offset,
                     footprint_bytes=footprint)
        return self.graph.add_node(OpType.LOAD, name=name or f"ld_{array}", mem_ref=ref)

    def store(
        self,
        array: str,
        value: int,
        *,
        stride: int = 8,
        offset: int = 0,
        name: str = "",
        footprint: Optional[int] = None,
    ) -> int:
        """A memory store of ``value`` to ``array``."""
        ref = MemRef(array=array, stride_bytes=stride, offset_bytes=offset,
                     footprint_bytes=footprint)
        node = self.graph.add_node(OpType.STORE, name=name or f"st_{array}", mem_ref=ref)
        self.graph.add_edge(value, node)
        return node

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def _binary(self, op: OpType, a: int, b: int, name: str) -> int:
        node = self.graph.add_node(op, name=name)
        self.graph.add_edge(a, node)
        if b != a:
            self.graph.add_edge(b, node)
        return node

    def add(self, a: int, b: int, name: str = "") -> int:
        return self._binary(OpType.FADD, a, b, name or "add")

    def sub(self, a: int, b: int, name: str = "") -> int:
        """Subtraction executes on the same adder pipeline as addition."""
        return self._binary(OpType.FADD, a, b, name or "sub")

    def mul(self, a: int, b: int, name: str = "") -> int:
        return self._binary(OpType.FMUL, a, b, name or "mul")

    def div(self, a: int, b: int, name: str = "") -> int:
        return self._binary(OpType.FDIV, a, b, name or "div")

    def sqrt(self, a: int, name: str = "") -> int:
        node = self.graph.add_node(OpType.FSQRT, name=name or "sqrt")
        self.graph.add_edge(a, node)
        return node

    # ------------------------------------------------------------------ #
    # Loop-carried dependences
    # ------------------------------------------------------------------ #
    def carried(self, producer: int, consumer: int, *, distance: int = 1) -> None:
        """Value produced by ``producer`` is consumed ``distance`` iterations later."""
        self.graph.add_edge(producer, consumer, distance=distance)

    def memory_order(self, first: int, second: int, *, distance: int = 0) -> None:
        """Ordering constraint through memory (e.g. store before a later load)."""
        self.graph.add_edge(first, second, distance=distance, kind="mem")

    # ------------------------------------------------------------------ #
    def build(
        self,
        *,
        trip_count: int = 100,
        times_entered: int = 1,
        weight: float = 1.0,
        source: str = "kernel",
        **attributes: object,
    ) -> Loop:
        """Finalize the loop."""
        return Loop(
            name=self.name,
            graph=self.graph,
            trip_count=trip_count,
            times_entered=times_entered,
            weight=weight,
            source=source,
            attributes=dict(attributes),
        )
