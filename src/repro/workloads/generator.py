"""Seeded random generator of software-pipelinable loop bodies.

The Perfect Club workbench cannot be redistributed, so the bulk of the
workbench is produced by this generator.  Loops are drawn from *profiles*
that control the statistical shape of the dependence graph -- operation
count, memory intensity, operation mix, recurrence structure and
loop-invariant usage -- and the profiles are mixed by
:mod:`repro.workloads.suite` in proportions chosen so that the workbench's
loop-bound breakdown on the baseline monolithic machine resembles the
paper's Table 1 (roughly 20 % FU-bound, 50 % memory-bound, 30 %
recurrence-bound loops under S128).

All randomness flows through a caller-supplied ``numpy.random.Generator``
so every workbench is exactly reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import MemRef, OpType

__all__ = ["GeneratorProfile", "PROFILES", "generate_loop"]


@dataclass(frozen=True)
class GeneratorProfile:
    """Statistical profile of a family of generated loops.

    Parameters
    ----------
    name:
        Profile identifier (stored in the loop's attributes).
    n_ops:
        Inclusive (low, high) range of the total number of compute + memory
        operations in the loop body.
    mem_fraction:
        Fraction of operations that are memory accesses.
    store_fraction:
        Fraction of the memory operations that are stores.
    mul_fraction:
        Fraction of the two-operand compute operations that are multiplies
        (the rest are adds/subtracts).
    div_prob / sqrt_prob:
        Per-compute-op probability of being a division / square root.
    n_recurrences:
        Inclusive range of the number of loop-carried recurrences to close.
    recurrence_distance:
        Inclusive range of the iteration distance of each recurrence.
    n_live_ins:
        Inclusive range of loop-invariant values.
    chain_bias:
        Probability that a compute operand is taken from the most recently
        produced values (creates long dependence chains) rather than
        uniformly from all available values (creates wide, parallel graphs).
    carried_value_prob:
        Probability that a compute operand is consumed one to three
        iterations after it was produced (scalar-replaced array elements,
        software-pipelined temporaries); such values stay live across
        iterations and are the main source of high register pressure.
    trip_count:
        Inclusive range of the per-entry iteration count.
    times_entered:
        Inclusive range of the number of times the loop is entered.
    """

    name: str
    n_ops: Tuple[int, int] = (8, 24)
    mem_fraction: float = 0.4
    store_fraction: float = 0.3
    mul_fraction: float = 0.5
    div_prob: float = 0.02
    sqrt_prob: float = 0.01
    n_recurrences: Tuple[int, int] = (0, 1)
    recurrence_distance: Tuple[int, int] = (1, 2)
    n_live_ins: Tuple[int, int] = (0, 3)
    chain_bias: float = 0.6
    carried_value_prob: float = 0.0
    trip_count: Tuple[int, int] = (50, 1000)
    times_entered: Tuple[int, int] = (1, 8)


PROFILES: Dict[str, GeneratorProfile] = {
    # Streaming loops dominated by loads/stores: become memory-port bound.
    # Numerical streaming loops are typically unrolled and run for many
    # iterations, which gives them both their weight in the total cycle
    # count and their high register pressure.
    "memory_bound": GeneratorProfile(
        name="memory_bound",
        n_ops=(16, 44),
        mem_fraction=0.58,
        store_fraction=0.35,
        mul_fraction=0.45,
        div_prob=0.0,
        sqrt_prob=0.0,
        n_recurrences=(0, 0),
        n_live_ins=(1, 4),
        chain_bias=0.35,
        carried_value_prob=0.32,
        trip_count=(200, 4000),
        times_entered=(1, 10),
    ),
    # Expression-rich loops with few memory accesses: FU bound.
    "compute_bound": GeneratorProfile(
        name="compute_bound",
        n_ops=(24, 64),
        mem_fraction=0.20,
        store_fraction=0.25,
        mul_fraction=0.55,
        div_prob=0.02,
        sqrt_prob=0.01,
        n_recurrences=(0, 0),
        n_live_ins=(3, 8),
        chain_bias=0.30,
        carried_value_prob=0.35,
        trip_count=(100, 2000),
        times_entered=(1, 8),
    ),
    # Loops whose II is limited by a loop-carried dependence chain.
    "recurrence_bound": GeneratorProfile(
        name="recurrence_bound",
        n_ops=(10, 28),
        mem_fraction=0.35,
        store_fraction=0.3,
        mul_fraction=0.5,
        div_prob=0.04,
        sqrt_prob=0.01,
        n_recurrences=(1, 2),
        recurrence_distance=(1, 2),
        n_live_ins=(0, 3),
        chain_bias=0.7,
        carried_value_prob=0.10,
        trip_count=(50, 800),
        times_entered=(1, 6),
    ),
    # A mixed profile.
    "balanced": GeneratorProfile(
        name="balanced",
        n_ops=(14, 40),
        mem_fraction=0.42,
        store_fraction=0.3,
        mul_fraction=0.5,
        div_prob=0.02,
        sqrt_prob=0.01,
        n_recurrences=(0, 1),
        n_live_ins=(1, 4),
        chain_bias=0.45,
        carried_value_prob=0.28,
        trip_count=(100, 2000),
        times_entered=(1, 8),
    ),
    # Large unrolled-style bodies with very high register pressure.
    "large": GeneratorProfile(
        name="large",
        n_ops=(40, 72),
        mem_fraction=0.38,
        store_fraction=0.28,
        mul_fraction=0.55,
        div_prob=0.01,
        sqrt_prob=0.005,
        n_recurrences=(0, 1),
        n_live_ins=(4, 10),
        chain_bias=0.30,
        carried_value_prob=0.32,
        trip_count=(200, 3000),
        times_entered=(1, 6),
    ),
}


def _rand_int(rng: np.random.Generator, bounds: Tuple[int, int]) -> int:
    low, high = bounds
    if high <= low:
        return low
    return int(rng.integers(low, high + 1))


def _pick_operand(
    rng: np.random.Generator, values: List[int], chain_bias: float
) -> int:
    """Pick a producer for an operand, biased towards recent values."""
    if len(values) == 1:
        return values[0]
    if rng.random() < chain_bias:
        # Geometric bias towards the most recently produced values.
        window = min(len(values), 4)
        idx = len(values) - 1 - int(rng.integers(0, window))
        return values[idx]
    return values[int(rng.integers(0, len(values)))]


def generate_loop(
    rng: np.random.Generator,
    profile: GeneratorProfile,
    index: int = 0,
    *,
    name: Optional[str] = None,
) -> Loop:
    """Generate one loop drawn from ``profile`` using ``rng``.

    The construction is layered: live-in values and loads first, then
    compute operations consuming previously produced values, then stores,
    then loop-carried back edges closing the requested recurrences.  Every
    load is guaranteed at least one consumer and the resulting graph never
    contains a zero-distance cycle.
    """
    graph = DepGraph()
    n_ops = _rand_int(rng, profile.n_ops)
    n_mem = max(1, int(round(profile.mem_fraction * n_ops)))
    n_stores = max(1, int(round(profile.store_fraction * n_mem)))
    n_loads = max(1, n_mem - n_stores)
    n_compute = max(1, n_ops - n_loads - n_stores)
    n_live_ins = _rand_int(rng, profile.n_live_ins)

    values: List[int] = []
    compute_nodes: List[int] = []

    for k in range(n_live_ins):
        values.append(graph.add_node(OpType.LIVE_IN, name=f"inv{k}"))

    for k in range(n_loads):
        array = f"arr{int(rng.integers(0, max(2, n_loads)))}"
        stride = int(rng.choice([8, 8, 8, 16, 32, 64]))
        ref = MemRef(array=array, stride_bytes=stride,
                     offset_bytes=8 * int(rng.integers(0, 4)))
        values.append(graph.add_node(OpType.LOAD, name=f"ld{k}", mem_ref=ref))

    for k in range(n_compute):
        roll = rng.random()
        if roll < profile.div_prob:
            op = OpType.FDIV
        elif roll < profile.div_prob + profile.sqrt_prob:
            op = OpType.FSQRT
        elif rng.random() < profile.mul_fraction:
            op = OpType.FMUL
        else:
            op = OpType.FADD
        node = graph.add_node(op, name=f"{op.mnemonic}{k}")
        n_operands = 1 if op is OpType.FSQRT else 2
        chosen = set()
        for _ in range(n_operands):
            operand = _pick_operand(rng, values, profile.chain_bias)
            if operand not in chosen:
                # Some operands are values produced a few iterations ago
                # (scalar-replaced array elements); they stay live across
                # iterations and raise the register pressure.
                distance = 0
                if (
                    profile.carried_value_prob > 0.0
                    and graph.node(operand).op is not OpType.LIVE_IN
                    and rng.random() < profile.carried_value_prob
                ):
                    distance = int(rng.integers(1, 5))
                graph.add_edge(operand, node, distance=distance)
                chosen.add(operand)
        values.append(node)
        compute_nodes.append(node)

    # Stores consume compute results when possible (falling back to loads).
    store_candidates = compute_nodes or values
    for k in range(n_stores):
        src = store_candidates[int(rng.integers(0, len(store_candidates)))]
        ref = MemRef(array=f"out{k % 3}", stride_bytes=8)
        store = graph.add_node(OpType.STORE, name=f"st{k}", mem_ref=ref)
        graph.add_edge(src, store)

    # Give every load at least one consumer.
    for op in graph.memory_operations():
        if op.op is OpType.LOAD and not graph.successors(op.node_id):
            if compute_nodes:
                target = compute_nodes[int(rng.integers(0, len(compute_nodes)))]
                graph.add_edge(op.node_id, target)
            else:
                ref = MemRef(array="copy_out", stride_bytes=8)
                store = graph.add_node(OpType.STORE, name="st_copy", mem_ref=ref)
                graph.add_edge(op.node_id, store)

    # Close the requested number of recurrences with loop-carried edges.
    n_rec = _rand_int(rng, profile.n_recurrences)
    for _ in range(n_rec):
        if not compute_nodes:
            break
        head = compute_nodes[int(rng.integers(0, len(compute_nodes)))]
        # Walk forward along zero-distance edges to find a descendant.
        tail = head
        for _ in range(int(rng.integers(1, 5))):
            succ = [
                e.dst
                for e in graph.out_edges(tail)
                if e.distance == 0 and graph.node(e.dst).op.is_compute
            ]
            if not succ:
                break
            tail = succ[int(rng.integers(0, len(succ)))]
        distance = _rand_int(rng, profile.recurrence_distance)
        graph.add_edge(tail, head, distance=distance)

    loop_name = name or f"gen_{profile.name}_{index}"
    return Loop(
        name=loop_name,
        graph=graph,
        trip_count=_rand_int(rng, profile.trip_count),
        times_entered=_rand_int(rng, profile.times_entered),
        source="generated",
        attributes={"profile": profile.name},
    )
