"""Synthetic memory address streams for the real-memory simulation.

The paper's real-memory scenario simulates the whole program through a
memory-hierarchy simulator.  The scheduler output only fixes *when* each
memory operation issues; the *addresses* come from the program.  For our
synthetic workbench the addresses are synthesized from each memory
operation's :class:`~repro.ddg.operations.MemRef` descriptor: a base
address per array plus a per-iteration stride, which reproduces the
streaming / strided behaviour of numerical loops (and therefore realistic
spatial locality in the cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.ddg.loop import Loop
from repro.ddg.operations import MemRef

__all__ = ["AddressStream", "loop_address_streams", "array_base_addresses"]

#: Arrays are laid out this far apart so that distinct arrays never share
#: a cache line but still collide in the (32 KB) cache when the footprint
#: grows, like distinct arrays in a real address space.
_ARRAY_SPACING_BYTES = 1 << 20
#: Extra per-array stagger so that array bases do not all map to the same
#: cache set (the spacing alone is a multiple of any power-of-two cache
#: size, which would make every array alias set 0 of a direct-mapped
#: cache and turn streaming loops into pathological conflict storms).
_ARRAY_STAGGER_BYTES = 8 * 1024 + 64
#: Default footprint of an array when the MemRef does not specify one.
_DEFAULT_FOOTPRINT_BYTES = 1 << 18


@dataclass(frozen=True)
class AddressStream:
    """The address sequence of one memory operation across iterations."""

    node_id: int
    base: int
    stride: int
    footprint: int

    def address(self, iteration: int) -> int:
        """Address accessed at the given loop iteration (wraps on footprint)."""
        if self.stride == 0:
            return self.base
        offset = (self.stride * iteration) % max(self.footprint, abs(self.stride))
        return self.base + offset

    def addresses(self, iterations: int, start: int = 0) -> np.ndarray:
        """Vector of addresses for ``iterations`` consecutive iterations."""
        idx = np.arange(start, start + iterations, dtype=np.int64)
        if self.stride == 0:
            return np.full(iterations, self.base, dtype=np.int64)
        span = max(self.footprint, abs(self.stride))
        return self.base + (self.stride * idx) % span


def array_base_addresses(loop: Loop) -> Dict[str, int]:
    """Deterministic base address for every array referenced by the loop."""
    arrays = sorted(
        {op.mem_ref.array for op in loop.graph.memory_operations() if op.mem_ref}
    )
    return {
        name: (index + 1) * _ARRAY_SPACING_BYTES + index * _ARRAY_STAGGER_BYTES
        for index, name in enumerate(arrays)
    }


def loop_address_streams(loop: Loop) -> List[AddressStream]:
    """Address streams of every memory operation of the loop.

    Spill loads/stores inserted by the scheduler (which carry no
    :class:`MemRef`) are given a dedicated, cache-resident scratch region:
    spill traffic in these machines goes to the stack and hits in the L1
    essentially always.
    """
    bases = array_base_addresses(loop)
    spill_base = (
        (len(bases) + 2) * _ARRAY_SPACING_BYTES
        + (len(bases) + 1) * _ARRAY_STAGGER_BYTES
    )
    streams: List[AddressStream] = []
    spill_slot = 0
    for op in loop.graph.memory_operations():
        ref: MemRef | None = op.mem_ref
        if ref is None:
            streams.append(
                AddressStream(
                    node_id=op.node_id,
                    base=spill_base + 64 * spill_slot,
                    stride=0,
                    footprint=64,
                )
            )
            spill_slot += 1
            continue
        footprint = ref.footprint_bytes or _DEFAULT_FOOTPRINT_BYTES
        streams.append(
            AddressStream(
                node_id=op.node_id,
                base=bases[ref.array] + ref.offset_bytes,
                stride=ref.stride_bytes,
                footprint=footprint,
            )
        )
    return streams
