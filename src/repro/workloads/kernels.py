"""Hand-written dependence graphs of classic numerical kernels.

These kernels play the role of the "recognizable" part of the workbench:
loop bodies that appear, in one form or another, throughout the Perfect
Club programs and throughout numerical/multimedia codes in general
(BLAS-1/2 operations, Livermore-loop fragments, stencils, linear
recurrences, and a few multimedia-style kernels).  Each builder returns a
fresh :class:`~repro.ddg.loop.Loop`; several accept parameters (number of
taps, unroll factor, stencil width) so the suite can instantiate many
variants of the same kernel with different register pressure and
resource balance.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ddg.loop import Loop
from repro.workloads.builder import LoopBuilder

__all__ = ["KERNEL_BUILDERS", "build_kernel", "kernel_names"]


# --------------------------------------------------------------------------- #
# BLAS-1 style kernels
# --------------------------------------------------------------------------- #
def vadd(trip_count: int = 400) -> Loop:
    """``c[i] = a[i] + b[i]`` -- memory-bound streaming kernel."""
    b = LoopBuilder("vadd")
    x = b.load("a")
    y = b.load("b")
    s = b.add(x, y)
    b.store("c", s)
    return b.build(trip_count=trip_count)


def daxpy(trip_count: int = 400) -> Loop:
    """``y[i] = alpha * x[i] + y[i]`` -- the BLAS-1 workhorse."""
    b = LoopBuilder("daxpy")
    alpha = b.live_in("alpha")
    x = b.load("x")
    y = b.load("y")
    ax = b.mul(alpha, x)
    s = b.add(ax, y)
    b.store("y", s)
    return b.build(trip_count=trip_count)


def dot_product(trip_count: int = 400) -> Loop:
    """``s += x[i] * y[i]`` -- reduction: recurrence through the adder."""
    b = LoopBuilder("dot_product")
    x = b.load("x")
    y = b.load("y")
    p = b.mul(x, y)
    s = b.add(p, p, name="acc")
    # The accumulator is both produced and consumed by the add, one
    # iteration apart.
    b.carried(s, s, distance=1)
    return b.build(trip_count=trip_count)


def vsum(trip_count: int = 400) -> Loop:
    """``s += x[i]`` -- the simplest reduction."""
    b = LoopBuilder("vsum")
    x = b.load("x")
    s = b.add(x, x, name="acc")
    b.carried(s, s, distance=1)
    return b.build(trip_count=trip_count)


def norm2(trip_count: int = 400) -> Loop:
    """``s += x[i] * x[i]`` -- squared 2-norm reduction."""
    b = LoopBuilder("norm2")
    x = b.load("x")
    p = b.mul(x, x)
    s = b.add(p, p, name="acc")
    b.carried(s, s, distance=1)
    return b.build(trip_count=trip_count)


def vscale_div(trip_count: int = 300) -> Loop:
    """``c[i] = a[i] / b[i]`` -- exercise the unpipelined divider."""
    b = LoopBuilder("vscale_div")
    x = b.load("a")
    y = b.load("b")
    q = b.div(x, y)
    b.store("c", q)
    return b.build(trip_count=trip_count)


def distance_sqrt(trip_count: int = 300) -> Loop:
    """``d[i] = sqrt(x[i]^2 + y[i]^2)`` -- 2D Euclidean distance."""
    b = LoopBuilder("distance_sqrt")
    x = b.load("x")
    y = b.load("y")
    xx = b.mul(x, x)
    yy = b.mul(y, y)
    s = b.add(xx, yy)
    d = b.sqrt(s)
    b.store("d", d)
    return b.build(trip_count=trip_count)


# --------------------------------------------------------------------------- #
# Livermore-loop style fragments
# --------------------------------------------------------------------------- #
def hydro_fragment(trip_count: int = 400) -> Loop:
    """Livermore kernel 1: ``x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])``."""
    b = LoopBuilder("hydro_fragment")
    q = b.live_in("q")
    r = b.live_in("r")
    t = b.live_in("t")
    y = b.load("y")
    z10 = b.load("z", offset=80)
    z11 = b.load("z", offset=88)
    rz = b.mul(r, z10)
    tz = b.mul(t, z11)
    inner = b.add(rz, tz)
    prod = b.mul(y, inner)
    x = b.add(q, prod)
    b.store("x", x)
    return b.build(trip_count=trip_count)


def iccg(trip_count: int = 200) -> Loop:
    """Livermore kernel 2 (ICCG excerpt): ``x[i] = x[i] - z[i]*x[i-1]``."""
    b = LoopBuilder("iccg")
    xi = b.load("x")
    z = b.load("z")
    prod = b.mul(z, z, name="z_xprev")
    diff = b.sub(xi, prod)
    b.store("x", diff)
    # x[i-1] is the value stored by the previous iteration: register
    # recurrence from the subtraction into the multiply, distance 1.
    b.carried(diff, prod, distance=1)
    return b.build(trip_count=trip_count)


def banded_linear(trip_count: int = 200, bands: int = 3) -> Loop:
    """Livermore kernel 4 flavour: banded matrix times vector accumulation."""
    b = LoopBuilder(f"banded_linear_{bands}")
    acc = None
    for band in range(bands):
        a = b.load(f"a{band}", offset=band * 8)
        x = b.load("x", offset=band * 8)
        p = b.mul(a, x)
        acc = p if acc is None else b.add(acc, p)
    assert acc is not None
    b.store("y", acc)
    return b.build(trip_count=trip_count)


def tridiagonal(trip_count: int = 200) -> Loop:
    """Livermore kernel 5: ``x[i] = z[i] * (y[i] - x[i-1])`` -- tight recurrence."""
    b = LoopBuilder("tridiagonal")
    y = b.load("y")
    z = b.load("z")
    diff = b.sub(y, y, name="y_minus_xprev")
    x = b.mul(z, diff)
    b.store("x", x)
    b.carried(x, diff, distance=1)
    return b.build(trip_count=trip_count)


def linear_recurrence(trip_count: int = 200) -> Loop:
    """Livermore kernel 6 flavour: ``w[i] = w[i-1]*b[i] + c[i]``."""
    b = LoopBuilder("linear_recurrence")
    bb = b.load("b")
    c = b.load("c")
    prod = b.mul(bb, bb, name="w_prev_times_b")
    w = b.add(prod, c)
    b.store("w", w)
    b.carried(w, prod, distance=1)
    return b.build(trip_count=trip_count)


def equation_of_state(trip_count: int = 300) -> Loop:
    """Livermore kernel 7: long expression with high ILP.

    ``x[i] = u[i] + r*(z[i] + r*y[i]) + t*(u[i+3] + r*(u[i+2] + r*u[i+1])
    + t*(u[i+6] + q*(u[i+5] + q*u[i+4])))``
    """
    b = LoopBuilder("equation_of_state")
    r = b.live_in("r")
    t = b.live_in("t")
    q = b.live_in("q")
    u0 = b.load("u")
    u1 = b.load("u", offset=8)
    u2 = b.load("u", offset=16)
    u3 = b.load("u", offset=24)
    u4 = b.load("u", offset=32)
    u5 = b.load("u", offset=40)
    u6 = b.load("u", offset=48)
    y = b.load("y")
    z = b.load("z")
    ry = b.mul(r, y)
    z_ry = b.add(z, ry)
    term1 = b.mul(r, z_ry)
    ru1 = b.mul(r, u1)
    u2_ru1 = b.add(u2, ru1)
    r_u2ru1 = b.mul(r, u2_ru1)
    u3_term = b.add(u3, r_u2ru1)
    qu4 = b.mul(q, u4)
    u5_qu4 = b.add(u5, qu4)
    q_u5qu4 = b.mul(q, u5_qu4)
    u6_term = b.add(u6, q_u5qu4)
    t_u6 = b.mul(t, u6_term)
    inner = b.add(u3_term, t_u6)
    t_inner = b.mul(t, inner)
    partial = b.add(u0, term1)
    x = b.add(partial, t_inner)
    b.store("x", x)
    return b.build(trip_count=trip_count)


def first_sum(trip_count: int = 400) -> Loop:
    """Livermore kernel 11: ``x[i] = x[i-1] + y[i]`` -- partial sums."""
    b = LoopBuilder("first_sum")
    y = b.load("y")
    x = b.add(y, y, name="x")
    b.store("x", x)
    b.carried(x, x, distance=1)
    return b.build(trip_count=trip_count)


def first_difference(trip_count: int = 400) -> Loop:
    """Livermore kernel 12: ``x[i] = y[i+1] - y[i]``."""
    b = LoopBuilder("first_difference")
    y0 = b.load("y")
    y1 = b.load("y", offset=8)
    d = b.sub(y1, y0)
    b.store("x", d)
    return b.build(trip_count=trip_count)


def state_fragment(trip_count: int = 150) -> Loop:
    """A 2D hydrodynamics-style fragment with many independent expressions."""
    b = LoopBuilder("state_fragment")
    c1 = b.live_in("c1")
    c2 = b.live_in("c2")
    results = []
    for j, array in enumerate(("za", "zb", "zc", "zd")):
        u = b.load(array)
        v = b.load(array, offset=8)
        w = b.load(f"{array}_n", offset=0)
        p1 = b.mul(c1, u)
        p2 = b.mul(c2, v)
        s1 = b.add(p1, p2)
        s2 = b.add(s1, w)
        results.append(s2)
        b.store(f"{array}_out", s2)
    # A final cross term couples two of the expressions.
    cross = b.mul(results[0], results[2])
    b.store("cross", cross)
    return b.build(trip_count=trip_count)


# --------------------------------------------------------------------------- #
# Stencils and filters
# --------------------------------------------------------------------------- #
def jacobi1d(trip_count: int = 400, width: int = 3) -> Loop:
    """1D Jacobi relaxation: average of ``width`` neighbouring points."""
    b = LoopBuilder(f"jacobi1d_{width}")
    scale = b.live_in("scale")
    acc = None
    for k in range(width):
        a = b.load("a", offset=8 * k)
        acc = a if acc is None else b.add(acc, a)
    assert acc is not None
    out = b.mul(acc, scale)
    b.store("b", out)
    return b.build(trip_count=trip_count)


def fir_filter(trip_count: int = 300, taps: int = 4) -> Loop:
    """FIR filter with ``taps`` coefficient taps held in registers."""
    b = LoopBuilder(f"fir_{taps}")
    acc = None
    for k in range(taps):
        c = b.live_in(f"c{k}")
        x = b.load("x", offset=8 * k)
        p = b.mul(c, x)
        acc = p if acc is None else b.add(acc, p)
    assert acc is not None
    b.store("y", acc)
    return b.build(trip_count=trip_count)


def horner(trip_count: int = 300, degree: int = 4) -> Loop:
    """Polynomial evaluation ``p = p*x + c[k]`` per point (coefficients live-in)."""
    b = LoopBuilder(f"horner_{degree}")
    x = b.load("x")
    p = b.live_in("c0")
    for k in range(1, degree + 1):
        c = b.live_in(f"c{k}")
        px = b.mul(p, x)
        p = b.add(px, c)
    b.store("p", p)
    return b.build(trip_count=trip_count)


def stencil5_weighted(trip_count: int = 300) -> Loop:
    """Weighted 5-point stencil with distinct live-in weights."""
    b = LoopBuilder("stencil5_weighted")
    acc = None
    for k in range(5):
        w = b.live_in(f"w{k}")
        a = b.load("a", offset=8 * (k - 2))
        p = b.mul(w, a)
        acc = p if acc is None else b.add(acc, p)
    assert acc is not None
    b.store("out", acc)
    return b.build(trip_count=trip_count)


# --------------------------------------------------------------------------- #
# BLAS-2 / matrix kernels
# --------------------------------------------------------------------------- #
def matvec_inner(trip_count: int = 200) -> Loop:
    """Inner loop of a dense matrix-vector product (row-major matrix)."""
    b = LoopBuilder("matvec_inner")
    a = b.load("A", stride=8)
    x = b.load("x", stride=8)
    p = b.mul(a, x)
    s = b.add(p, p, name="acc")
    b.carried(s, s, distance=1)
    return b.build(trip_count=trip_count)


def matmul_inner(trip_count: int = 200) -> Loop:
    """Inner (k) loop of a triple-nested matrix multiply, column access strided."""
    b = LoopBuilder("matmul_inner")
    a = b.load("A", stride=8)
    bb = b.load("B", stride=512)   # column access: stride = row length
    p = b.mul(a, bb)
    s = b.add(p, p, name="acc")
    b.carried(s, s, distance=1)
    return b.build(trip_count=trip_count, times_entered=4)


def rank1_update(trip_count: int = 200) -> Loop:
    """GER-style rank-1 update inner loop: ``A[i][j] += x[i]*y[j]``."""
    b = LoopBuilder("rank1_update")
    xi = b.live_in("x_i")
    y = b.load("y")
    a = b.load("A")
    p = b.mul(xi, y)
    s = b.add(a, p)
    b.store("A", s)
    return b.build(trip_count=trip_count, times_entered=4)


def gauss_elim_inner(trip_count: int = 200) -> Loop:
    """Gaussian elimination row update: ``a[j] -= factor * pivot_row[j]``."""
    b = LoopBuilder("gauss_elim_inner")
    factor = b.live_in("factor")
    pivot = b.load("pivot_row")
    a = b.load("a_row")
    p = b.mul(factor, pivot)
    s = b.sub(a, p)
    b.store("a_row", s)
    return b.build(trip_count=trip_count, times_entered=8)


# --------------------------------------------------------------------------- #
# Multimedia-style kernels
# --------------------------------------------------------------------------- #
def complex_multiply(trip_count: int = 300) -> Loop:
    """Element-wise complex vector multiply (4 mults, 2 adds, 4 loads, 2 stores)."""
    b = LoopBuilder("complex_multiply")
    ar = b.load("a_re")
    ai = b.load("a_im")
    br = b.load("b_re")
    bi = b.load("b_im")
    rr = b.mul(ar, br)
    ii = b.mul(ai, bi)
    ri = b.mul(ar, bi)
    ir = b.mul(ai, br)
    re = b.sub(rr, ii)
    im = b.add(ri, ir)
    b.store("c_re", re)
    b.store("c_im", im)
    return b.build(trip_count=trip_count)


def rgb_to_luma(trip_count: int = 400) -> Loop:
    """Colour conversion: ``y = wr*r + wg*g + wb*b`` with live-in weights."""
    b = LoopBuilder("rgb_to_luma")
    wr = b.live_in("wr")
    wg = b.live_in("wg")
    wb = b.live_in("wb")
    r = b.load("r")
    g = b.load("g")
    bl = b.load("b")
    pr = b.mul(wr, r)
    pg = b.mul(wg, g)
    pb = b.mul(wb, bl)
    s1 = b.add(pr, pg)
    s2 = b.add(s1, pb)
    b.store("y", s2)
    return b.build(trip_count=trip_count)


def alpha_blend(trip_count: int = 400) -> Loop:
    """``out = alpha*src + (1-alpha)*dst`` per element."""
    b = LoopBuilder("alpha_blend")
    alpha = b.live_in("alpha")
    one_minus = b.live_in("one_minus_alpha")
    src = b.load("src")
    dst = b.load("dst")
    p1 = b.mul(alpha, src)
    p2 = b.mul(one_minus, dst)
    out = b.add(p1, p2)
    b.store("out", out)
    return b.build(trip_count=trip_count)


def normalize3(trip_count: int = 200) -> Loop:
    """Normalize a packed 3-vector: divide each component by its norm."""
    b = LoopBuilder("normalize3")
    x = b.load("vx")
    y = b.load("vy")
    z = b.load("vz")
    xx = b.mul(x, x)
    yy = b.mul(y, y)
    zz = b.mul(z, z)
    s1 = b.add(xx, yy)
    s2 = b.add(s1, zz)
    n = b.sqrt(s2)
    ox = b.div(x, n)
    oy = b.div(y, n)
    oz = b.div(z, n)
    b.store("ox", ox)
    b.store("oy", oy)
    b.store("oz", oz)
    return b.build(trip_count=trip_count)


def newton_raphson_step(trip_count: int = 200) -> Loop:
    """Newton-Raphson reciprocal refinement: ``r = r*(2 - d*r)`` (recurrence-free per element)."""
    b = LoopBuilder("newton_raphson_step")
    two = b.live_in("two")
    d = b.load("d")
    r = b.load("r")
    dr = b.mul(d, r)
    corr = b.sub(two, dr)
    rn = b.mul(r, corr)
    b.store("r", rn)
    return b.build(trip_count=trip_count)


def running_average(trip_count: int = 300) -> Loop:
    """Exponential moving average: ``avg = beta*avg + (1-beta)*x[i]``."""
    b = LoopBuilder("running_average")
    beta = b.live_in("beta")
    one_minus = b.live_in("one_minus_beta")
    x = b.load("x")
    scaled_avg = b.mul(beta, beta, name="beta_avg")
    scaled_x = b.mul(one_minus, x)
    avg = b.add(scaled_avg, scaled_x)
    b.store("avg", avg)
    b.carried(avg, scaled_avg, distance=1)
    return b.build(trip_count=trip_count)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
KERNEL_BUILDERS: Dict[str, Callable[..., Loop]] = {
    "vadd": vadd,
    "daxpy": daxpy,
    "dot_product": dot_product,
    "vsum": vsum,
    "norm2": norm2,
    "vscale_div": vscale_div,
    "distance_sqrt": distance_sqrt,
    "hydro_fragment": hydro_fragment,
    "iccg": iccg,
    "banded_linear": banded_linear,
    "tridiagonal": tridiagonal,
    "linear_recurrence": linear_recurrence,
    "equation_of_state": equation_of_state,
    "first_sum": first_sum,
    "first_difference": first_difference,
    "state_fragment": state_fragment,
    "jacobi1d": jacobi1d,
    "fir_filter": fir_filter,
    "horner": horner,
    "stencil5_weighted": stencil5_weighted,
    "matvec_inner": matvec_inner,
    "matmul_inner": matmul_inner,
    "rank1_update": rank1_update,
    "gauss_elim_inner": gauss_elim_inner,
    "complex_multiply": complex_multiply,
    "rgb_to_luma": rgb_to_luma,
    "alpha_blend": alpha_blend,
    "normalize3": normalize3,
    "newton_raphson_step": newton_raphson_step,
    "running_average": running_average,
}


def kernel_names() -> List[str]:
    """Names of every hand-written kernel, in registry order."""
    return list(KERNEL_BUILDERS.keys())


def build_kernel(name: str, **params: object) -> Loop:
    """Build one named kernel (optionally passing builder parameters)."""
    try:
        builder = KERNEL_BUILDERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(kernel_names())}"
        ) from exc
    return builder(**params)
