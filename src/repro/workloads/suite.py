"""Workbench construction: mixing named kernels and generated loops.

``perfect_club_like_suite`` is the stand-in for the paper's 1258-loop
Perfect Club workbench.  The default size is kept moderate (a few hundred
loops) because the scheduler is pure Python; the full paper-scale
workbench is obtained simply by asking for more loops -- the generator is
deterministic in the seed, and the first ``n`` loops of a larger suite are
always identical to a smaller suite with the same seed.

Determinism also makes the loops *content-addressable*: a regenerated
workbench produces the same :meth:`repro.ddg.loop.Loop.fingerprint`
values, so evaluation results cached by :class:`repro.eval.cache.EvalCache`
(possibly on disk, possibly by another process) are reusable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.ddg.loop import Loop
from repro.ddg.transform import unroll
from repro.workloads.generator import PROFILES, GeneratorProfile, generate_loop
from repro.workloads.kernels import KERNEL_BUILDERS

__all__ = [
    "perfect_club_like_suite",
    "small_suite",
    "tiny_suite",
    "DEFAULT_PROFILE_MIX",
    "PAPER_LOOP_COUNT",
    "TABLE1_BOUND_TARGETS",
    "WorkbenchTier",
    "WorkbenchSizeError",
    "WORKBENCH_TIERS",
    "tier_names",
    "workbench_tier",
    "build_workbench",
]

#: Number of software-pipelinable Perfect Club loops in the paper's
#: evaluation -- the size of the ``full`` workbench tier.
PAPER_LOOP_COUNT: int = 1258

#: The paper's Table 1 loop-bound breakdown on the baseline monolithic
#: S128 machine, as fractions of the workbench: roughly half the loops
#: memory-bound, a fifth FU-bound and a third recurrence-bound.  The
#: ``full`` tier's generator mix is calibrated so its *static* breakdown
#: (argmax of the MII components, see
#: :func:`repro.eval.metrics.static_bound_breakdown`) lands near these
#: targets; ``tests/test_workloads_suite.py`` pins the tolerance.
TABLE1_BOUND_TARGETS: Dict[str, float] = {"mem": 0.50, "fu": 0.20, "rec": 0.30}

#: Mix of generator profiles (fractions sum to 1).  Chosen so that the
#: loop-bound breakdown of the workbench on the baseline monolithic S128
#: machine roughly matches the paper's Table 1 (about half the loops
#: memory-bound, a fifth FU-bound and a third recurrence-bound).
DEFAULT_PROFILE_MIX: Dict[str, float] = {
    "memory_bound": 0.40,
    "compute_bound": 0.16,
    "recurrence_bound": 0.28,
    "balanced": 0.10,
    "large": 0.06,
}

#: Kernel parameter variants instantiated by the suite (name, kwargs).
_KERNEL_VARIANTS = [
    ("banded_linear", {"bands": 3}),
    ("banded_linear", {"bands": 5}),
    ("jacobi1d", {"width": 3}),
    ("jacobi1d", {"width": 5}),
    ("fir_filter", {"taps": 4}),
    ("fir_filter", {"taps": 8}),
    ("horner", {"degree": 4}),
    ("horner", {"degree": 8}),
]

#: Unrolled kernel variants: numerical codes are routinely unrolled before
#: software pipelining, and the unrolled bodies carry most of the register
#: pressure that the paper's register-file study is about.
_UNROLLED_VARIANTS = [
    ("daxpy", 4),
    ("daxpy", 8),
    ("vadd", 8),
    ("dot_product", 4),
    ("hydro_fragment", 4),
    ("first_difference", 8),
    ("complex_multiply", 4),
    ("rgb_to_luma", 4),
    ("alpha_blend", 4),
    ("equation_of_state", 2),
    ("distance_sqrt", 4),
    ("stencil5_weighted", 2),
    ("gauss_elim_inner", 4),
    ("matvec_inner", 4),
]


def _kernel_loops() -> List[Loop]:
    """Every named kernel, its parameter variants and its unrolled variants."""
    loops = [builder() for builder in KERNEL_BUILDERS.values()]
    for name, kwargs in _KERNEL_VARIANTS:
        loop = KERNEL_BUILDERS[name](**kwargs)
        loop.name = f"{loop.name}_variant"
        loops.append(loop)
    for name, factor in _UNROLLED_VARIANTS:
        loops.append(unroll(KERNEL_BUILDERS[name](), factor))
    return loops


def perfect_club_like_suite(
    n_loops: int = 256,
    *,
    seed: int = 2003,
    profile_mix: Optional[Dict[str, float]] = None,
    include_kernels: bool = True,
) -> List[Loop]:
    """Build the workbench: ``n_loops`` loops, deterministic in ``seed``.

    Parameters
    ----------
    n_loops:
        Total number of loops.  The paper uses 1258; the default (256) is
        sized for pure-Python scheduling times while preserving the
        statistical mix.
    seed:
        Seed of the ``numpy`` generator driving all random choices.
    profile_mix:
        Optional override of :data:`DEFAULT_PROFILE_MIX`.
    include_kernels:
        When true (default), the hand-written kernels are placed at the
        front of the workbench and generated loops fill the remainder.
    """
    if n_loops < 1:
        raise ValueError("n_loops must be positive")
    mix = dict(profile_mix or DEFAULT_PROFILE_MIX)
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("profile mix must have positive total weight")
    names = sorted(mix)
    weights = np.array([mix[name] / total for name in names])

    loops: List[Loop] = []
    if include_kernels:
        loops.extend(_kernel_loops())
    loops = loops[:n_loops]

    rng = np.random.default_rng(seed)
    index = 0
    while len(loops) < n_loops:
        profile_name = str(rng.choice(names, p=weights))
        profile: GeneratorProfile = PROFILES[profile_name]
        loops.append(generate_loop(rng, profile, index=index))
        index += 1
    return loops


def small_suite(n_loops: int = 48, *, seed: int = 2003) -> List[Loop]:
    """A small workbench used by the integration tests and quick examples."""
    return perfect_club_like_suite(n_loops=n_loops, seed=seed)


def tiny_suite(*, seed: int = 2003) -> List[Loop]:
    """A handful of loops (all named kernels only) for unit tests."""
    return perfect_club_like_suite(n_loops=16, seed=seed)


# --------------------------------------------------------------------------- #
# Stratified workbench tiers
# --------------------------------------------------------------------------- #
class WorkbenchSizeError(ValueError):
    """A requested loop count exceeds the selected workbench tier.

    Raised (instead of silently truncating to the tier size) so a
    ``--loops`` request that cannot be honoured is reported together
    with the sizes that *are* available.
    """


@dataclass(frozen=True)
class WorkbenchTier:
    """One named size of the Perfect-Club-like workbench.

    All tiers share the generator seed and the kernel prefix, so a
    smaller tier is always an exact prefix of a larger one: results
    cached or checkpointed for ``small`` are reused verbatim when the
    same configuration is later evaluated on ``standard`` or ``full``.
    """

    name: str
    n_loops: int
    description: str
    seed: int = 2003
    #: ``None`` means :data:`DEFAULT_PROFILE_MIX` (the Table-1-calibrated
    #: mix shared by every stock tier).
    profile_mix: Optional[Mapping[str, float]] = None
    include_kernels: bool = True

    def check_size(self, n_loops: Optional[int]) -> int:
        """Validate a loop-count request against this tier.

        Returns the effective count (``None`` means the whole tier);
        raises :class:`WorkbenchSizeError` -- naming every registered
        size -- when the request exceeds the tier.  The single source of
        the "never silently truncate" contract: the CLI, the session
        verbs and the service submission path all validate through here,
        so their error messages cannot drift apart.
        """
        if n_loops is None:
            return self.n_loops
        if n_loops < 1:
            raise WorkbenchSizeError(
                f"n_loops must be positive, got {n_loops}"
            )
        if n_loops > self.n_loops:
            sizes = ", ".join(
                f"{tier.name} ({tier.n_loops})" for tier in WORKBENCH_TIERS.values()
            )
            raise WorkbenchSizeError(
                f"the {self.name!r} workbench tier has {self.n_loops} loops; "
                f"cannot evaluate {n_loops} (available tiers: {sizes})"
            )
        return n_loops

    def build(self, n_loops: Optional[int] = None, *, seed: Optional[int] = None) -> List[Loop]:
        """Build this tier's workbench (optionally only its first loops).

        ``n_loops`` larger than the tier raises
        :class:`WorkbenchSizeError` (see :meth:`check_size`); asking for
        fewer loops returns the deterministic prefix.
        """
        return perfect_club_like_suite(
            n_loops=self.check_size(n_loops),
            seed=self.seed if seed is None else seed,
            profile_mix=dict(self.profile_mix) if self.profile_mix else None,
            include_kernels=self.include_kernels,
        )


#: The stratified workbench registry, smallest tier first.  ``full`` is
#: the paper-scale workbench: all 1258 software-pipelinable loops, with
#: the kernel/generator mix calibrated to Table 1 (see
#: :data:`TABLE1_BOUND_TARGETS`).
WORKBENCH_TIERS: Dict[str, WorkbenchTier] = {
    tier.name: tier
    for tier in (
        WorkbenchTier(
            "tiny", 16,
            "named kernels only; unit tests and doc examples",
        ),
        WorkbenchTier(
            "small", 48,
            "kernels + first generated loops; smoke tests and CI benches",
        ),
        WorkbenchTier(
            "standard", 256,
            "the default evaluation workbench (statistical mix preserved)",
        ),
        WorkbenchTier(
            "full", PAPER_LOOP_COUNT,
            "paper scale: all 1258 loops, Table-1-calibrated mix",
        ),
    )
}


def tier_names() -> List[str]:
    """Every registered workbench tier name, smallest first."""
    return list(WORKBENCH_TIERS)


def workbench_tier(name: str) -> WorkbenchTier:
    """Look up a tier by name (raises ``ValueError`` listing the options)."""
    tier = WORKBENCH_TIERS.get(name)
    if tier is None:
        raise ValueError(
            f"unknown workbench tier {name!r} "
            f"(known: {', '.join(tier_names())})"
        )
    return tier


def build_workbench(
    tier: str = "standard",
    *,
    n_loops: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[Loop]:
    """Build the workbench of a named tier.

    ``n_loops`` limits the build to the tier's first loops (tiers are
    prefix-stable, see :class:`WorkbenchTier`); a request *larger* than
    the tier raises :class:`WorkbenchSizeError` naming every available
    size instead of silently truncating.
    """
    return workbench_tier(tier).build(n_loops, seed=seed)
