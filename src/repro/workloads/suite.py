"""Workbench construction: mixing named kernels and generated loops.

``perfect_club_like_suite`` is the stand-in for the paper's 1258-loop
Perfect Club workbench.  The default size is kept moderate (a few hundred
loops) because the scheduler is pure Python; the full paper-scale
workbench is obtained simply by asking for more loops -- the generator is
deterministic in the seed, and the first ``n`` loops of a larger suite are
always identical to a smaller suite with the same seed.

Determinism also makes the loops *content-addressable*: a regenerated
workbench produces the same :meth:`repro.ddg.loop.Loop.fingerprint`
values, so evaluation results cached by :class:`repro.eval.cache.EvalCache`
(possibly on disk, possibly by another process) are reusable across runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ddg.loop import Loop
from repro.ddg.transform import unroll
from repro.workloads.generator import PROFILES, GeneratorProfile, generate_loop
from repro.workloads.kernels import KERNEL_BUILDERS

__all__ = ["perfect_club_like_suite", "small_suite", "tiny_suite", "DEFAULT_PROFILE_MIX"]

#: Mix of generator profiles (fractions sum to 1).  Chosen so that the
#: loop-bound breakdown of the workbench on the baseline monolithic S128
#: machine roughly matches the paper's Table 1 (about half the loops
#: memory-bound, a fifth FU-bound and a third recurrence-bound).
DEFAULT_PROFILE_MIX: Dict[str, float] = {
    "memory_bound": 0.40,
    "compute_bound": 0.16,
    "recurrence_bound": 0.28,
    "balanced": 0.10,
    "large": 0.06,
}

#: Kernel parameter variants instantiated by the suite (name, kwargs).
_KERNEL_VARIANTS = [
    ("banded_linear", {"bands": 3}),
    ("banded_linear", {"bands": 5}),
    ("jacobi1d", {"width": 3}),
    ("jacobi1d", {"width": 5}),
    ("fir_filter", {"taps": 4}),
    ("fir_filter", {"taps": 8}),
    ("horner", {"degree": 4}),
    ("horner", {"degree": 8}),
]

#: Unrolled kernel variants: numerical codes are routinely unrolled before
#: software pipelining, and the unrolled bodies carry most of the register
#: pressure that the paper's register-file study is about.
_UNROLLED_VARIANTS = [
    ("daxpy", 4),
    ("daxpy", 8),
    ("vadd", 8),
    ("dot_product", 4),
    ("hydro_fragment", 4),
    ("first_difference", 8),
    ("complex_multiply", 4),
    ("rgb_to_luma", 4),
    ("alpha_blend", 4),
    ("equation_of_state", 2),
    ("distance_sqrt", 4),
    ("stencil5_weighted", 2),
    ("gauss_elim_inner", 4),
    ("matvec_inner", 4),
]


def _kernel_loops() -> List[Loop]:
    """Every named kernel, its parameter variants and its unrolled variants."""
    loops = [builder() for builder in KERNEL_BUILDERS.values()]
    for name, kwargs in _KERNEL_VARIANTS:
        loop = KERNEL_BUILDERS[name](**kwargs)
        loop.name = f"{loop.name}_variant"
        loops.append(loop)
    for name, factor in _UNROLLED_VARIANTS:
        loops.append(unroll(KERNEL_BUILDERS[name](), factor))
    return loops


def perfect_club_like_suite(
    n_loops: int = 256,
    *,
    seed: int = 2003,
    profile_mix: Optional[Dict[str, float]] = None,
    include_kernels: bool = True,
) -> List[Loop]:
    """Build the workbench: ``n_loops`` loops, deterministic in ``seed``.

    Parameters
    ----------
    n_loops:
        Total number of loops.  The paper uses 1258; the default (256) is
        sized for pure-Python scheduling times while preserving the
        statistical mix.
    seed:
        Seed of the ``numpy`` generator driving all random choices.
    profile_mix:
        Optional override of :data:`DEFAULT_PROFILE_MIX`.
    include_kernels:
        When true (default), the hand-written kernels are placed at the
        front of the workbench and generated loops fill the remainder.
    """
    if n_loops < 1:
        raise ValueError("n_loops must be positive")
    mix = dict(profile_mix or DEFAULT_PROFILE_MIX)
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("profile mix must have positive total weight")
    names = sorted(mix)
    weights = np.array([mix[name] / total for name in names])

    loops: List[Loop] = []
    if include_kernels:
        loops.extend(_kernel_loops())
    loops = loops[:n_loops]

    rng = np.random.default_rng(seed)
    index = 0
    while len(loops) < n_loops:
        profile_name = str(rng.choice(names, p=weights))
        profile: GeneratorProfile = PROFILES[profile_name]
        loops.append(generate_loop(rng, profile, index=index))
        index += 1
    return loops


def small_suite(n_loops: int = 48, *, seed: int = 2003) -> List[Loop]:
    """A small workbench used by the integration tests and quick examples."""
    return perfect_club_like_suite(n_loops=n_loops, seed=seed)


def tiny_suite(*, seed: int = 2003) -> List[Loop]:
    """A handful of loops (all named kernels only) for unit tests."""
    return perfect_club_like_suite(n_loops=16, seed=seed)
