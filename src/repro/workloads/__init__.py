"""Workloads: the Perfect-Club-like loop workbench.

The paper's workbench is the set of 1258 software-pipelinable innermost
loops of the Perfect Club benchmark, extracted with the ICTINEO compiler.
Neither the benchmark sources nor ICTINEO are available, so this package
substitutes a synthetic workbench with the same *interface* (a list of
:class:`repro.ddg.loop.Loop` objects, i.e. dependence graphs plus trip
counts) and statistically similar *shape*:

* :mod:`repro.workloads.kernels` -- hand-written dependence graphs of
  classic numerical kernels (Livermore-loop style fragments, BLAS-1/2
  operations, stencils, recurrences, multimedia-style kernels).
* :mod:`repro.workloads.generator` -- a seeded random loop generator whose
  profiles control the operation mix, memory intensity and recurrence
  structure of the produced loops.
* :mod:`repro.workloads.suite` -- the workbench builder that mixes kernel
  variants with generated loops in proportions chosen so that the
  loop-bound breakdown on the baseline machine resembles the paper's
  Table 1.
* :mod:`repro.workloads.traces` -- synthetic per-loop memory address
  streams for the real-memory (cache) simulation.
"""

from repro.workloads.builder import LoopBuilder
from repro.workloads.kernels import KERNEL_BUILDERS, build_kernel, kernel_names
from repro.workloads.generator import GeneratorProfile, PROFILES, generate_loop
from repro.workloads.suite import (
    PAPER_LOOP_COUNT,
    TABLE1_BOUND_TARGETS,
    WORKBENCH_TIERS,
    WorkbenchSizeError,
    WorkbenchTier,
    build_workbench,
    perfect_club_like_suite,
    small_suite,
    tier_names,
    tiny_suite,
    workbench_tier,
)
from repro.workloads.traces import AddressStream, loop_address_streams

__all__ = [
    "LoopBuilder",
    "KERNEL_BUILDERS",
    "build_kernel",
    "kernel_names",
    "GeneratorProfile",
    "PROFILES",
    "generate_loop",
    "perfect_club_like_suite",
    "small_suite",
    "tiny_suite",
    "PAPER_LOOP_COUNT",
    "TABLE1_BOUND_TARGETS",
    "WORKBENCH_TIERS",
    "WorkbenchSizeError",
    "WorkbenchTier",
    "build_workbench",
    "tier_names",
    "workbench_tier",
    "AddressStream",
    "loop_address_streams",
]
