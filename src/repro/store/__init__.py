"""Durable persistence for the batch service: the SQLite run table.

The service layers above this package keep everything observable in
memory; this package is where state *survives*:

* :class:`~repro.store.db.RunDatabase` -- one SQLite file holding a
  ``jobs`` table (write-through durability for
  :class:`~repro.service.batch.BatchScheduler`: every job row carries
  its content-hash key, state, and -- once finished -- the serialized
  result envelope) and a ``runs`` table (one row per scheduled
  ``(loop, config, policy, core, version)`` problem with the metrics
  columns reports are rendered from).
* :func:`~repro.store.db.rows_from_runs` -- the single converter from
  live :class:`~repro.eval.metrics.LoopRun` lists to run-table rows,
  shared by the local execution path and the fleet coordinator.

Reports (:mod:`repro.report`, ``repro report``) and resubmission
answers are rendered *from* these tables, never recomputed -- the
experiment-database workflow of PyExperimenter / muBench's
``run_table.csv`` split, applied to this service.
"""

from repro.store.db import (
    DB_SCHEMA_VERSION,
    RunDatabase,
    RunRow,
    rows_from_runs,
    run_row_from_dict,
    run_row_to_dict,
)

__all__ = [
    "DB_SCHEMA_VERSION",
    "RunDatabase",
    "RunRow",
    "rows_from_runs",
    "run_row_from_dict",
    "run_row_to_dict",
]
