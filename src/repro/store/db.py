"""The SQLite-backed run database (``repro serve --db`` / ``repro report``).

One :class:`RunDatabase` file is the durable memory of a service
instance.  It holds two tables:

``jobs``
    Write-through durability for
    :class:`~repro.service.batch.BatchScheduler`.  One row per job,
    keyed by the content-hash-derived job id; the row tracks the
    lifecycle (``queued -> running -> done | failed | cancelled``),
    carries the validated request (JSON), and -- once the job finished
    -- the serialized result envelope plus its canonical
    ``runs_digest``.  A server restarted over the same database
    re-enqueues every non-terminal row (crash recovery) and answers a
    resubmission of a finished job straight from this table.

``runs``
    The run table reports are rendered from: one row per scheduled
    ``(loop, config, policy, core, version)`` problem -- the primary
    key is the same content hash :mod:`repro.eval.cache` and
    :func:`repro.eval.shards.plan_shards` derive -- with metrics
    columns (status, II, MII, spills, scheduling time, canonical
    digest).  Rows are upserted, so re-evaluating an identical problem
    refreshes its row instead of duplicating it.

Concurrency: the database opens in WAL journal mode with a busy
timeout, so a serving process, a fleet coordinator, and a ``repro
report`` reader can share one file -- writers briefly block each other
instead of failing, and readers never block writers.  In-process, one
connection is shared behind a lock (the stdlib ``sqlite3`` connection
is not thread-safe and the HTTP front end is threaded).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.eval.metrics import LoopRun

__all__ = [
    "DB_SCHEMA_VERSION",
    "RunDatabase",
    "RunRow",
    "rows_from_runs",
    "run_row_to_dict",
    "run_row_from_dict",
]

#: Bumped when the table layout changes incompatibly.  A database
#: written by a newer schema is refused instead of misread.
DB_SCHEMA_VERSION: int = 1

#: Default ``PRAGMA busy_timeout`` -- how long a writer waits for a
#: concurrent writer's transaction before giving up.
DEFAULT_BUSY_TIMEOUT_S: float = 5.0


@dataclass(frozen=True)
class RunRow:
    """One row of the ``runs`` table (a registered envelope type).

    ``run_key`` is :func:`repro.eval.cache.schedule_key` -- the same
    content hash the evaluation cache and the shard planner derive for
    this ``(loop, config, machine, knobs, version)`` problem -- so the
    run table, the cache, and the checkpoint store agree on identity.
    ``digest`` is the canonical single-run digest (wall-clock zeroed,
    see :func:`repro.eval.shards.runs_digest`).
    """

    run_key: str
    loop_name: str
    config_name: str
    policy: str
    core: str
    version: str
    status: str
    ii: Optional[int] = None
    mii: Optional[int] = None
    spills: int = 0
    scheduling_time_s: float = 0.0
    digest: str = ""
    job_id: Optional[str] = None
    tier: Optional[str] = None
    seed: Optional[int] = None
    created_at: float = 0.0


def run_row_to_dict(row: RunRow) -> Dict:
    """The ``data`` payload of a serialized :class:`RunRow`."""
    return {
        "run_key": row.run_key,
        "loop_name": row.loop_name,
        "config_name": row.config_name,
        "policy": row.policy,
        "core": row.core,
        "version": row.version,
        "status": row.status,
        "ii": row.ii,
        "mii": row.mii,
        "spills": row.spills,
        "scheduling_time_s": row.scheduling_time_s,
        "digest": row.digest,
        "job_id": row.job_id,
        "tier": row.tier,
        "seed": row.seed,
        "created_at": row.created_at,
    }


def run_row_from_dict(payload: Dict) -> RunRow:
    """Rebuild a :class:`RunRow` from its ``data`` payload."""
    return RunRow(
        run_key=payload["run_key"],
        loop_name=payload["loop_name"],
        config_name=payload["config_name"],
        policy=payload["policy"],
        core=payload["core"],
        version=payload.get("version", ""),
        status=payload["status"],
        ii=None if payload.get("ii") is None else int(payload["ii"]),
        mii=None if payload.get("mii") is None else int(payload["mii"]),
        spills=int(payload.get("spills", 0)),
        scheduling_time_s=float(payload.get("scheduling_time_s", 0.0)),
        digest=payload.get("digest", ""),
        job_id=payload.get("job_id"),
        tier=payload.get("tier"),
        seed=None if payload.get("seed") is None else int(payload["seed"]),
        created_at=float(payload.get("created_at", 0.0)),
    )


def rows_from_runs(
    runs: Sequence[LoopRun],
    *,
    rf,
    machine,
    policy: str,
    core: str,
    budget_ratio: float = 6.0,
    scale_to_clock: bool = True,
    job_id: Optional[str] = None,
    tier: Optional[str] = None,
    seed: Optional[int] = None,
    created_at: Optional[float] = None,
) -> List[RunRow]:
    """Convert live :class:`LoopRun` objects into run-table rows.

    The single converter the local execution path, the fleet
    coordinator, and tests share, so every writer derives identical
    ``run_key``/``digest`` values for identical work.
    """
    import repro
    from repro.eval.cache import schedule_key
    from repro.eval.shards import runs_digest

    stamp = time.time() if created_at is None else created_at
    rows: List[RunRow] = []
    for run in runs:
        result = run.result
        rows.append(
            RunRow(
                run_key=schedule_key(
                    run.loop,
                    rf,
                    machine,
                    scale_to_clock=scale_to_clock,
                    budget_ratio=budget_ratio,
                    scheduler=policy,
                    core=core,
                ),
                loop_name=result.loop_name,
                config_name=result.config_name,
                policy=policy,
                core=core,
                version=repro.__version__,
                status="ok" if result.success else "failed",
                ii=int(result.ii),
                mii=int(result.mii),
                spills=int(result.n_spill_memory_ops),
                scheduling_time_s=float(result.scheduling_time_s),
                digest=runs_digest([run]),
                job_id=job_id,
                tier=tier,
                seed=seed,
                created_at=stamp,
            )
        )
    return rows


_JOBS_COLUMNS = (
    "job_id", "job_key", "kind", "client", "params", "state",
    "submitted_at", "started_at", "finished_at", "n_done", "n_total",
    "error", "result", "runs_digest",
)

_RUNS_COLUMNS = (
    "run_key", "job_id", "loop_name", "config_name", "policy", "core",
    "version", "tier", "seed", "status", "ii", "mii", "spills",
    "scheduling_time_s", "digest", "created_at",
)

_PROBES_COLUMNS = (
    "probe_key", "explore_key", "config_name", "kind", "config", "tier",
    "n_loops", "seed", "area_mlambda2", "time_ns", "sum_ii", "n_failed",
    "created_at",
)


class RunDatabase:
    """One SQLite file of durable service state (jobs + run table).

    Example::

        db = RunDatabase("runs.sqlite")
        db.upsert_job({"job_id": "job-ab12...", "job_key": "ab12...",
                       "kind": "schedule", "client": "anonymous",
                       "params": "{}", "state": "queued",
                       "submitted_at": time.time()})
        db.update_job("job-ab12...", state="done", result="{...}")
        db.add_runs(rows_from_runs(runs, rf=rf, machine=machine,
                                   policy="mirs_hc", core="array"))
        rows = db.query_runs(configs=("4C16S16",))

    The connection is opened in WAL mode with a busy timeout so several
    processes can share the file; all in-process access goes through one
    lock (``sqlite3`` connections are not thread-safe and the service's
    HTTP layer is threaded).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        busy_timeout_s: float = DEFAULT_BUSY_TIMEOUT_S,
    ) -> None:
        self.path = Path(path).expanduser()
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=busy_timeout_s, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self.busy_timeout_s = float(busy_timeout_s)
        with self._lock:
            # WAL lets a report reader and a serving writer share the
            # file; the busy timeout makes two writers queue instead of
            # erroring.  journal_mode returns the mode actually granted
            # (some filesystems cannot do WAL) -- recorded, not fatal.
            self.journal_mode = str(
                self._conn.execute("PRAGMA journal_mode=WAL").fetchone()[0]
            ).lower()
            self._conn.execute(
                f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}"
            )
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._create_tables()

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    def _create_tables(self) -> None:
        conn = self._conn
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'db_schema'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('db_schema', ?)",
                (str(DB_SCHEMA_VERSION),),
            )
        elif int(row[0]) > DB_SCHEMA_VERSION:
            raise ValueError(
                f"{self.path} was written by run-database schema {row[0]}; "
                f"this build understands <= {DB_SCHEMA_VERSION}"
            )
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS jobs (
                job_id       TEXT PRIMARY KEY,
                job_key      TEXT NOT NULL,
                kind         TEXT NOT NULL,
                client       TEXT NOT NULL DEFAULT 'anonymous',
                params       TEXT NOT NULL,
                state        TEXT NOT NULL,
                submitted_at REAL NOT NULL,
                started_at   REAL,
                finished_at  REAL,
                n_done       INTEGER NOT NULL DEFAULT 0,
                n_total      INTEGER NOT NULL DEFAULT 0,
                error        TEXT,
                result       TEXT,
                runs_digest  TEXT
            )
            """
        )
        conn.execute("CREATE INDEX IF NOT EXISTS jobs_by_key ON jobs(job_key)")
        conn.execute("CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state)")
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS runs (
                run_key           TEXT PRIMARY KEY,
                job_id            TEXT,
                loop_name         TEXT NOT NULL,
                config_name       TEXT NOT NULL,
                policy            TEXT NOT NULL,
                core              TEXT NOT NULL,
                version           TEXT NOT NULL,
                tier              TEXT,
                seed              INTEGER,
                status            TEXT NOT NULL,
                ii                INTEGER,
                mii               INTEGER,
                spills            INTEGER NOT NULL DEFAULT 0,
                scheduling_time_s REAL NOT NULL DEFAULT 0.0,
                digest            TEXT NOT NULL DEFAULT '',
                created_at        REAL NOT NULL
            )
            """
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS runs_by_config "
            "ON runs(config_name, policy)"
        )
        conn.execute("CREATE INDEX IF NOT EXISTS runs_by_time ON runs(created_at)")
        # Design-space exploration probes (PR 10).  Additive: older builds
        # simply ignore the table, so no db_schema bump is needed.
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS probes (
                probe_key     TEXT PRIMARY KEY,
                explore_key   TEXT NOT NULL,
                config_name   TEXT NOT NULL,
                kind          TEXT NOT NULL,
                config        TEXT NOT NULL,
                tier          TEXT,
                n_loops       INTEGER,
                seed          INTEGER,
                area_mlambda2 REAL NOT NULL,
                time_ns       REAL NOT NULL,
                sum_ii        INTEGER NOT NULL DEFAULT 0,
                n_failed      INTEGER NOT NULL DEFAULT 0,
                created_at    REAL NOT NULL
            )
            """
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS probes_by_explore ON probes(explore_key)"
        )
        conn.commit()

    # ------------------------------------------------------------------ #
    # Jobs table
    # ------------------------------------------------------------------ #
    def upsert_job(self, row: Dict[str, object]) -> None:
        """Insert (or fully replace) one job row; unknown keys rejected."""
        unknown = sorted(set(row) - set(_JOBS_COLUMNS))
        if unknown:
            raise ValueError(f"unknown jobs columns: {unknown}")
        columns = [column for column in _JOBS_COLUMNS if column in row]
        placeholders = ", ".join("?" for _ in columns)
        with self._lock:
            self._conn.execute(
                f"INSERT OR REPLACE INTO jobs ({', '.join(columns)}) "
                f"VALUES ({placeholders})",
                [row[column] for column in columns],
            )
            self._conn.commit()

    def update_job(self, job_id: str, **fields: object) -> None:
        """Update columns of one job row (no-op for unknown ids)."""
        unknown = sorted(set(fields) - set(_JOBS_COLUMNS))
        if unknown:
            raise ValueError(f"unknown jobs columns: {unknown}")
        if not fields:
            return
        assignments = ", ".join(f"{column} = ?" for column in fields)
        with self._lock:
            self._conn.execute(
                f"UPDATE jobs SET {assignments} WHERE job_id = ?",
                [*fields.values(), job_id],
            )
            self._conn.commit()

    def job(self, job_id: str) -> Optional[Dict[str, object]]:
        """One job row as a plain dict, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return None if row is None else dict(row)

    def job_by_key(self, job_key: str) -> Optional[Dict[str, object]]:
        """The most recently submitted job row with this content key."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_key = ? "
                "ORDER BY submitted_at DESC LIMIT 1",
                (job_key,),
            ).fetchone()
        return None if row is None else dict(row)

    def jobs(
        self, states: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """Job rows (optionally filtered by state), in submission order."""
        query = "SELECT * FROM jobs"
        params: Tuple = ()
        if states:
            query += f" WHERE state IN ({', '.join('?' for _ in states)})"
            params = tuple(states)
        query += " ORDER BY submitted_at, job_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [dict(row) for row in rows]

    def pending_jobs(self) -> List[Dict[str, object]]:
        """Rows a restarted server must re-enqueue (queued or running)."""
        return self.jobs(states=("queued", "running"))

    # ------------------------------------------------------------------ #
    # Runs table
    # ------------------------------------------------------------------ #
    def add_runs(self, rows: Sequence[RunRow]) -> int:
        """Upsert run rows (idempotent on ``run_key``); returns the count."""
        payload = [
            (
                row.run_key, row.job_id, row.loop_name, row.config_name,
                row.policy, row.core, row.version, row.tier, row.seed,
                row.status, row.ii, row.mii, row.spills,
                row.scheduling_time_s, row.digest, row.created_at,
            )
            for row in rows
        ]
        if not payload:
            return 0
        with self._lock:
            self._conn.executemany(
                f"INSERT OR REPLACE INTO runs ({', '.join(_RUNS_COLUMNS)}) "
                f"VALUES ({', '.join('?' for _ in _RUNS_COLUMNS)})",
                payload,
            )
            self._conn.commit()
        return len(payload)

    def query_runs(
        self,
        *,
        configs: Sequence[str] = (),
        policies: Sequence[str] = (),
        tiers: Sequence[str] = (),
        loop: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[RunRow]:
        """Run rows matching every given filter, oldest first.

        ``loop`` is a substring match on the loop name; the sequence
        filters are exact-match OR-sets; ``since``/``until`` bound
        ``created_at`` (inclusive / exclusive).
        """
        clauses: List[str] = []
        params: List[object] = []
        for column, values in (
            ("config_name", configs), ("policy", policies), ("tier", tiers)
        ):
            if values:
                clauses.append(
                    f"{column} IN ({', '.join('?' for _ in values)})"
                )
                params.extend(values)
        if loop:
            clauses.append("loop_name LIKE ?")
            params.append(f"%{loop}%")
        if since is not None:
            clauses.append("created_at >= ?")
            params.append(float(since))
        if until is not None:
            clauses.append("created_at < ?")
            params.append(float(until))
        query = "SELECT * FROM runs"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_at, run_key"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [
            RunRow(**{key: row[key] for key in _RUNS_COLUMNS}) for row in rows
        ]

    # ------------------------------------------------------------------ #
    # Probes table (design-space exploration)
    # ------------------------------------------------------------------ #
    def add_probe(self, row: Dict[str, object]) -> None:
        """Upsert one exploration probe (idempotent on ``probe_key``)."""
        unknown = sorted(set(row) - set(_PROBES_COLUMNS))
        if unknown:
            raise ValueError(f"unknown probes columns: {unknown}")
        columns = [column for column in _PROBES_COLUMNS if column in row]
        with self._lock:
            self._conn.execute(
                f"INSERT OR REPLACE INTO probes ({', '.join(columns)}) "
                f"VALUES ({', '.join('?' for _ in columns)})",
                [row[column] for column in columns],
            )
            self._conn.commit()

    def probe(self, probe_key: str) -> Optional[Dict[str, object]]:
        """One probe row by content key, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM probes WHERE probe_key = ?", (probe_key,)
            ).fetchone()
        return dict(row) if row is not None else None

    def probes(self, explore_key: Optional[str] = None) -> List[Dict[str, object]]:
        """Probe rows (optionally for one exploration), oldest first."""
        query = "SELECT * FROM probes"
        params: List[object] = []
        if explore_key is not None:
            query += " WHERE explore_key = ?"
            params.append(explore_key)
        query += " ORDER BY created_at, probe_key"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Row counts and journal mode (health endpoint / logging)."""
        with self._lock:
            n_jobs = self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]
            n_runs = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            n_probes = self._conn.execute(
                "SELECT COUNT(*) FROM probes"
            ).fetchone()[0]
            by_state = dict(
                self._conn.execute(
                    "SELECT state, COUNT(*) FROM jobs GROUP BY state"
                ).fetchall()
            )
        return {
            "path": str(self.path),
            "journal_mode": self.journal_mode,
            "n_jobs": int(n_jobs),
            "n_runs": int(n_runs),
            "n_probes": int(n_probes),
            "jobs_by_state": {state: int(n) for state, n in by_state.items()},
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def loads_job_params(row: Dict[str, object]) -> Dict[str, object]:
    """The validated request dict stored in a job row's ``params``."""
    payload = json.loads(str(row["params"]))
    if not isinstance(payload, dict):  # pragma: no cover - defensive
        raise ValueError(f"job {row.get('job_id')} has a corrupt params column")
    return payload
