"""The exploration driver: sessions in, Pareto frontiers out.

:class:`Explorer` glues the pieces together:

* candidates come from :func:`repro.explore.search.run_search` (seeded,
  deterministic),
* every measurement goes through a :class:`~repro.session.Session`, so
  the ``EvalCache``, the analysis cache and the worker pool all apply,
* completed probes are persisted in the run database's ``probes`` table
  (:meth:`repro.store.RunDatabase.add_probe`) keyed by a
  content-addressed probe key, which is what makes ``--resume`` replay
  a run with **zero** re-evaluations,
* each completed probe is reported as a
  :class:`~repro.session.events.FrontierUpdate` event, streamed the same
  way ``evaluate_stream`` streams ``RunReady``.

The resulting :class:`ExploreReport` carries the frontier, the probe
counters and the frontier digest — the reproducibility contract is that
``(spec, session fingerprint)`` determines the digest exactly.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.explore.frontier import FrontierPoint, ParetoFrontier
from repro.explore.search import ExploreSpec, run_search
from repro.explore.space import DesignSpace
from repro.machine.config import RFConfig
from repro.session.events import FrontierUpdate

__all__ = [
    "ExploreReport",
    "Explorer",
    "explore_key",
    "probe_key",
    "run_explore",
]

#: Objectives returned by an evaluation backend:
#: (area in mega-lambda^2, aggregate execution time in ns, sum II, n_failed).
Objectives = Tuple[float, float, int, int]
Evaluate = Callable[[RFConfig, str, Optional[int]], Objectives]


def probe_key(
    fingerprint: str,
    rf: RFConfig,
    tier: str,
    n_loops: Optional[int],
    workbench_seed: int,
) -> str:
    """Content address of one measurement.

    Deliberately independent of the search seed, budget and algorithm:
    any exploration over the same session fingerprint and workbench
    shares probe rows, so a resumed (or re-seeded, or budget-extended)
    run reuses every completed measurement.
    """
    blob = json.dumps(
        {
            "fingerprint": fingerprint,
            "config": rf.to_dict(),
            "tier": tier,
            "n_loops": n_loops,
            "seed": workbench_seed,
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def explore_key(spec: ExploreSpec, fingerprint: str) -> str:
    """Content address of a whole exploration (used as the service job key)."""
    blob = json.dumps(
        {"explore": spec.to_dict(), "fingerprint": fingerprint}, sort_keys=True
    ).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class ExploreReport:
    """Outcome of one exploration run."""

    spec: ExploreSpec
    points: List[FrontierPoint]
    n_probes: int
    n_evaluated: int
    n_restored: int
    digest: str
    explore_key: str

    def frontier(self) -> ParetoFrontier:
        return ParetoFrontier.from_points(self.points)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "points": [p.to_dict() for p in self.points],
            "n_probes": self.n_probes,
            "n_evaluated": self.n_evaluated,
            "n_restored": self.n_restored,
            "digest": self.digest,
            "explore_key": self.explore_key,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExploreReport":
        return cls(
            spec=ExploreSpec.from_dict(payload["spec"]),
            points=[FrontierPoint.from_dict(p) for p in payload["points"]],
            n_probes=int(payload["n_probes"]),
            n_evaluated=int(payload["n_evaluated"]),
            n_restored=int(payload["n_restored"]),
            digest=str(payload["digest"]),
            explore_key=str(payload["explore_key"]),
        )


@dataclass
class Explorer:
    """One exploration run bound to a session (and optionally a store).

    ``evaluate`` may be injected for tests; by default measurements go
    through ``session.evaluate_configuration``.  ``on_event`` receives a
    :class:`~repro.session.events.FrontierUpdate` per completed probe.
    """

    session: Optional[object]
    spec: ExploreSpec
    space: Optional[DesignSpace] = None
    db: Optional[object] = None
    evaluate: Optional[Evaluate] = None
    on_event: Optional[Callable[[FrontierUpdate], None]] = None

    frontier: ParetoFrontier = field(default_factory=ParetoFrontier, init=False)
    n_probes: int = field(default=0, init=False)
    n_evaluated: int = field(default=0, init=False)
    n_restored: int = field(default=0, init=False)
    _memo: Dict[str, FrontierPoint] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.session is None and self.evaluate is None:
            raise ValueError("Explorer needs a session or an evaluate backend")
        if self.space is None:
            machine = getattr(self.session, "machine", None)
            self.space = DesignSpace(machine=machine) if machine else DesignSpace()

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        if self.session is not None:
            return self.session.fingerprint()
        return "explore:no-session"

    def _evaluate(self, rf: RFConfig, tier: str, n_loops: Optional[int]) -> Objectives:
        if self.evaluate is not None:
            return self.evaluate(rf, tier, n_loops)
        report = self.session.evaluate_configuration(
            rf, tier=tier, n_loops=n_loops, seed=self.spec.workbench_seed
        )
        sum_ii = sum(run.result.ii for run in report.runs if run.result.success)
        return (report.area_mlambda2, report.time_ns, int(sum_ii), report.n_failed)

    def _measure(
        self, rf: RFConfig, tier: str, n_loops: Optional[int], stage: str
    ) -> Optional[FrontierPoint]:
        """Measure one candidate, or return None once the budget is spent.

        Re-requests of an already-measured point (e.g. a promotion when
        probe tier == target tier) are free; distinct measurements count
        against ``spec.budget`` whether computed or restored, so the
        trace — and the final frontier — is identical on resume.
        """
        key = probe_key(self.fingerprint(), rf, tier, n_loops, self.spec.workbench_seed)
        memoized = self._memo.get(key)
        if memoized is not None:
            return self._offer(memoized, stage, restored=False, charged=False)
        if self.n_probes >= self.spec.budget:
            return None
        self.n_probes += 1

        restored = False
        row = self.db.probe(key) if self.db is not None else None
        if row is not None:
            point = FrontierPoint(
                config=json.loads(row["config"]),
                config_name=row["config_name"],
                kind=row["kind"],
                area_mlambda2=float(row["area_mlambda2"]),
                time_ns=float(row["time_ns"]),
                sum_ii=int(row["sum_ii"]),
                n_failed=int(row["n_failed"]),
                tier=tier,
                n_loops=n_loops,
            )
            self.n_restored += 1
            restored = True
        else:
            area, time_ns, sum_ii, n_failed = self._evaluate(rf, tier, n_loops)
            point = FrontierPoint(
                config=rf.to_dict(),
                config_name=rf.name,
                kind=rf.kind.value,
                area_mlambda2=area,
                time_ns=time_ns,
                sum_ii=sum_ii,
                n_failed=n_failed,
                tier=tier,
                n_loops=n_loops,
            )
            self.n_evaluated += 1
            if self.db is not None:
                self.db.add_probe(
                    {
                        "probe_key": key,
                        "explore_key": explore_key(self.spec, self.fingerprint()),
                        "config_name": point.config_name,
                        "kind": point.kind,
                        "config": json.dumps(point.config, sort_keys=True),
                        "tier": tier,
                        "n_loops": n_loops,
                        "seed": self.spec.workbench_seed,
                        "area_mlambda2": point.area_mlambda2,
                        "time_ns": point.time_ns,
                        "sum_ii": point.sum_ii,
                        "n_failed": point.n_failed,
                        "created_at": time.time(),
                    }
                )
        self._memo[key] = point
        return self._offer(point, stage, restored=restored, charged=True)

    def _offer(
        self, point: FrontierPoint, stage: str, *, restored: bool, charged: bool
    ) -> FrontierPoint:
        accepted, removed = (False, [])
        if stage == "frontier":
            accepted, removed = self.frontier.insert(point)
        if self.on_event is not None and charged:
            self.on_event(
                FrontierUpdate(
                    point=point,
                    stage=stage,
                    accepted=accepted,
                    removed=len(removed),
                    frontier_size=len(self.frontier),
                    n_done=self.n_probes,
                    n_total=self.spec.budget,
                    restored=restored,
                )
            )
        return point

    # ------------------------------------------------------------------ #
    def run(self) -> ExploreReport:
        run_search(self.spec, self.space, self._measure)
        return ExploreReport(
            spec=self.spec,
            points=self.frontier.points(),
            n_probes=self.n_probes,
            n_evaluated=self.n_evaluated,
            n_restored=self.n_restored,
            digest=self.frontier.digest(),
            explore_key=explore_key(self.spec, self.fingerprint()),
        )


def run_explore(
    session,
    spec: ExploreSpec,
    *,
    space: Optional[DesignSpace] = None,
    db=None,
    evaluate: Optional[Evaluate] = None,
    on_event: Optional[Callable[[FrontierUpdate], None]] = None,
) -> ExploreReport:
    """Convenience wrapper: build an :class:`Explorer` and run it."""
    explorer = Explorer(
        session=session,
        spec=spec,
        space=space,
        db=db,
        evaluate=evaluate,
        on_event=on_event,
    )
    return explorer.run()
