"""Incremental Pareto frontier over (RF area, execution time).

The explorer scores every design point on two objectives — register-file
area (:mod:`repro.hwmodel.cacti`, mm:math:`\\lambda^2`) and aggregate
execution time over the workbench (:mod:`repro.hwmodel.timing`, ns) —
and keeps the non-dominated set incrementally: each completed probe is
offered to :class:`ParetoFrontier`, which either rejects it (some kept
point is at least as good on both axes) or accepts it and drops every
point it now dominates.

The frontier is a *set*: its contents — and therefore :meth:`digest` —
depend only on which points were inserted, never on the order they
arrived in.  That invariant is what makes ``repro explore`` seeds
reproducible and resume verifiable (see ``docs/explore.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["FrontierPoint", "ParetoFrontier", "dominates"]


@dataclass(frozen=True)
class FrontierPoint:
    """One evaluated design point: configuration plus its two objectives."""

    config: Dict[str, object]
    config_name: str
    kind: str
    area_mlambda2: float
    time_ns: float
    sum_ii: int = 0
    n_failed: int = 0
    tier: Optional[str] = None
    n_loops: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": dict(self.config),
            "config_name": self.config_name,
            "kind": self.kind,
            "area_mlambda2": self.area_mlambda2,
            "time_ns": self.time_ns,
            "sum_ii": self.sum_ii,
            "n_failed": self.n_failed,
            "tier": self.tier,
            "n_loops": self.n_loops,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FrontierPoint":
        return cls(
            config=dict(payload["config"]),
            config_name=str(payload["config_name"]),
            kind=str(payload["kind"]),
            area_mlambda2=float(payload["area_mlambda2"]),
            time_ns=float(payload["time_ns"]),
            sum_ii=int(payload.get("sum_ii", 0)),
            n_failed=int(payload.get("n_failed", 0)),
            tier=payload.get("tier"),
            n_loops=payload.get("n_loops"),
        )


def dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """True iff ``a`` is at least as good as ``b`` on both objectives and
    strictly better on at least one (minimizing area and time)."""
    if a.area_mlambda2 > b.area_mlambda2 or a.time_ns > b.time_ns:
        return False
    return a.area_mlambda2 < b.area_mlambda2 or a.time_ns < b.time_ns


def _identity(point: FrontierPoint) -> Tuple:
    """Deduplication key: the configuration itself (not the objectives)."""
    return (point.config_name, json.dumps(point.config, sort_keys=True))


@dataclass
class ParetoFrontier:
    """The non-dominated set, maintained incrementally.

    ``insert`` returns ``(accepted, removed)``; points that fail any loop
    (``n_failed > 0``) are never admitted because their execution time is
    not comparable.
    """

    _points: Dict[Tuple, FrontierPoint] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self.points())

    def insert(self, point: FrontierPoint) -> Tuple[bool, List[FrontierPoint]]:
        if point.n_failed > 0:
            return False, []
        key = _identity(point)
        if key in self._points:
            return False, []
        if self.dominated_by_any(point):
            return False, []
        removed = [p for p in self._points.values() if dominates(point, p)]
        for dead in removed:
            del self._points[_identity(dead)]
        self._points[key] = point
        return True, removed

    def points(self) -> List[FrontierPoint]:
        """Canonical order: ascending area, then time, then name."""
        return sorted(
            self._points.values(),
            key=lambda p: (p.area_mlambda2, p.time_ns, p.config_name),
        )

    def dominated_by_any(self, point: FrontierPoint) -> bool:
        """True iff some kept point dominates ``point``."""
        return any(dominates(kept, point) for kept in self._points.values())

    def digest(self) -> str:
        """Content hash of the frontier *set* (insertion-order free).

        Only the configuration and its objectives enter the hash; probe
        sequence numbers, wall-clock, and tier bookkeeping stay out so
        that a resumed run and an uninterrupted run agree bit-for-bit.
        """
        canonical = [
            {
                "config": p.config,
                "config_name": p.config_name,
                "area_mlambda2": round(p.area_mlambda2, 9),
                "time_ns": round(p.time_ns, 9),
                "sum_ii": p.sum_ii,
            }
            for p in self.points()
        ]
        blob = json.dumps(canonical, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    @classmethod
    def from_points(cls, points: Iterable[FrontierPoint]) -> "ParetoFrontier":
        frontier = cls()
        for point in points:
            frontier.insert(point)
        return frontier
