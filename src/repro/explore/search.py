"""Search strategies over the design space: seeded random and evolutionary.

Two budgeted, derivative-free algorithms (cf. the zeroth-order
constrained-optimization line in PAPERS.md):

``random``
    Uniform sampling over :class:`~repro.explore.space.DesignSpace`;
    every distinct candidate is evaluated at the target tier and offered
    to the frontier.

``evolve``
    A (μ+λ)-style loop with successive-halving promotion: each
    generation's candidates (mutations/crossovers of the current
    survivors, plus fresh samples) are first *probed* on the cheap
    ``tiny`` tier; only the best probe-tier layer is promoted to a full
    evaluation at the target tier.  Survivors parent the next
    generation.  Promotion exploits the workbench-tier prefix property:
    tiny-tier schedule cache entries stay warm for every larger tier.

Both algorithms draw all randomness from one seeded
:class:`numpy.random.Generator`, so the probe *trace* — the exact
sequence of (configuration, tier, n_loops) measurements — is a pure
function of ``(spec, space)``.  That is the contract resume relies on:
replaying the trace over a warm probe store re-requests the same
measurements and re-evaluates none of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.explore.frontier import FrontierPoint
from repro.explore.space import DesignSpace
from repro.machine.config import RFConfig

__all__ = ["ALGORITHMS", "ExploreSpec", "run_search"]

ALGORITHMS: Tuple[str, ...] = ("random", "evolve")

#: Upper bound on rejected (duplicate/invalid) draws per requested probe —
#: the design space is finite, so a large budget can exhaust it; the
#: search then stops early instead of spinning.
_MAX_STALE_DRAWS = 64


@dataclass(frozen=True)
class ExploreSpec:
    """Declarative description of one exploration run.

    The spec (together with the session fingerprint) content-addresses
    the run: it hashes into the explore/job key and into every probe
    key, so two runs with equal specs share probe rows in the store.
    """

    algo: str = "random"
    budget: int = 16
    seed: int = 0
    tier: str = "small"
    n_loops: Optional[int] = None
    probe_tier: str = "tiny"
    probe_n_loops: Optional[int] = None
    population: int = 8
    promote: int = 3
    workbench_seed: int = 2003
    anchor: Optional[str] = "S64"

    def __post_init__(self) -> None:
        if self.algo not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algo!r}; expected {ALGORITHMS}")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not 1 <= self.promote <= self.population:
            raise ValueError("promote must be in [1, population]")

    def to_dict(self) -> Dict[str, object]:
        return {
            "algo": self.algo,
            "budget": self.budget,
            "seed": self.seed,
            "tier": self.tier,
            "n_loops": self.n_loops,
            "probe_tier": self.probe_tier,
            "probe_n_loops": self.probe_n_loops,
            "population": self.population,
            "promote": self.promote,
            "workbench_seed": self.workbench_seed,
            "anchor": self.anchor,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExploreSpec":
        return cls(
            algo=str(payload.get("algo", "random")),
            budget=int(payload.get("budget", 16)),
            seed=int(payload.get("seed", 0)),
            tier=str(payload.get("tier", "small")),
            n_loops=None if payload.get("n_loops") is None else int(payload["n_loops"]),
            probe_tier=str(payload.get("probe_tier", "tiny")),
            probe_n_loops=(
                None
                if payload.get("probe_n_loops") is None
                else int(payload["probe_n_loops"])
            ),
            population=int(payload.get("population", 8)),
            promote=int(payload.get("promote", 3)),
            workbench_seed=int(payload.get("workbench_seed", 2003)),
            anchor=payload.get("anchor", "S64"),
        )


def _identity(rf: RFConfig) -> Tuple:
    return (rf.name, rf.lp, rf.sp, rf.n_buses)


def _pareto_layers(points: List[FrontierPoint]) -> List[List[FrontierPoint]]:
    """Non-dominated sort (minimizing area and time); ties broken by name
    inside a layer so the ordering is deterministic."""
    from repro.explore.frontier import dominates

    remaining = list(points)
    layers: List[List[FrontierPoint]] = []
    while remaining:
        layer = [
            p
            for p in remaining
            if not any(dominates(q, p) for q in remaining if q is not p)
        ]
        if not layer:  # pragma: no cover - defensive (cycles are impossible)
            layer = list(remaining)
        layer.sort(key=lambda p: (p.time_ns, p.area_mlambda2, p.config_name))
        layers.append(layer)
        kept = {id(p) for p in layer}
        remaining = [p for p in remaining if id(p) not in kept]
    return layers


# A measurement callback: (rf, tier, n_loops, stage) -> FrontierPoint or
# None once the probe budget is exhausted.  The driver supplies it.
Measure = Callable[[RFConfig, str, Optional[int], str], Optional[FrontierPoint]]


@dataclass
class _Trace:
    spec: ExploreSpec
    space: DesignSpace
    measure: Measure
    seen: Dict[Tuple, RFConfig] = field(default_factory=dict)

    def fresh(self, rng: np.random.Generator, draw) -> Optional[RFConfig]:
        """Draw a not-yet-seen candidate, or None if the space looks dry."""
        for _ in range(_MAX_STALE_DRAWS):
            rf = draw(rng)
            key = _identity(rf)
            if key not in self.seen:
                self.seen[key] = rf
                return rf
        return None


def run_search(
    spec: ExploreSpec,
    space: DesignSpace,
    measure: Measure,
) -> None:
    """Drive the configured algorithm until ``measure`` reports exhaustion.

    ``measure`` owns budget accounting, persistence and frontier
    maintenance; this function only decides *which* configuration to
    probe next, so the trace depends on nothing but ``(spec, space)``
    and the (deterministic) measurement results.
    """
    rng = np.random.default_rng(spec.seed)
    trace = _Trace(spec=spec, space=space, measure=measure)

    anchors: List[RFConfig] = []
    if spec.anchor:
        anchor = RFConfig.parse(spec.anchor)
        trace.seen[_identity(anchor)] = anchor
        anchors.append(anchor)

    if spec.algo == "random":
        _random_search(spec, trace, rng, anchors)
    else:
        _evolve_search(spec, trace, rng, anchors)


def _random_search(
    spec: ExploreSpec,
    trace: _Trace,
    rng: np.random.Generator,
    anchors: List[RFConfig],
) -> None:
    for anchor in anchors:
        if trace.measure(anchor, spec.tier, spec.n_loops, "frontier") is None:
            return
    while True:
        rf = trace.fresh(rng, trace.space.sample)
        if rf is None:
            return
        if trace.measure(rf, spec.tier, spec.n_loops, "frontier") is None:
            return


def _evolve_search(
    spec: ExploreSpec,
    trace: _Trace,
    rng: np.random.Generator,
    anchors: List[RFConfig],
) -> None:
    survivors: List[RFConfig] = []
    for anchor in anchors:
        point = trace.measure(anchor, spec.tier, spec.n_loops, "frontier")
        if point is None:
            return
        survivors.append(anchor)

    by_identity = {_identity(rf): rf for rf in survivors}
    while True:
        # Propose one generation: offspring of the survivors plus fresh
        # samples (the whole first generation is fresh samples).
        candidates: List[RFConfig] = []
        while len(candidates) < spec.population:
            if len(survivors) >= 2 and rng.random() < 0.6:
                a = survivors[int(rng.integers(0, len(survivors)))]
                b = survivors[int(rng.integers(0, len(survivors)))]
                draw = (
                    (lambda r: trace.space.crossover(r, a, b))
                    if a is not b and rng.random() < 0.5
                    else (lambda r: trace.space.mutate(r, a))
                )
            elif survivors and rng.random() < 0.5:
                parent = survivors[int(rng.integers(0, len(survivors)))]
                draw = lambda r: trace.space.mutate(r, parent)  # noqa: E731
            else:
                draw = trace.space.sample
            rf = trace.fresh(rng, draw)
            if rf is None and draw is not trace.space.sample:
                # The chosen operator's neighborhood is exhausted (e.g. a
                # crossover pair whose whole image is already seen); fall
                # back to uniform sampling before giving up on the
                # generation.
                rf = trace.fresh(rng, trace.space.sample)
            if rf is None:
                break
            candidates.append(rf)
        if not candidates:
            return

        # Successive halving, stage 1: cheap probes on the probe tier.
        probes: List[Tuple[RFConfig, FrontierPoint]] = []
        for rf in candidates:
            point = trace.measure(rf, spec.probe_tier, spec.probe_n_loops, "probe")
            if point is None:
                return
            if point.n_failed == 0:
                probes.append((rf, point))

        # Stage 2: promote the best non-dominated layer(s) to the target
        # tier, best-first, up to ``spec.promote`` promotions.
        by_point = {id(point): rf for rf, point in probes}
        ranked: List[FrontierPoint] = [
            point for layer in _pareto_layers([p for _, p in probes]) for point in layer
        ]
        promoted: List[RFConfig] = []
        for point in ranked[: spec.promote]:
            rf = by_point[id(point)]
            final = trace.measure(rf, spec.tier, spec.n_loops, "frontier")
            if final is None:
                return
            if final.n_failed == 0:
                promoted.append(rf)

        # Survivors of this round parent the next generation.
        for rf in promoted:
            by_identity.setdefault(_identity(rf), rf)
        survivors = list(by_identity.values())[-2 * spec.population :]
