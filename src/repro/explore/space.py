"""Declarative bounded design space over register-file configurations.

:class:`DesignSpace` fixes a datapath (:class:`~repro.machine.MachineConfig`)
and enumerates the same discrete axes the fuzz sampler draws from
(:mod:`repro.machine.sampler`): organization kind, cluster count,
per-cluster and shared bank sizes, and the hierarchical lp/sp port
counts.  Every point the space emits passes
:meth:`MachineConfig.validate_rf`, so downstream evaluation never sees
an unbuildable configuration (e.g. a pure clustered organization with
more clusters than memory ports).

Three seeded operators drive the search in :mod:`repro.explore.search`:

* :meth:`DesignSpace.sample` — uniform draw over valid points,
* :meth:`DesignSpace.mutate` — perturb one axis of a parent,
* :meth:`DesignSpace.crossover` — mix axes of two parents.

All randomness flows through a :class:`numpy.random.Generator`, so a
search trace is a pure function of its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.config import MachineConfig, RFConfig
from repro.machine.presets import baseline_machine

__all__ = ["DesignSpace"]

_KINDS = ("monolithic", "clustered", "hierarchical", "hierarchical_clustered")


def _choice(rng: np.random.Generator, options):
    return options[int(rng.integers(0, len(options)))]


@dataclass(frozen=True)
class DesignSpace:
    """Bounded RF design space for a fixed datapath."""

    machine: MachineConfig = field(default_factory=baseline_machine)
    cluster_counts: Tuple[int, ...] = (2, 4, 8)
    cluster_reg_sizes: Tuple[int, ...] = (8, 16, 32, 64)
    shared_reg_sizes: Tuple[int, ...] = (16, 32, 64, 128)
    lp_values: Tuple[int, ...] = (1, 2, 3, 4)
    sp_values: Tuple[int, ...] = (1, 2)
    kinds: Tuple[str, ...] = _KINDS

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in _KINDS:
                raise ValueError(f"unknown RF kind {kind!r}; expected one of {_KINDS}")

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #
    def _valid_cluster_counts(self, kind: str) -> List[int]:
        if kind in ("monolithic", "hierarchical"):
            return [1]
        counts = [c for c in self.cluster_counts if c > 1 and self.machine.n_fus % c == 0]
        if kind == "clustered":
            counts = [
                c
                for c in counts
                if c <= self.machine.n_mem_ports and self.machine.n_mem_ports % c == 0
            ]
        return counts

    def contains(self, rf: RFConfig) -> bool:
        """True iff ``rf`` lies on this space's axes and is machine-valid."""
        kind = rf.kind.value.replace("-", "_")
        if kind not in self.kinds:
            return False
        if kind == "monolithic":
            if rf.shared_regs not in self.shared_reg_sizes:
                return False
        else:
            if rf.n_clusters not in self._valid_cluster_counts(kind):
                return False
            if rf.cluster_regs not in self.cluster_reg_sizes:
                return False
            if kind != "clustered":
                if rf.shared_regs not in self.shared_reg_sizes:
                    return False
                if rf.lp not in self.lp_values or rf.sp not in self.sp_values:
                    return False
        if kind == "hierarchical" and rf.n_clusters != 1:
            return False
        try:
            self.machine.validate_rf(rf)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #
    def _build(self, kind: str, axes: Dict[str, int]) -> RFConfig:
        if kind == "monolithic":
            return RFConfig(n_clusters=1, cluster_regs=None, shared_regs=axes["shared"])
        if kind == "clustered":
            return RFConfig(
                n_clusters=axes["clusters"],
                cluster_regs=axes["cluster_regs"],
                shared_regs=None,
            )
        return RFConfig(
            n_clusters=1 if kind == "hierarchical" else axes["clusters"],
            cluster_regs=axes["cluster_regs"],
            shared_regs=axes["shared"],
            lp=axes["lp"],
            sp=axes["sp"],
        )

    def sample(self, rng: np.random.Generator) -> RFConfig:
        """One uniform draw over the valid points of the space."""
        while True:
            kind = _choice(rng, self.kinds)
            counts = self._valid_cluster_counts(kind)
            if kind != "monolithic" and not counts:
                continue
            axes = {
                "clusters": _choice(rng, counts) if counts else 1,
                "cluster_regs": _choice(rng, self.cluster_reg_sizes),
                "shared": _choice(rng, self.shared_reg_sizes),
                "lp": _choice(rng, self.lp_values),
                "sp": _choice(rng, self.sp_values),
            }
            rf = self._build(kind, axes)
            if self.contains(rf):
                return rf

    def mutate(self, rng: np.random.Generator, parent: RFConfig) -> RFConfig:
        """Perturb one axis of ``parent``; falls back to a fresh sample."""
        kind = parent.kind.value.replace("-", "_")
        axes = {
            "clusters": parent.n_clusters,
            "cluster_regs": parent.cluster_regs or _choice(rng, self.cluster_reg_sizes),
            "shared": parent.shared_regs or _choice(rng, self.shared_reg_sizes),
            "lp": parent.lp,
            "sp": parent.sp,
        }
        mutable = ["kind", "shared"]
        if kind != "monolithic":
            mutable += ["clusters", "cluster_regs"]
        if kind in ("hierarchical", "hierarchical_clustered"):
            mutable += ["lp", "sp"]
        for _ in range(8):
            axis = _choice(rng, tuple(mutable))
            new_kind = kind
            if axis == "kind":
                new_kind = _choice(rng, self.kinds)
            elif axis == "clusters":
                counts = self._valid_cluster_counts(kind)
                if counts:
                    axes = {**axes, "clusters": _choice(rng, counts)}
            elif axis == "cluster_regs":
                axes = {**axes, "cluster_regs": _choice(rng, self.cluster_reg_sizes)}
            elif axis == "shared":
                axes = {**axes, "shared": _choice(rng, self.shared_reg_sizes)}
            elif axis == "lp":
                axes = {**axes, "lp": _choice(rng, self.lp_values)}
            elif axis == "sp":
                axes = {**axes, "sp": _choice(rng, self.sp_values)}
            counts = self._valid_cluster_counts(new_kind)
            if new_kind != "monolithic":
                if not counts:
                    continue
                if axes["clusters"] not in counts:
                    axes = {**axes, "clusters": _choice(rng, counts)}
            child = self._build(new_kind, axes)
            if self.contains(child) and child != parent:
                return child
        return self.sample(rng)

    def crossover(
        self, rng: np.random.Generator, a: RFConfig, b: RFConfig
    ) -> RFConfig:
        """Mix axes of two parents; falls back to mutating parent ``a``."""
        kind = _choice(rng, (a.kind.value, b.kind.value)).replace("-", "_")
        pick = lambda x, y: x if rng.integers(0, 2) == 0 else y  # noqa: E731
        axes = {
            "clusters": pick(a.n_clusters, b.n_clusters),
            "cluster_regs": pick(a.cluster_regs, b.cluster_regs)
            or _choice(rng, self.cluster_reg_sizes),
            "shared": pick(a.shared_regs, b.shared_regs)
            or _choice(rng, self.shared_reg_sizes),
            "lp": pick(a.lp, b.lp),
            "sp": pick(a.sp, b.sp),
        }
        counts = self._valid_cluster_counts(kind)
        if kind != "monolithic":
            if not counts:
                return self.mutate(rng, a)
            if axes["clusters"] not in counts:
                axes = {**axes, "clusters": _choice(rng, counts)}
        child = self._build(kind, axes)
        if self.contains(child):
            return child
        return self.mutate(rng, a)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine.to_dict(),
            "cluster_counts": list(self.cluster_counts),
            "cluster_reg_sizes": list(self.cluster_reg_sizes),
            "shared_reg_sizes": list(self.shared_reg_sizes),
            "lp_values": list(self.lp_values),
            "sp_values": list(self.sp_values),
            "kinds": list(self.kinds),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DesignSpace":
        return cls(
            machine=MachineConfig.from_dict(payload["machine"]),
            cluster_counts=tuple(payload["cluster_counts"]),
            cluster_reg_sizes=tuple(payload["cluster_reg_sizes"]),
            shared_reg_sizes=tuple(payload["shared_reg_sizes"]),
            lp_values=tuple(payload["lp_values"]),
            sp_values=tuple(payload["sp_values"]),
            kinds=tuple(payload["kinds"]),
        )
