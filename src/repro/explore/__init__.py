"""Design-space exploration: Pareto search over RF configurations.

The paper sweeps ~8 hand-picked register-file organizations; this
package turns that sweep into a budgeted search service.  A declarative
:class:`DesignSpace` bounds the domain, :mod:`~repro.explore.search`
supplies seeded ``random`` and ``evolve`` (successive-halving)
strategies, and :class:`Explorer` evaluates candidates through a
:class:`~repro.session.Session`, persists probes in the run database and
maintains an incremental :class:`ParetoFrontier` over (RF area,
execution time).

Quickstart::

    from repro.session import Session
    from repro.explore import ExploreSpec, run_explore

    with Session() as session:
        report = run_explore(session, ExploreSpec(budget=16, seed=7, tier="tiny"))
    for point in report.points:
        print(point.config_name, point.area_mlambda2, point.time_ns)

The same engine backs the ``repro explore`` CLI verb and the ``explore``
batch-service job kind; see ``docs/explore.md``.
"""

from repro.explore.driver import (
    Explorer,
    ExploreReport,
    explore_key,
    probe_key,
    run_explore,
)
from repro.explore.frontier import FrontierPoint, ParetoFrontier, dominates
from repro.explore.search import ALGORITHMS, ExploreSpec
from repro.explore.space import DesignSpace

__all__ = [
    "ALGORITHMS",
    "DesignSpace",
    "Explorer",
    "ExploreReport",
    "ExploreSpec",
    "FrontierPoint",
    "ParetoFrontier",
    "dominates",
    "explore_key",
    "probe_key",
    "run_explore",
]
