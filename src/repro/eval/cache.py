"""Content-addressed cache for (loop, configuration) scheduling results.

Every table/figure driver and the high-level API ultimately funnel work
through :func:`repro.eval.experiments.schedule_suite`, and many of them
schedule the *same* loops on the *same* configurations (the reference
configuration of a comparison, the shared subsets of Table 5/6 and
Figure 6, repeated CLI invocations...).  Scheduling is by far the
expensive step, so :class:`EvalCache` memoizes one :class:`~repro.eval.metrics.LoopRun`
per unique scheduling problem.

The cache key (:func:`schedule_key`) is a stable SHA-256 over everything
that determines the outcome of scheduling one loop:

* the loop's content fingerprint (:meth:`repro.ddg.loop.Loop.fingerprint`:
  dependence-graph structure, trip counts, weight);
* the register-file organization (:class:`~repro.machine.config.RFConfig`);
* the datapath (:class:`~repro.machine.config.MachineConfig`, including
  latencies and the cache parameters of the real-memory scenario);
* the scheduling knobs: ``budget_ratio``, the scheduler flavour, the
  scheduler-core backend (``object``/``array``), whether latencies are
  re-scaled to the configuration's clock, and the binding-prefetch
  policy.

Keys are *content* addressed, not identity addressed: regenerating the
workbench from the same seed in a different process (or on a different
day) produces the same keys, which is what makes the optional on-disk
tier useful across CLI invocations (``--cache DIR``).

The on-disk tier stores one pickle per entry under ``<dir>/<key[:2]>/``;
writes go through a temporary file and ``os.replace`` so concurrent
writers (e.g. two CLI runs sharing a cache directory) never observe a
torn entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.ddg.loop import Loop
from repro.machine.config import MachineConfig, RFConfig
from repro.eval.metrics import LoopRun
from repro.simulator.prefetch import PrefetchPolicy

__all__ = ["CACHE_SCHEMA_VERSION", "EvalCache", "schedule_key"]

#: Bumped whenever the pickled payload or the key derivation changes, so
#: stale on-disk entries from older code are never silently reused.  The
#: package version is part of the key as well (see :func:`schedule_key`),
#: so *scheduler behavior* changes invalidate on-disk caches through the
#: normal release version bump without touching this constant.
#: (v2: the scheduler token became the policy bundle's name + axes.)
CACHE_SCHEMA_VERSION: int = 2


def _rf_token(rf: RFConfig) -> Tuple:
    return (rf.n_clusters, rf.cluster_regs, rf.shared_regs, rf.lp, rf.sp, rf.n_buses)


def _machine_token(machine: MachineConfig) -> Tuple:
    return (
        machine.n_fus,
        machine.n_mem_ports,
        tuple(sorted(machine.latencies.items())),
        tuple(sorted(machine.unpipelined)),
        machine.miss_latency_ns,
        machine.cache_size_bytes,
        machine.cache_line_bytes,
        machine.cache_max_pending,
    )


def _prefetch_token(
    prefetch: Optional[PrefetchPolicy], scale_to_clock: bool
) -> Optional[Tuple]:
    # Prefetching only takes effect when a policy is present, enabled,
    # and latencies are scaled to the configuration's clock (no hardware
    # spec -> no miss latency to bind).  Behaviorally identical requests
    # must share a key, so anything else normalizes to None.
    if prefetch is None or not prefetch.enabled or not scale_to_clock:
        return None
    return (prefetch.enabled, prefetch.min_trip_count)


def _scheduler_token(scheduler) -> Tuple:
    """Identity of the policy bundle driving the engine.

    Both the name and the four policy axes (plus the engine mode) are in
    the key: two differently named bundles with identical axes may share
    behaviour but never share results by accident, and an ad-hoc
    :class:`~repro.core.policy.PolicyBundle` keys on what it *does*.
    """
    from repro.core.policy import resolve_bundle

    bundle = resolve_bundle(scheduler)
    return (bundle.name, *bundle.axes())


def schedule_key(
    loop: Loop,
    rf: RFConfig,
    machine: MachineConfig,
    *,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler="mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    core: str = "array",
) -> str:
    """The cache key of one (loop, configuration) scheduling problem.

    Besides the problem itself (loop content, configuration, knobs --
    including the policy bundle, see :func:`_scheduler_token`), the key
    carries the cache schema version and the package version: a release
    that changes what the scheduler *produces* must not be served stale
    results from an on-disk cache written by an older release.
    """
    import repro

    payload = (
        CACHE_SCHEMA_VERSION,
        repro.__version__,
        loop.fingerprint(),
        _rf_token(rf),
        _machine_token(machine),
        bool(scale_to_clock),
        float(budget_ratio),
        _scheduler_token(scheduler),
        _prefetch_token(prefetch, scale_to_clock),
        # The reservation-table/pressure backend ("object" or "array").
        # The two cores are verified bit-identical, but they must never
        # share cache entries by *assumption*: a result produced by one
        # backend keys on the backend that produced it.
        str(core),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


class EvalCache:
    """In-memory (and optionally on-disk) store of scheduling results.

    Parameters
    ----------
    directory:
        When given, every entry is also persisted as a pickle under this
        directory, and lookups fall back to disk on an in-memory miss --
        so a fresh process with the same cache directory starts warm.
    max_entries:
        Bound on the in-memory tier.  When the bound is reached the
        least-recently-used entry is evicted (``get`` and ``put`` both
        count as use).  ``None`` keeps the historical unbounded
        behaviour.  Eviction only touches the memory tier: an evicted
        entry that was persisted to ``directory`` is transparently
        re-loaded (and re-admitted) on its next lookup.  The default is
        generous -- a full paper reproduction stores a few thousand
        entries -- so eviction only engages on long-lived processes
        (services, sweeps over many machine scenarios) where the cache
        would otherwise grow without limit.

    Counters (``hits``, ``misses``, ``stores``, ``evictions``) make
    cache behaviour observable to tests and benchmarks.

    Example::

        cache = EvalCache()
        runs = schedule_suite(loops, "4C16S16", cache=cache)   # cold: schedules
        runs = schedule_suite(loops, "4C16S16", cache=cache)   # warm: no scheduling
        assert cache.hits == len(loops)
    """

    #: Default in-memory bound; see ``max_entries`` above.
    DEFAULT_MAX_ENTRIES: int = 50_000

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    ) -> None:
        self.directory: Optional[Path] = (
            Path(directory).expanduser() if directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.max_entries: Optional[int] = max_entries
        self._memory: "OrderedDict[str, LoopRun]" = OrderedDict()
        self._warned_write_failure: bool = False
        self.hits: int = 0
        self.misses: int = 0
        self.stores: int = 0
        #: In-memory entries dropped by the LRU bound.
        self.evictions: int = 0
        #: Disk-tier writes that failed (unpicklable run, filesystem
        #: error, ...).  The failure is non-fatal -- the in-memory tier
        #: keeps the result -- but it must not be invisible: the first
        #: one warns, every one is counted here and in :meth:`stats`.
        self.write_failures: int = 0

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.pkl"

    def _admit(self, key: str, run: LoopRun) -> None:
        """Insert into the memory tier, evicting LRU past the bound."""
        memory = self._memory
        memory[key] = run
        memory.move_to_end(key)
        if self.max_entries is not None:
            while len(memory) > self.max_entries:
                memory.popitem(last=False)
                self.evictions += 1

    def get(self, key: str) -> Optional[LoopRun]:
        """The cached run for ``key``, or ``None`` on a miss."""
        run = self._memory.get(key)
        if run is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return run
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as handle:
                    run = pickle.load(handle)
            except Exception:
                # Corrupt or stale entries raise a wide variety of types
                # (UnpicklingError, EOFError, OverflowError on damaged
                # frames, ModuleNotFoundError across refactors...); any
                # unreadable entry is simply a miss.
                run = None
            if run is not None:
                self._admit(key, run)
                self.hits += 1
                return run
        self.misses += 1
        return None

    def put(self, key: str, run: LoopRun) -> None:
        """Store one scheduling result under ``key`` (memory, then disk)."""
        self._admit(key, run)
        self.stores += 1
        path = self._disk_path(key)
        if path is None:
            return
        # Atomic publish: concurrent writers race benignly (same content
        # for the same key), and readers never see a partial pickle.  The
        # disk tier is best-effort -- an unpicklable run (e.g. exotic
        # objects in Loop.attributes) or a filesystem error must not fail
        # an evaluation whose scheduling already succeeded, so any write
        # problem just skips persistence (the in-memory tier keeps it).
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(run, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except Exception as exc:
            self.write_failures += 1
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if not self._warned_write_failure:
                self._warned_write_failure = True
                warnings.warn(
                    f"evaluation cache could not persist an entry to "
                    f"{self.directory} ({exc!r}); results stay in memory "
                    f"only, so the next process will start cold",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # ------------------------------------------------------------------ #
    # Introspection / maintenance
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        # Without this, an *empty* cache is falsy through __len__, and
        # call sites writing ``cache or EvalCache()`` silently drop a
        # cold on-disk cache (a bug this repo has already had once).
        return True

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def clear(self) -> None:
        """Drop the in-memory tier (on-disk entries are left in place)."""
        self._memory.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for logging: hits, misses, stores, evictions, write
        failures and resident entries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "write_failures": self.write_failures,
            "entries": len(self._memory),
        }
