"""The paper's comparison metrics (Section 2.3).

* **Execution cycles** of one loop:
  ``II * (N + (SC - 1) * E) + StallCycles`` where ``N`` is the total
  number of iterations, ``E`` the number of times the loop is entered and
  ``SC`` the stage count of the software pipeline.
* **Memory traffic**: ``N * trf`` where ``trf`` is the number of memory
  accesses per iteration of the final loop body (spill code included) --
  minimizing it avoids polluting the L1, saves memory-port bandwidth and
  power.
* **Execution time**: execution cycles multiplied by the configuration's
  clock period (from the hardware model).
* **Speedup**: ratio of a reference configuration's execution time to the
  evaluated configuration's execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.ddg.loop import Loop
from repro.core.result import ScheduleResult
from repro.hwmodel.spec import HardwareSpec

__all__ = [
    "LoopRun",
    "execution_cycles",
    "memory_traffic",
    "execution_time_ns",
    "speedup",
    "aggregate_cycles",
    "aggregate_traffic",
    "aggregate_time_ns",
    "static_bound_breakdown",
]


def execution_cycles(
    ii: int,
    stage_count: int,
    total_iterations: int,
    times_entered: int,
    stall_cycles: float = 0.0,
) -> float:
    """Execution cycles of one loop (the paper's formula)."""
    return float(ii) * (total_iterations + (stage_count - 1) * times_entered) + stall_cycles


def memory_traffic(total_iterations: int, memory_ops_per_iteration: int) -> float:
    """Memory accesses issued by the loop over its whole execution."""
    return float(total_iterations) * memory_ops_per_iteration


def execution_time_ns(cycles: float, clock_ns: float) -> float:
    """Execution time in nanoseconds."""
    return cycles * clock_ns


def speedup(reference_time: float, time: float) -> float:
    """Speedup of ``time`` relative to ``reference_time`` (>1 means faster)."""
    if time <= 0:
        return float("inf")
    return reference_time / time


@dataclass
class LoopRun:
    """One (loop, configuration) evaluation: schedule plus derived metrics."""

    loop: Loop
    result: ScheduleResult
    spec: Optional[HardwareSpec] = None
    stall_cycles: float = 0.0

    @property
    def cycles(self) -> float:
        if not self.result.success:
            return float("inf")
        return execution_cycles(
            self.result.ii,
            self.result.stage_count,
            self.loop.total_iterations,
            self.loop.times_entered,
            self.stall_cycles,
        )

    @property
    def useful_cycles(self) -> float:
        if not self.result.success:
            return float("inf")
        return execution_cycles(
            self.result.ii,
            self.result.stage_count,
            self.loop.total_iterations,
            self.loop.times_entered,
            0.0,
        )

    @property
    def traffic(self) -> float:
        return memory_traffic(
            self.loop.total_iterations, self.result.memory_ops_per_iteration
        )

    @property
    def time_ns(self) -> float:
        if self.spec is None:
            return self.cycles
        return execution_time_ns(self.cycles, self.spec.clock_ns)

    def to_dict(self) -> dict:
        """JSON-safe dict of this run (see :mod:`repro.serialize`)."""
        from repro import serialize

        return serialize.loop_run_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "LoopRun":
        """Rebuild a run from :meth:`to_dict` output."""
        from repro import serialize

        return serialize.loop_run_from_dict(payload)


def aggregate_cycles(runs: Iterable[LoopRun]) -> float:
    """Total execution cycles over a workbench."""
    return sum(run.cycles for run in runs)


def aggregate_traffic(runs: Iterable[LoopRun]) -> float:
    """Total memory traffic over a workbench."""
    return sum(run.traffic for run in runs)


def aggregate_time_ns(runs: Iterable[LoopRun]) -> float:
    """Total execution time (ns) over a workbench."""
    return sum(run.time_ns for run in runs)


def static_bound_breakdown(
    loops: Iterable[Loop],
    rf: "object" = "S128",
    machine: "Optional[object]" = None,
) -> dict:
    """Fraction of loops bound by each MII component (no scheduling).

    Classifies every loop by the binding constraint of its *static* MII
    breakdown (:func:`repro.ddg.analysis.compute_mii` -- memory ports,
    functional units, recurrences, or communication bandwidth) on the
    given configuration and machine.  This is how the workbench tiers
    are checked against the paper's Table 1 targets
    (:data:`repro.workloads.suite.TABLE1_BOUND_TARGETS`) without paying
    for a full scheduling pass: MII analysis is a pure graph computation
    and covers the 1258-loop ``full`` tier in about a second.

    Returns a dict mapping ``{"mem", "fu", "rec", "com"}`` to fractions
    summing to 1.0 (absent categories are 0.0).
    """
    from repro.ddg.analysis import compute_mii
    from repro.machine.presets import baseline_machine, config_by_name
    from repro.machine.resources import ResourceModel

    rf_config = config_by_name(rf) if isinstance(rf, str) else rf
    base = machine or baseline_machine()
    resources = ResourceModel(base, rf_config)
    counts = {"mem": 0, "fu": 0, "rec": 0, "com": 0}
    total = 0
    for loop in loops:
        counts[compute_mii(loop.graph, resources, base.latency).bound] += 1
        total += 1
    if total == 0:
        return {name: 0.0 for name in counts}
    return {name: count / total for name, count in counts.items()}
