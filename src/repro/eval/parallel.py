"""Process-parallel scheduling of a workbench.

Scheduling is CPU-bound pure Python, so the only way to use more than one
core is more than one process.  This module fans the loops of one
:func:`~repro.eval.experiments.schedule_suite` call out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* the workbench is split into contiguous chunks of loops (one pickled
  task per chunk, amortizing the per-task round-trip over several loops);
* each worker rebuilds the scheduling engine from the (cheap, picklable)
  configuration objects and schedules its chunk exactly the way the
  serial path does -- both paths share
  :func:`repro.eval.experiments._schedule_one`, so results are identical
  by construction;
* chunks come back tagged with their original positions, so the returned
  runs are in workbench order no matter which worker finished first.

``jobs=1`` never touches this module (callers keep the serial in-process
path); ``jobs=0`` (or ``None``) means "one worker per CPU".  Parallel
results are deterministic: the only per-run variation is the
``scheduling_time_s`` wall-clock counter carried by each result.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.ddg.loop import Loop
from repro.eval.metrics import LoopRun
from repro.machine.config import MachineConfig, RFConfig
from repro.simulator.prefetch import PrefetchPolicy

__all__ = ["resolve_jobs", "chunk_indices", "schedule_loops_parallel"]

#: Chunks submitted per worker: >1 so a worker that drew cheap loops can
#: pick up more work, small enough to keep per-chunk pickling negligible.
_CHUNKS_PER_WORKER: int = 4


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``None`` or ``0`` mean "use every CPU"; negative values are rejected.
    """
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def chunk_indices(n_items: int, n_chunks: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous ranges.

    Sizes differ by at most one, and order is preserved (chunk *k* holds
    smaller indices than chunk *k+1*), which is what keeps parallel
    results in workbench order.
    """
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    ranges: List[range] = []
    start = 0
    for chunk in range(n_chunks):
        size = base + (1 if chunk < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def _schedule_chunk(
    payload: Tuple[
        List[Tuple[int, Loop]],
        RFConfig,
        MachineConfig,
        bool,
        float,
        object,  # policy-bundle name or a picklable PolicyBundle
        Optional[PrefetchPolicy],
    ],
) -> List[Tuple[int, LoopRun]]:
    """Worker entry point: schedule one chunk of (position, loop) pairs."""
    # Imported here (not at module top) so the import happens inside the
    # worker as well, keeping this module importable before repro.eval is.
    from repro.eval.experiments import _build_engine, _schedule_one

    chunk, rf_config, base, scale_to_clock, budget_ratio, scheduler, prefetch = payload
    engine, scaled, spec = _build_engine(
        rf_config, base, scale_to_clock, budget_ratio, scheduler
    )
    return [
        (position, _schedule_one(loop, engine, scaled, spec, prefetch))
        for position, loop in chunk
    ]


def schedule_loops_parallel(
    tasks: Sequence[Tuple[int, Loop]],
    rf_config: RFConfig,
    machine: MachineConfig,
    *,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler="mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    jobs: Optional[int] = None,
) -> List[Tuple[int, LoopRun]]:
    """Schedule ``tasks`` (position, loop) pairs over a process pool.

    Returns one ``(position, run)`` pair per task, sorted by position.
    Positions are opaque to this function -- callers use them to slot
    results back into the full workbench (cache hits occupy the holes).
    """
    n_workers = resolve_jobs(jobs)
    tasks = list(tasks)
    if n_workers <= 1 or len(tasks) <= 1:
        # Degenerate request: honour it without paying for a pool.
        return _schedule_chunk(
            (tasks, rf_config, machine, scale_to_clock, budget_ratio, scheduler, prefetch)
        )

    chunks = chunk_indices(len(tasks), n_workers * _CHUNKS_PER_WORKER)
    payloads = [
        (
            [tasks[i] for i in chunk],
            rf_config,
            machine,
            scale_to_clock,
            budget_ratio,
            scheduler,
            prefetch,
        )
        for chunk in chunks
    ]
    results: List[Tuple[int, LoopRun]] = []
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for chunk_result in pool.map(_schedule_chunk, payloads):
            results.extend(chunk_result)
    results.sort(key=lambda pair: pair[0])
    return results
