"""Process-parallel scheduling of a workbench.

Scheduling is CPU-bound pure Python, so the only way to use more than one
core is more than one process.  This module fans the loops of one
:func:`~repro.eval.experiments.schedule_suite` call out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* the workbench is split into contiguous chunks of loops (one pickled
  task per chunk, amortizing the per-task round-trip over several loops);
* each worker rebuilds the scheduling engine from the (cheap, picklable)
  configuration objects and schedules its chunk exactly the way the
  serial path does -- both paths share
  :func:`repro.eval.experiments._schedule_one`, so results are identical
  by construction;
* chunks come back tagged with their original positions, so callers can
  slot runs into workbench order no matter which worker finished first.

The primitive is :func:`iter_schedule_loops`, an ``as_completed``-style
generator that yields each ``(position, run)`` pair the moment its chunk
finishes -- this is what :meth:`repro.session.Session.evaluate_stream`
streams to callers.  The barrier path (:func:`schedule_loops_parallel`)
is just the stream collected and sorted, so both paths are identical by
construction.

``jobs=1`` without an injected executor stays serial and in-process;
``jobs=0`` (or ``None``) means "one worker per CPU".  A long-lived
:class:`~repro.session.Session` passes its own ``executor`` so repeated
calls reuse warm worker processes instead of paying pool start-up per
call.  Results are deterministic: the only per-run variation is the
``scheduling_time_s`` wall-clock counter carried by each result.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, as_completed
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ddg.loop import Loop
from repro.eval.metrics import LoopRun
from repro.machine.config import MachineConfig, RFConfig
from repro.simulator.prefetch import PrefetchPolicy

__all__ = [
    "resolve_jobs",
    "chunk_indices",
    "iter_schedule_loops",
    "schedule_loops_parallel",
]

#: Chunks submitted per worker: >1 so a worker that drew cheap loops can
#: pick up more work, small enough to keep per-chunk pickling negligible.
_CHUNKS_PER_WORKER: int = 4


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``None`` or ``0`` mean "use every CPU"; negative values are rejected.
    """
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def chunk_indices(n_items: int, n_chunks: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous ranges.

    Sizes differ by at most one, and order is preserved (chunk *k* holds
    smaller indices than chunk *k+1*), which is what keeps parallel
    results in workbench order.
    """
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    ranges: List[range] = []
    start = 0
    for chunk in range(n_chunks):
        size = base + (1 if chunk < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def _schedule_chunk(
    payload: Tuple[
        List[Tuple[int, Loop]],
        RFConfig,
        MachineConfig,
        bool,
        float,
        object,  # policy-bundle name or a picklable PolicyBundle
        Optional[PrefetchPolicy],
        str,     # scheduler-core backend ("object" | "array")
    ],
) -> List[Tuple[int, LoopRun]]:
    """Worker entry point: schedule one chunk of (position, loop) pairs."""
    # Imported here (not at module top) so the import happens inside the
    # worker as well, keeping this module importable before repro.eval is.
    from repro.eval.experiments import _build_engine, _schedule_one

    (chunk, rf_config, base, scale_to_clock, budget_ratio, scheduler,
     prefetch, core) = payload
    engine, scaled, spec = _build_engine(
        rf_config, base, scale_to_clock, budget_ratio, scheduler, core
    )
    return [
        (position, _schedule_one(loop, engine, scaled, spec, prefetch))
        for position, loop in chunk
    ]


def iter_schedule_loops(
    tasks: Sequence[Tuple[int, Loop]],
    rf_config: RFConfig,
    machine: MachineConfig,
    *,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler="mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    core: str = "array",
    jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> Iterator[Tuple[int, LoopRun]]:
    """Yield ``(position, run)`` pairs the moment each chunk completes.

    The incremental primitive under both evaluation paths: results arrive
    in *completion* order (a worker that drew cheap loops reports before
    one grinding through an expensive chunk), and positions let callers
    re-establish workbench order if they want it -- that is all
    :func:`schedule_loops_parallel` does.

    ``executor`` injects a live pool (a session's warm worker processes,
    or a thread pool in tests); without one, ``jobs`` workers are spawned
    for this call and torn down when the stream ends.  ``jobs=1`` with no
    executor schedules serially in-process, still yielding each run as it
    is produced.  Abandoning the stream cancels chunks not yet started.
    """
    n_workers = resolve_jobs(jobs)
    tasks = list(tasks)
    if not tasks:
        return
    if executor is None and (n_workers <= 1 or len(tasks) <= 1):
        # Serial in-process path: no pool, but still incremental.
        from repro.eval.experiments import _build_engine, _schedule_one

        engine, scaled, spec = _build_engine(
            rf_config, machine, scale_to_clock, budget_ratio, scheduler, core
        )
        for position, loop in tasks:
            yield position, _schedule_one(loop, engine, scaled, spec, prefetch)
        return

    chunks = chunk_indices(len(tasks), n_workers * _CHUNKS_PER_WORKER)
    payloads = [
        (
            [tasks[i] for i in chunk],
            rf_config,
            machine,
            scale_to_clock,
            budget_ratio,
            scheduler,
            prefetch,
            core,
        )
        for chunk in chunks
    ]
    owns_pool = executor is None
    pool = executor if executor is not None else ProcessPoolExecutor(max_workers=n_workers)
    futures = [pool.submit(_schedule_chunk, payload) for payload in payloads]
    try:
        for future in as_completed(futures):
            yield from future.result()
    finally:
        # Reached on exhaustion, on error, and when the consumer abandons
        # the stream: chunks that have not started yet are cancelled so an
        # abandoned stream does not keep scheduling in the background.
        for future in futures:
            future.cancel()
        if owns_pool:
            pool.shutdown(wait=True)


def schedule_loops_parallel(
    tasks: Sequence[Tuple[int, Loop]],
    rf_config: RFConfig,
    machine: MachineConfig,
    *,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler="mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    core: str = "array",
    jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> List[Tuple[int, LoopRun]]:
    """Schedule ``tasks`` (position, loop) pairs over a process pool.

    The barrier view of :func:`iter_schedule_loops`: the stream is
    collected and sorted, so it returns one ``(position, run)`` pair per
    task in position order.  Positions are opaque to this function --
    callers use them to slot results back into the full workbench (cache
    hits occupy the holes).
    """
    results = list(
        iter_schedule_loops(
            tasks,
            rf_config,
            machine,
            scale_to_clock=scale_to_clock,
            budget_ratio=budget_ratio,
            scheduler=scheduler,
            prefetch=prefetch,
            core=core,
            jobs=jobs,
            executor=executor,
        )
    )
    results.sort(key=lambda pair: pair[0])
    return results
