"""Machine-readable performance trajectory records (``BENCH_*.json``).

The repo keeps two committed benchmark baselines at the repository root:

* ``BENCH_workbench.json`` -- produced by :func:`run_workbench_bench`:
  wall-clock, loops/sec, cache and shard-resume statistics for a
  workbench tier evaluated cold and then resumed from its checkpoint.
* ``BENCH_scheduler.json`` -- produced by the scheduler microbenchmark
  (``benchmarks/test_scheduler_microbench.py``): engine timings plus the
  pressure-check / full-sweep counters of the incremental tracker.

CI regenerates both records on every push and gates the build with
:func:`compare_bench`: a fresh record that regresses wall-clock beyond
the tolerance, *ever* increases a full-sweep counter, fails loops the
baseline scheduled, or loses bit-identical shard resume fails the job.
Updating a baseline is therefore always an explicit, reviewed commit --
that is what makes the records a *trajectory* rather than a log.

Wall-clock comparisons are inherently machine-sensitive; the tolerance
is configurable (CI exposes ``REPRO_BENCH_TOLERANCE``) and every
non-timing check is exact.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analysis_cache import shared_analysis_cache
from repro.eval.cache import EvalCache
from repro.eval.experiments import schedule_suite
from repro.eval.shards import DEFAULT_SHARD_SIZE, ResultStore, runs_digest
from repro.workloads.suite import build_workbench, workbench_tier

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "run_workbench_bench",
    "compare_bench",
    "load_record",
]

BENCH_SCHEMA_VERSION: int = 1

#: Wall-clock entries shorter than this are below timer/runner noise on
#: hosted CI (sub-millisecond kernel schedules, shard restores) and are
#: never gated -- a 25% "regression" of 0.5ms is jitter, not a signal.
MIN_GATED_WALL_S: float = 0.05


def _config_pass(
    loops,
    config_name: str,
    *,
    jobs: int,
    shard_size: int,
    store: ResultStore,
    cache: Optional[EvalCache],
) -> Dict[str, object]:
    """One timed evaluation pass of the workbench on one configuration."""
    start = time.perf_counter()
    runs = schedule_suite(
        loops,
        config_name,
        jobs=jobs,
        cache=cache,
        store=store,
        shard_size=shard_size,
    )
    wall_s = time.perf_counter() - start
    return {
        "wall_s": wall_s,
        "loops_per_s": len(runs) / wall_s if wall_s > 0 else float("inf"),
        "sum_ii": sum(run.result.ii for run in runs if run.result.success),
        "n_failed": sum(1 for run in runs if not run.result.success),
        # Scheduler-level reuse telemetry (informational, never gated --
        # see _walk_counters).  The counters are process-local and not
        # serialized with results, so with jobs > 1 (worker processes) or
        # a warm cache/store (no scheduling at all) they read as zero.
        "slot_probes": sum(run.result.n_slot_probes for run in runs),
        "probe_memo_hits": sum(run.result.n_probe_memo_hits for run in runs),
        "analysis_reuses": sum(run.result.n_analysis_reuses for run in runs),
        "analysis_cache": shared_analysis_cache().stats(),
        "store": store.stats(),
        "cache": cache.stats() if cache is not None else None,
        "digest": runs_digest(runs),
        # True when the store already held shards for this pass: with a
        # persisted checkpoint_dir (the nightly workflow) even the first
        # pass resumes prior work, and its wall-clock measures restore
        # cost, not scheduling -- consumers and the gate must know.
        "warm_start": store.hits > 0,
    }


def run_workbench_bench(
    *,
    tier: str = "small",
    configs: Sequence[str] = ("S64", "4C16S16"),
    n_loops: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, object]:
    """Benchmark checkpointed workbench evaluation; return the record.

    Per configuration the workbench is evaluated twice: a *cold* pass
    into an empty shard store, then a *resume* pass against the
    populated store (what a rerun after an interruption, or the next CI
    run with a persisted checkpoint, experiences).  The record captures
    wall-clock and loops/sec for both, the cache and shard-store
    counters, and whether the resumed result is canonically identical to
    the cold one (``resume_identical`` -- the checkpoint correctness
    invariant, gated in CI).

    ``checkpoint_dir`` persists the stores (CI hands in a cached
    directory so nightly full-tier runs resume across days); by default
    a temporary directory is used and removed.
    """
    workbench = build_workbench(tier, n_loops=n_loops, seed=seed)
    tier_spec = workbench_tier(tier)
    temp_dir = None
    if checkpoint_dir is None:
        temp_dir = tempfile.mkdtemp(prefix="repro-bench-")
        checkpoint_dir = temp_dir
    root = Path(checkpoint_dir)
    try:
        import repro

        record: Dict[str, object] = {
            "kind": "workbench",
            "schema": BENCH_SCHEMA_VERSION,
            "generator": f"repro {repro.__version__}",
            "tier": tier,
            "n_loops": len(workbench),
            "seed": tier_spec.seed if seed is None else seed,
            "jobs": jobs,
            "shard_size": shard_size,
            "configs": {},
        }
        total_wall = 0.0
        all_identical = True
        for config_name in configs:
            store_dir = root / config_name
            # Count only -- deriving a full ShardPlan here would hash a
            # schedule key per loop, three times per configuration at
            # full-tier scale, and pollute the resume timing it reports.
            n_shards = (len(workbench) + shard_size - 1) // shard_size
            cold = _config_pass(
                workbench, config_name,
                jobs=jobs, shard_size=shard_size,
                store=ResultStore(store_dir), cache=EvalCache(),
            )
            resume = _config_pass(
                workbench, config_name,
                jobs=jobs, shard_size=shard_size,
                store=ResultStore(store_dir), cache=EvalCache(),
            )
            identical = cold["digest"] == resume["digest"]
            all_identical = all_identical and identical
            total_wall += cold["wall_s"] + resume["wall_s"]
            record["configs"][config_name] = {
                "n_shards": n_shards,
                "cold": cold,
                "resume": resume,
                "resume_identical": identical,
                "resume_speedup": (
                    cold["wall_s"] / resume["wall_s"]
                    if resume["wall_s"] > 0 else float("inf")
                ),
            }
        record["totals"] = {
            "wall_s": total_wall,
            "resume_identical": all_identical,
        }
        return record
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)


# --------------------------------------------------------------------------- #
# Baseline comparison (the CI perf gate)
# --------------------------------------------------------------------------- #
def load_record(path: Union[str, Path]) -> Dict:
    """Read one ``BENCH_*.json`` record."""
    with open(path) as handle:
        return json.load(handle)


def _check_wall(
    label: str, base: float, fresh: float, tolerance: float,
    problems: List[str],
) -> None:
    # Entries below the noise floor are never gated: relative tolerances
    # on sub-millisecond timings only measure runner jitter.
    if base < MIN_GATED_WALL_S and fresh < MIN_GATED_WALL_S:
        return
    if base > 0 and fresh > base * (1.0 + tolerance):
        problems.append(
            f"{label}: wall-clock regressed {fresh:.3f}s vs baseline "
            f"{base:.3f}s (> {tolerance:.0%} tolerance)"
        )


def _compare_workbench(
    baseline: Dict, fresh: Dict, tolerance: float
) -> Tuple[List[str], List[str]]:
    problems: List[str] = []
    notes: List[str] = []
    base_configs = baseline.get("configs", {})
    fresh_configs = fresh.get("configs", {})
    for name, base_entry in base_configs.items():
        fresh_entry = fresh_configs.get(name)
        if fresh_entry is None:
            problems.append(f"config {name}: missing from the fresh record")
            continue
        if fresh_entry["cold"].get("warm_start") or base_entry["cold"].get("warm_start"):
            # A warm-started "cold" pass (persisted checkpoint dir, e.g.
            # the nightly workflow) measures shard restore, not
            # scheduling; comparing it against a truly cold baseline
            # would be meaningless in either direction.
            notes.append(
                f"config {name}: cold pass was warm-started from a "
                f"persisted checkpoint; wall-clock not gated"
            )
        else:
            _check_wall(
                f"config {name} (cold)",
                base_entry["cold"]["wall_s"], fresh_entry["cold"]["wall_s"],
                tolerance, problems,
            )
        if not fresh_entry.get("resume_identical", False):
            problems.append(
                f"config {name}: resumed evaluation is no longer "
                f"bit-identical to the cold run"
            )
        base_failed = base_entry["cold"].get("n_failed", 0)
        fresh_failed = fresh_entry["cold"].get("n_failed", 0)
        if fresh_failed > base_failed:
            problems.append(
                f"config {name}: {fresh_failed} loops failed to schedule "
                f"(baseline: {base_failed})"
            )
        base_ii = base_entry["cold"].get("sum_ii")
        fresh_ii = fresh_entry["cold"].get("sum_ii")
        if base_ii is not None and fresh_ii != base_ii:
            notes.append(
                f"config {name}: sum II changed {base_ii} -> {fresh_ii} "
                f"(scheduler behaviour change; update the baseline "
                f"deliberately)"
            )
    return problems, notes


def _walk_counters(payload: object, prefix: str = "") -> Dict[str, float]:
    """Flatten every ``full_sweeps``/``wall_s`` counter of a record."""
    found: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and key in ("full_sweeps", "wall_s"):
                found[path] = float(value)
            else:
                found.update(_walk_counters(value, path))
    return found


def _compare_scheduler(
    baseline: Dict, fresh: Dict, tolerance: float
) -> Tuple[List[str], List[str]]:
    problems: List[str] = []
    notes: List[str] = []
    base_counters = _walk_counters(baseline)
    fresh_counters = _walk_counters(fresh)
    for path, base_value in base_counters.items():
        fresh_value = fresh_counters.get(path)
        if fresh_value is None:
            problems.append(f"{path}: missing from the fresh record")
            continue
        if path.endswith("full_sweeps"):
            # The incremental-pressure engine's core invariant: any
            # increase in full-graph sweeps is a regression, full stop.
            if fresh_value > base_value:
                problems.append(
                    f"{path}: full sweeps increased "
                    f"{base_value:.0f} -> {fresh_value:.0f}"
                )
        else:
            _check_wall(path, base_value, fresh_value, tolerance, problems)
    return problems, notes


def compare_bench(
    baseline: Dict, fresh: Dict, *, tolerance: float = 0.25
) -> Tuple[List[str], List[str]]:
    """Compare a fresh benchmark record against a committed baseline.

    Returns ``(problems, notes)``: ``problems`` fail the CI gate
    (wall-clock beyond ``tolerance``, any full-sweep increase, new
    scheduling failures, lost resume identity, vanished entries);
    ``notes`` are informational (behaviour changes that need a
    deliberate baseline update).
    """
    if baseline.get("kind") == "workbench" or "configs" in baseline:
        return _compare_workbench(baseline, fresh, tolerance)
    return _compare_scheduler(baseline, fresh, tolerance)
