"""Sharded, checkpointed workbench evaluation.

Evaluating the paper-scale ``full`` workbench tier (1258 loops, see
:mod:`repro.workloads.suite`) on one configuration is minutes-to-hours of
pure-Python scheduling.  This module makes that tractable and
interruption-safe by splitting a suite into deterministic *shards* and
persisting each completed shard to disk the moment it finishes:

* :func:`plan_shards` cuts a workbench into contiguous shards and gives
  each one a content-addressed key -- the SHA-256 over the per-loop
  :func:`repro.eval.cache.schedule_key` values, so a shard's identity
  covers loop content, configuration, machine, policy bundle, knobs, and
  the package version, exactly like the evaluation cache.
* :class:`ResultStore` is the on-disk checkpoint layer *above*
  :class:`~repro.eval.cache.EvalCache`: one versioned
  :mod:`repro.serialize` envelope (type ``shard_result``) per completed
  shard, written atomically.  Where the cache memoizes individual
  (loop, configuration) schedules as pickles, the store checkpoints
  whole shards as portable JSON -- readable by any process, any machine,
  any future version that understands the schema.
* :func:`iter_schedule_suite_sharded` is the streaming evaluation loop:
  completed shards are restored and yielded without scheduling anything;
  unfinished shards are scheduled (serially or over the worker pool) and
  persisted as soon as their last loop completes.  A run killed after
  ``k`` of ``n`` shards re-schedules only the remaining ``n - k`` on the
  next invocation -- and reproduces the same report, because schedules
  are deterministic and the serialized form round-trips canonically.

"Identical" deliberately excludes wall-clock: ``scheduling_time_s`` is
the one nondeterministic field a run carries, so :func:`runs_digest` /
:func:`report_digest` hash the canonical payload with timing zeroed.
Two evaluations agree iff their digests agree.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.ddg.loop import Loop
from repro.eval.cache import EvalCache, schedule_key
from repro.eval.metrics import LoopRun
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.presets import baseline_machine, config_by_name
from repro.simulator.prefetch import PrefetchPolicy

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "SHARD_SCHEMA_VERSION",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "ResultStore",
    "plan_shards",
    "iter_schedule_suite_sharded",
    "canonical_run_payload",
    "runs_digest",
    "report_digest",
]

#: Loops per shard.  Small enough that an interrupted full-tier run
#: loses at most a few minutes of work, large enough that the per-shard
#: envelope write and the worker fan-out stay amortized.
DEFAULT_SHARD_SIZE: int = 32

#: Bumped when the shard key derivation or the ``shard_result`` payload
#: shape changes incompatibly; part of every shard key, so stale
#: checkpoints from older code are re-scheduled, never misread.
SHARD_SCHEMA_VERSION: int = 1


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a workbench evaluation."""

    index: int
    positions: Tuple[int, ...]
    #: Content-addressed identity (loop content + configuration + knobs
    #: + versions); the filename of the checkpoint envelope.
    key: str


@dataclass(frozen=True)
class ShardPlan:
    """The deterministic decomposition of one (suite, configuration) run."""

    config_name: str
    n_loops: int
    shard_size: int
    shards: Tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)


@dataclass
class ShardResult:
    """A completed shard, as persisted by :class:`ResultStore`.

    Registered with :mod:`repro.serialize` as envelope type
    ``shard_result``; ``positions`` records where the runs sit in the
    workbench (bookkeeping for humans and validation -- the key alone
    identifies the content).
    """

    key: str
    config_name: str
    positions: List[int] = field(default_factory=list)
    runs: List[LoopRun] = field(default_factory=list)


def shard_result_to_dict(result: ShardResult) -> Dict:
    """The ``data`` payload of a serialized :class:`ShardResult`."""
    from repro import serialize

    return {
        "shard_schema": SHARD_SCHEMA_VERSION,
        "key": result.key,
        "config_name": result.config_name,
        "positions": list(result.positions),
        "runs": [serialize.loop_run_to_dict(run) for run in result.runs],
    }


def shard_result_from_dict(payload: Dict) -> ShardResult:
    """Rebuild a :class:`ShardResult` from its ``data`` payload."""
    from repro import serialize

    return ShardResult(
        key=payload["key"],
        config_name=payload.get("config_name", ""),
        positions=[int(p) for p in payload.get("positions", ())],
        runs=[serialize.loop_run_from_dict(entry) for entry in payload.get("runs", ())],
    )


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #
def plan_shards(
    loops: Sequence[Loop],
    rf: Union[RFConfig, str],
    machine: Optional[MachineConfig] = None,
    *,
    shard_size: int = DEFAULT_SHARD_SIZE,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler="mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    core: str = "array",
) -> ShardPlan:
    """Split a workbench into deterministic, content-addressed shards.

    Shards are contiguous position ranges, so the tier prefix property
    of :mod:`repro.workloads.suite` carries over: every full shard of a
    ``small``-tier run has the same key when the same configuration is
    later evaluated on ``standard`` or ``full``, and is restored instead
    of re-scheduled.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    rf_config = config_by_name(rf) if isinstance(rf, str) else rf
    base = machine or baseline_machine()
    keys = [
        schedule_key(
            loop,
            rf_config,
            base,
            scale_to_clock=scale_to_clock,
            budget_ratio=budget_ratio,
            scheduler=scheduler,
            prefetch=prefetch,
            core=core,
        )
        for loop in loops
    ]
    shards: List[Shard] = []
    for start in range(0, len(loops), shard_size):
        positions = tuple(range(start, min(start + shard_size, len(loops))))
        digest = hashlib.sha256()
        digest.update(f"shard-schema:{SHARD_SCHEMA_VERSION}\n".encode())
        for position in positions:
            digest.update(keys[position].encode())
            digest.update(b"\n")
        shards.append(
            Shard(index=len(shards), positions=positions, key=digest.hexdigest())
        )
    return ShardPlan(
        config_name=rf_config.name,
        n_loops=len(loops),
        shard_size=shard_size,
        shards=tuple(shards),
    )


# --------------------------------------------------------------------------- #
# The on-disk checkpoint store
# --------------------------------------------------------------------------- #
class ResultStore:
    """On-disk store of completed shards (one JSON envelope each).

    Layered *above* :class:`~repro.eval.cache.EvalCache`: the cache
    memoizes single schedules within and across processes, the store
    checkpoints whole shards so a resumed evaluation never even plans
    work for them.  Counters (``hits``/``misses``/``stores``/
    ``invalid``/``write_failures``) make resume behaviour observable to
    tests, the benchmark record, and CI.

    Example::

        store = ResultStore(".repro-checkpoint")
        runs = schedule_suite(loops, "4C16S16", store=store)   # cold
        runs = schedule_suite(loops, "4C16S16", store=store)   # restored
        assert store.hits == store.stores > 0
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._warned_write_failure = False
        self._warned_invalid = False
        self.hits: int = 0
        self.misses: int = 0
        self.stores: int = 0
        #: Envelopes present but unusable (corrupt JSON, key mismatch,
        #: wrong schema...).  Counted as misses too; never fatal.
        self.invalid: int = 0
        self.write_failures: int = 0

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def __contains__(self, shard: Shard) -> bool:
        return self.path_for(shard.key).exists()

    #: On-disk layout of the envelopes under the store directory.  The
    #: single place that knows it -- ``count``/``has_shards`` and any
    #: outside probe (the CLI's ``--resume`` guard) go through here.
    _ENVELOPE_GLOB = "*/*.json"

    def count(self) -> int:
        """Number of shard envelopes currently on disk."""
        return sum(1 for _ in self.directory.glob(self._ENVELOPE_GLOB))

    @classmethod
    def has_shards(cls, directory: Union[str, Path]) -> bool:
        """True when ``directory`` holds at least one shard envelope.

        A pure probe: unlike constructing a :class:`ResultStore`, it
        never creates the directory -- the CLI's ``--resume`` guard uses
        it so a mistyped path is rejected without being mkdir'd into
        existence.
        """
        return any(Path(directory).expanduser().glob(cls._ENVELOPE_GLOB))

    def get(self, shard: Shard) -> Optional[List[LoopRun]]:
        """The persisted runs of ``shard``, or ``None`` when not usable."""
        from repro import serialize

        path = self.path_for(shard.key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            result = serialize.load(path, expect_type="shard_result")
        except (OSError, serialize.SerializationError, ValueError, KeyError) as exc:
            self._note_invalid(shard, f"unreadable envelope ({exc!r})")
            return None
        if (
            not isinstance(result, ShardResult)
            or result.key != shard.key
            or len(result.runs) != len(shard.positions)
        ):
            self._note_invalid(shard, "envelope content does not match the shard")
            return None
        self.hits += 1
        return result.runs

    def _note_invalid(self, shard: Shard, reason: str) -> None:
        """Count an unusable envelope -- and say so, once, with the key.

        An invalid checkpoint is handled by silently re-scheduling the
        shard, which is correct but can hide a corrupted or mismatched
        store for a very long time (the evaluation just gets slower).
        The first occurrence therefore warns with the shard hash so the
        situation is diagnosable; every occurrence is counted in
        ``invalid`` (and as a miss).
        """
        self.invalid += 1
        self.misses += 1
        if not self._warned_invalid:
            self._warned_invalid = True
            warnings.warn(
                f"checkpoint store {self.directory} holds an invalid "
                f"envelope for shard {shard.key}: {reason}; the shard "
                f"will be re-scheduled (further invalid envelopes are "
                f"counted in stats() without warning again)",
                RuntimeWarning,
                stacklevel=3,
            )

    def put(self, shard: Shard, runs: Sequence[LoopRun], *, config_name: str = "") -> None:
        """Persist one completed shard (atomic: write-temp + rename)."""
        from repro import serialize

        result = ShardResult(
            key=shard.key,
            config_name=config_name,
            positions=list(shard.positions),
            runs=list(runs),
        )
        path = self.path_for(shard.key)
        tmp_name = None
        try:
            payload = serialize.dumps(result, indent=None)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.write("\n")
            os.replace(tmp_name, path)
            self.stores += 1
        except Exception as exc:
            # Best-effort, like the cache's disk tier: a checkpoint that
            # cannot be written must not fail an evaluation that already
            # produced its results -- but it must not be invisible either.
            self.write_failures += 1
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if not self._warned_write_failure:
                self._warned_write_failure = True
                warnings.warn(
                    f"shard checkpoint could not be persisted to "
                    f"{self.directory} ({exc!r}); an interrupted run will "
                    f"re-schedule this shard",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def stats(self) -> Dict[str, int]:
        """Counters for logging and the benchmark record."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "write_failures": self.write_failures,
            "envelopes": self.count(),
        }


# --------------------------------------------------------------------------- #
# The sharded evaluation loop
# --------------------------------------------------------------------------- #
def iter_schedule_suite_sharded(
    loops: Sequence[Loop],
    rf: Union[RFConfig, str],
    *,
    machine: Optional[MachineConfig] = None,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler="mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    core: str = "array",
    jobs: int = 1,
    cache: Optional[EvalCache] = None,
    executor=None,
    store: ResultStore,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Iterator[Tuple[int, LoopRun, bool]]:
    """Schedule a workbench shard by shard, checkpointing each as it completes.

    Same contract as :func:`repro.eval.experiments.iter_schedule_suite`
    (``(position, run, cached)`` triples; every position covered exactly
    once), plus the checkpoint behaviour: shards already in ``store``
    are restored and yielded with ``cached=True`` without planning any
    scheduling work; the rest run through the ordinary (cache-aware,
    possibly parallel) suite iterator one shard at a time, and each is
    persisted the moment its last loop finishes.  Interrupt the process
    anywhere and a re-run schedules only the unfinished shards.

    Without an injected ``executor``, a parallel run (``jobs != 1``)
    creates **one** worker pool for the whole suite and reuses it across
    shards -- paying pool start-up per shard would dominate the very
    wall-clock the benchmark record measures.
    """
    from repro.eval.experiments import iter_schedule_suite
    from repro.eval.parallel import resolve_jobs

    n_workers = resolve_jobs(jobs)  # also rejects negative jobs up front
    plan = plan_shards(
        loops,
        rf,
        machine,
        shard_size=shard_size,
        scale_to_clock=scale_to_clock,
        budget_ratio=budget_ratio,
        scheduler=scheduler,
        prefetch=prefetch,
        core=core,
    )
    wants_pool = executor is None and jobs != 1 and n_workers > 1
    owned_pool = None
    try:
        for shard in plan.shards:
            restored = store.get(shard)
            if restored is not None:
                for position, run in zip(shard.positions, restored):
                    yield position, run, True
                continue
            if wants_pool and owned_pool is None:
                # Created lazily on the first shard that actually needs
                # scheduling: a fully restored resume pass must not pay
                # (or have its recorded wall-clock polluted by) worker
                # process start-up for a pool that never receives work.
                owned_pool = executor = ProcessPoolExecutor(max_workers=n_workers)
            shard_loops = [loops[position] for position in shard.positions]
            runs: List[Optional[LoopRun]] = [None] * len(shard_loops)
            for local, run, cached in iter_schedule_suite(
                shard_loops,
                rf,
                machine=machine,
                scale_to_clock=scale_to_clock,
                budget_ratio=budget_ratio,
                scheduler=scheduler,
                prefetch=prefetch,
                core=core,
                jobs=jobs,
                cache=cache,
                executor=executor,
            ):
                runs[local] = run
                yield shard.positions[local], run, cached
            store.put(shard, runs, config_name=plan.config_name)
    finally:
        if owned_pool is not None:
            owned_pool.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# Canonical digests ("identical modulo wall-clock")
# --------------------------------------------------------------------------- #
def canonical_run_payload(run: LoopRun) -> Dict:
    """The serialized payload of a run with wall-clock timing zeroed.

    ``scheduling_time_s`` is the only nondeterministic field a
    deterministic schedule carries; everything else (the graph, the
    placements, every derived counter) must agree between two
    evaluations of the same problem.
    """
    from repro import serialize

    payload = serialize.loop_run_to_dict(run)
    payload["result"]["scheduling_time_s"] = 0.0
    return payload


def runs_digest(runs: Sequence[LoopRun]) -> str:
    """SHA-256 over the canonical payloads of a run sequence (order-sensitive)."""
    digest = hashlib.sha256()
    for run in runs:
        digest.update(
            json.dumps(canonical_run_payload(run), sort_keys=True).encode()
        )
        digest.update(b"\n")
    return digest.hexdigest()


def report_digest(report) -> str:
    """Canonical digest of a :class:`~repro.eval.reporting.ConfigurationReport`.

    Two reports with the same configuration and the same deterministic
    run content produce the same digest, regardless of which process,
    machine, or (partially resumed) evaluation produced them.
    """
    digest = hashlib.sha256()
    digest.update(report.config.name.encode())
    digest.update(b"\n")
    digest.update(runs_digest(report.runs).encode())
    return digest.hexdigest()
