"""Reporting containers: plain-text tables and per-configuration reports.

:class:`Table` is the fixed-width renderer every experiment driver and
example prints through; :class:`ConfigurationReport` is the aggregate
view of one configuration over a workbench that the evaluation verbs
(:meth:`repro.session.Session.evaluate_configuration` and the
``repro.api`` shim) return.  Both are shared by experiments, examples,
benchmarks and the batch service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union

from repro.eval.metrics import (
    LoopRun,
    aggregate_cycles,
    aggregate_time_ns,
    aggregate_traffic,
)
from repro.hwmodel.spec import HardwareSpec
from repro.machine.config import RFConfig

__all__ = ["ConfigurationReport", "Table", "format_value"]


@dataclass
class ConfigurationReport:
    """Aggregate metrics of one configuration over a workbench."""

    config: RFConfig
    spec: HardwareSpec
    runs: List[LoopRun]

    @property
    def cycles(self) -> float:
        return aggregate_cycles(self.runs)

    @property
    def memory_traffic(self) -> float:
        return aggregate_traffic(self.runs)

    @property
    def time_ns(self) -> float:
        return aggregate_time_ns(self.runs)

    @property
    def area_mlambda2(self) -> float:
        return self.spec.total_area_mlambda2

    @property
    def n_failed(self) -> int:
        return sum(1 for run in self.runs if not run.result.success)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of this report (see :mod:`repro.serialize`)."""
        from repro import serialize

        return serialize.configuration_report_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ConfigurationReport":
        """Rebuild a report from :meth:`to_dict` output."""
        from repro import serialize

        return serialize.configuration_report_from_dict(payload)

Cell = Union[str, int, float, None]


def format_value(value: Cell, precision: int = 3) -> str:
    """Render one cell: floats with fixed precision, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1_000_000:
            return f"{value:.3e}"
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A minimal fixed-width table builder.

    Used by every experiment driver to print its result in a layout that
    mirrors the corresponding table or figure of the paper.
    """

    def __init__(self, columns: Sequence[str], *, title: str = "", precision: int = 3) -> None:
        self.title = title
        self.columns = list(columns)
        self.precision = precision
        self.rows: List[List[str]] = []

    def add_row(self, *values: Cell) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_value(v, self.precision) for v in values])

    def extend(self, rows: Iterable[Sequence[Cell]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
