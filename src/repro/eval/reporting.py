"""Plain-text table rendering shared by experiments, examples and benches."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["Table", "format_value"]

Cell = Union[str, int, float, None]


def format_value(value: Cell, precision: int = 3) -> str:
    """Render one cell: floats with fixed precision, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1_000_000:
            return f"{value:.3e}"
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A minimal fixed-width table builder.

    Used by every experiment driver to print its result in a layout that
    mirrors the corresponding table or figure of the paper.
    """

    def __init__(self, columns: Sequence[str], *, title: str = "", precision: int = 3) -> None:
        self.title = title
        self.columns = list(columns)
        self.precision = precision
        self.rows: List[List[str]] = []

    def add_row(self, *values: Cell) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_value(v, self.precision) for v in values])

    def extend(self, rows: Iterable[Sequence[Cell]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
