"""Evaluation harness: metrics and the paper's tables and figures.

* :mod:`repro.eval.metrics` -- the comparison metrics of Section 2.3
  (execution cycles, memory traffic, execution time, speedup, loop-bound
  classification).
* :mod:`repro.eval.experiments` -- one driver per table/figure of the
  paper's evaluation (Figure 1, Tables 1-6, Figures 4 and 6) plus the
  ablation studies; each driver returns a structured result object and can
  render itself as a plain-text table.
* :mod:`repro.eval.parallel` -- process-parallel scheduling of a
  workbench; every driver (and :func:`~repro.eval.experiments.schedule_suite`)
  takes ``jobs=N`` to fan out over N worker processes.
* :mod:`repro.eval.cache` -- content-addressed memoization of
  (loop, configuration) scheduling results; pass ``cache=EvalCache(...)``
  to any driver to skip re-scheduling identical pairs (optionally
  persisted to disk).
* :mod:`repro.eval.reporting` -- fixed-width table rendering shared by the
  drivers, the examples and the benchmarks.
"""

from repro.eval.cache import EvalCache, schedule_key
from repro.eval.parallel import iter_schedule_loops, resolve_jobs, schedule_loops_parallel
from repro.eval.shards import (
    DEFAULT_SHARD_SIZE,
    ResultStore,
    Shard,
    ShardPlan,
    ShardResult,
    iter_schedule_suite_sharded,
    plan_shards,
    report_digest,
    runs_digest,
)
from repro.eval.metrics import (
    LoopRun,
    execution_cycles,
    execution_time_ns,
    memory_traffic,
    speedup,
    aggregate_cycles,
    aggregate_time_ns,
    aggregate_traffic,
    static_bound_breakdown,
)
from repro.eval.reporting import ConfigurationReport, Table
from repro.eval.experiments import (
    run_figure1,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_figure4,
    run_figure6,
    iter_schedule_suite,
    schedule_suite,
)

__all__ = [
    "EvalCache",
    "schedule_key",
    "DEFAULT_SHARD_SIZE",
    "ResultStore",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "iter_schedule_suite_sharded",
    "plan_shards",
    "report_digest",
    "runs_digest",
    "static_bound_breakdown",
    "resolve_jobs",
    "iter_schedule_loops",
    "iter_schedule_suite",
    "schedule_loops_parallel",
    "ConfigurationReport",
    "LoopRun",
    "execution_cycles",
    "execution_time_ns",
    "memory_traffic",
    "speedup",
    "aggregate_cycles",
    "aggregate_time_ns",
    "aggregate_traffic",
    "Table",
    "run_figure1",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_figure4",
    "run_figure6",
    "schedule_suite",
]
