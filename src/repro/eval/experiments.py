"""Experiment drivers: one per table / figure of the paper's evaluation.

Every driver builds (or accepts) a workbench, schedules it on the
configurations the corresponding table/figure evaluates, and returns an
:class:`ExperimentResult` whose ``table`` mirrors the layout of the paper
and whose ``data`` dictionary exposes the raw numbers for tests and
benchmarks.  Absolute values differ from the paper (synthetic workbench,
analytical hardware model) but the *shape* -- orderings, ratios,
crossovers -- is the reproduction target; EXPERIMENTS.md records the
comparison.

All drivers accept ``n_loops`` and ``seed`` so the workbench size can be
scaled from quick smoke tests (a few dozen loops) up to the paper's
1258-loop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.eval.cache import EvalCache
    from repro.eval.shards import ResultStore
    from repro.session import Session

from repro.ddg.loop import Loop
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.presets import (
    baseline_machine,
    config_by_name,
    figure1_machines,
    figure4_cluster_counts,
    figure6_configs,
    table1_configs,
    table2_configs,
    table3_configs,
    table5_configs,
    table6_configs,
)
from repro.machine.config import UNBOUNDED
from repro.hwmodel.timing import derive_hardware, scaled_machine
from repro.core.analysis_cache import shared_analysis_cache
from repro.core.engine import SchedulerEngine
from repro.core.policy import PolicyBundle, bundle_names, resolve_bundle
from repro.core.result import ScheduleResult
from repro.eval.metrics import LoopRun, aggregate_cycles, aggregate_time_ns, aggregate_traffic
from repro.eval.reporting import Table
from repro.simulator.cache import CacheConfig
from repro.simulator.prefetch import PrefetchPolicy, apply_binding_prefetch, classify_loads
from repro.simulator.vliw import simulate_loop_execution
from repro.workloads.suite import perfect_club_like_suite

__all__ = [
    "ExperimentResult",
    "iter_schedule_suite",
    "schedule_suite",
    "run_figure1",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_figure4",
    "run_figure6",
    "run_ablation_budget_ratio",
    "run_ablation_prefetch",
    "run_ablation_ports",
    "run_ablation_policies",
]

DEFAULT_N_LOOPS = 96
DEFAULT_SEED = 2003


@dataclass
class ExperimentResult:
    """The outcome of one experiment driver."""

    name: str
    table: Table
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return self.table.render()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _suite(n_loops: int, seed: int) -> List[Loop]:
    return perfect_club_like_suite(n_loops=n_loops, seed=seed)


def _engine_context(
    session: "Optional[Session]",
    jobs: Optional[int],
    cache: "Optional[EvalCache]",
) -> Tuple[int, "Optional[EvalCache]", object, "Optional[ResultStore]"]:
    """Resolve a driver's (jobs, cache, executor, store) from an optional session.

    Explicit ``jobs=``/``cache=`` arguments win; a session fills whatever
    the caller left unset and contributes its warm worker pool and its
    shard checkpoint store (so *every* driver becomes resumable when the
    session was built with ``checkpoint=``).  Without a session the
    historical defaults apply (serial, no cache, no checkpoint).
    """
    executor = None
    store = None
    if session is not None:
        if jobs is None:
            jobs = session.jobs
        if cache is None:
            cache = session.cache
        executor = session.executor(jobs)
        store = session.checkpoint
    return (1 if jobs is None else jobs), cache, executor, store


# --------------------------------------------------------------------------- #
# Scheduling helpers
# --------------------------------------------------------------------------- #
def _build_engine(
    rf_config: RFConfig,
    base: MachineConfig,
    scale_to_clock: bool,
    budget_ratio: float,
    scheduler: "str | PolicyBundle",
    core: str = "array",
):
    """Instantiate a scheduling engine for one configuration.

    ``scheduler`` is a policy-bundle name (``"mirs_hc"``,
    ``"non_iterative"``, any registered ablation bundle) or an ad-hoc
    :class:`~repro.core.policy.PolicyBundle`.  Returns ``(engine,
    scaled_machine, spec)``; ``spec`` is ``None`` when latencies are not
    re-scaled to the configuration's clock.  Shared by the serial path
    below and by the workers of :mod:`repro.eval.parallel`, so both build
    byte-for-byte identical engines.
    """
    spec = None
    if scale_to_clock:
        scaled, spec = scaled_machine(base, rf_config)
    else:
        scaled = base
    # Every engine built through this path shares the per-process analysis
    # cache, so RecMII/order work is reused across configs of a sweep; the
    # workers of repro.eval.parallel call _build_engine inside the worker
    # process and therefore each get their own per-process instance.
    engine = SchedulerEngine(
        scaled, rf_config, policy=scheduler, budget_ratio=budget_ratio, core=core,
        analysis_cache=shared_analysis_cache(),
    )
    return engine, scaled, spec


def _schedule_one(
    loop: Loop,
    engine,
    scaled: MachineConfig,
    spec,
    prefetch: Optional[PrefetchPolicy],
) -> LoopRun:
    """Schedule one loop (applying binding prefetching when requested)."""
    target = loop
    if prefetch is not None and prefetch.enabled and spec is not None:
        target = loop.copy()
        miss_cycles = spec.miss_latency_cycles(scaled.miss_latency_ns)
        prefetched = classify_loads(target, prefetch)
        apply_binding_prefetch(target.graph, prefetched, miss_cycles)
    result = engine.schedule_loop(target)
    return LoopRun(loop=target, result=result, spec=spec)


def iter_schedule_suite(
    loops: Sequence[Loop],
    rf: RFConfig | str,
    *,
    machine: Optional[MachineConfig] = None,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler: "str | PolicyBundle" = "mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    core: str = "array",
    jobs: int = 1,
    cache: Optional["EvalCache"] = None,
    executor=None,
    store: "Optional[ResultStore]" = None,
    shard_size: Optional[int] = None,
) -> Iterator[Tuple[int, LoopRun, bool]]:
    """Schedule a workbench, yielding ``(position, run, cached)`` as ready.

    The streaming primitive under :func:`schedule_suite` and
    :meth:`repro.session.Session.evaluate_stream`.  Cache hits are
    yielded immediately (in workbench order, ``cached=True``); the
    missing loops follow in *completion* order as the serial engine or
    the worker pool produces them.  Duplicate problems within one call
    are scheduled once and yielded for every position that needs them.

    ``executor`` is an optional live pool (a session's warm workers);
    without one the call spawns and tears down its own, exactly like
    :func:`schedule_suite`.  The stream ends with every position covered
    or raises ``RuntimeError`` on a bookkeeping hole.

    ``store`` (a :class:`repro.eval.shards.ResultStore`) turns the run
    into a *checkpointed* evaluation: the workbench is cut into
    deterministic shards (``shard_size`` loops each), shards already in
    the store are restored without scheduling, and every freshly
    completed shard is persisted immediately -- see
    :func:`repro.eval.shards.iter_schedule_suite_sharded`.
    """
    if jobs < 0:
        # Validated up front -- before the checkpoint short-circuit and
        # before any cache probing -- so the same bad argument fails
        # identically whether the loops end up restored, cached, serial,
        # or fanned out.
        raise ValueError(f"jobs must be >= 0 (0 = one worker per CPU), got {jobs}")
    if store is not None:
        from repro.eval.shards import DEFAULT_SHARD_SIZE, iter_schedule_suite_sharded

        yield from iter_schedule_suite_sharded(
            loops,
            rf,
            machine=machine,
            scale_to_clock=scale_to_clock,
            budget_ratio=budget_ratio,
            scheduler=scheduler,
            prefetch=prefetch,
            core=core,
            jobs=jobs,
            cache=cache,
            executor=executor,
            store=store,
            shard_size=shard_size or DEFAULT_SHARD_SIZE,
        )
        return
    rf_config = config_by_name(rf) if isinstance(rf, str) else rf
    base = machine or baseline_machine()
    # Built up front even when every loop turns out to be cached: this
    # validates the configuration and the scheduler name, so bad
    # arguments fail identically on cold and warm runs.  The serial path
    # below schedules on this same engine.
    engine, scaled, spec = _build_engine(
        rf_config, base, scale_to_clock, budget_ratio, scheduler, core
    )

    covered = 0
    keys: List[Optional[str]] = [None] * len(loops)
    #: key -> every workbench position that needs its (missing) result;
    #: only the first position of a group is actually scheduled.
    miss_groups: Dict[str, List[int]] = {}
    pending: List[Tuple[int, Loop]] = []
    if cache is not None:
        from repro.eval.cache import schedule_key

        hits: List[Tuple[int, LoopRun]] = []
        for position, loop in enumerate(loops):
            key = schedule_key(
                loop,
                rf_config,
                base,
                scale_to_clock=scale_to_clock,
                budget_ratio=budget_ratio,
                scheduler=scheduler,
                prefetch=prefetch,
                core=core,
            )
            keys[position] = key
            group = miss_groups.get(key)
            if group is not None:
                # Duplicate of a problem already queued this call: share
                # its result instead of scheduling it again.
                group.append(position)
                continue
            hit = cache.get(key)
            if hit is not None:
                hits.append((position, hit))
            else:
                miss_groups[key] = [position]
                pending.append((position, loop))
        for position, run in hits:
            covered += 1
            yield position, run, True
    else:
        pending = list(enumerate(loops))

    if pending:
        if jobs == 1 or len(pending) == 1:
            # Serial in-process path, on the engine built above -- still
            # incremental: each run is yielded the moment it exists.
            fresh = (
                (position, _schedule_one(loop, engine, scaled, spec, prefetch))
                for position, loop in pending
            )
        else:
            from repro.eval.parallel import iter_schedule_loops

            fresh = iter_schedule_loops(
                pending,
                rf_config,
                base,
                scale_to_clock=scale_to_clock,
                budget_ratio=budget_ratio,
                scheduler=scheduler,
                prefetch=prefetch,
                core=core,
                jobs=jobs,
                executor=executor,
            )
        for position, run in fresh:
            key = keys[position]
            if key is not None:
                cache.put(key, run)
                for duplicate in miss_groups[key]:
                    covered += 1
                    yield duplicate, run, duplicate != position
            else:
                covered += 1
                yield position, run, False
    if covered != len(loops):
        # Every position must be covered by a cache hit, a duplicate
        # group, or a fresh schedule; a hole is a bookkeeping bug and
        # silently dropping it would skew every downstream aggregate.
        raise RuntimeError(
            f"schedule_suite left {len(loops) - covered} of {len(loops)} "
            f"loops unscheduled"
        )


def schedule_suite(
    loops: Sequence[Loop],
    rf: RFConfig | str,
    *,
    machine: Optional[MachineConfig] = None,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    scheduler: "str | PolicyBundle" = "mirs_hc",
    prefetch: Optional[PrefetchPolicy] = None,
    core: str = "array",
    jobs: int = 1,
    cache: Optional["EvalCache"] = None,
    executor=None,
    store: "Optional[ResultStore]" = None,
    shard_size: Optional[int] = None,
) -> List[LoopRun]:
    """Schedule a whole workbench on one configuration.

    The barrier view of :func:`iter_schedule_suite`: the stream is
    collected into workbench order, so results are identical to the
    incremental path by construction.

    ``scheduler`` selects the policy bundle driving the engine (a
    registered name or a :class:`~repro.core.policy.PolicyBundle`); the
    default is the paper's MIRS_HC bundle.

    ``prefetch`` enables selective binding prefetching: the selected loads
    are scheduled with the configuration's miss latency (this is how the
    real-memory experiments of Figure 6 run the scheduler).

    ``core`` selects the reservation-table/pressure backend of the engine
    (``"array"``, the default, or the reference ``"object"`` core).  The
    two backends produce bit-identical schedules -- the equivalence suite
    and ``repro fuzz`` enforce it -- but results are cached per backend.

    ``jobs`` fans the workbench out over that many worker processes
    (``0`` means one per CPU); the default of ``1`` keeps the serial
    in-process path.  Results are in workbench order and identical to the
    serial path regardless of ``jobs``.  ``executor`` optionally reuses a
    live pool (sessions pass their warm workers) instead of spawning one.

    ``cache`` (an :class:`repro.eval.cache.EvalCache`) memoizes one
    result per unique (loop, configuration, knobs) problem: cache hits
    skip scheduling entirely, and only the missing loops are (re)scheduled
    -- serially or in parallel, as requested.

    ``store`` (a :class:`repro.eval.shards.ResultStore`) checkpoints the
    evaluation shard by shard: completed shards are restored from disk
    on a re-run, so an interrupted suite resumes where it stopped.
    """
    runs: List[Optional[LoopRun]] = [None] * len(loops)
    for position, run, _cached in iter_schedule_suite(
        loops,
        rf,
        machine=machine,
        scale_to_clock=scale_to_clock,
        budget_ratio=budget_ratio,
        scheduler=scheduler,
        prefetch=prefetch,
        core=core,
        jobs=jobs,
        cache=cache,
        executor=executor,
        store=store,
        shard_size=shard_size,
    ):
        runs[position] = run
    return list(runs)


def _ops_per_iteration(loop: Loop) -> int:
    """Operations of the original loop body (excluding live-in pseudo nodes)."""
    return sum(1 for op in loop.graph.nodes() if not op.op.is_pseudo)


# --------------------------------------------------------------------------- #
# Figure 1: IPC as a function of the number of resources
# --------------------------------------------------------------------------- #
def run_figure1(
    n_loops: int = DEFAULT_N_LOOPS,
    seed: int = DEFAULT_SEED,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """IPC achieved by a monolithic 128-register machine as resources grow."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    table = Table(
        ["resources", "fus", "mem_ports", "ipc", "efficiency"],
        title="Figure 1: IPC vs. machine resources (monolithic S128)",
    )
    points: List[Dict[str, float]] = []
    rf = config_by_name("S128")
    for machine in figure1_machines():
        runs = schedule_suite(
            loops, rf, machine=machine, scale_to_clock=False, jobs=jobs, cache=cache, executor=executor, store=store
        )
        total_ops = sum(
            _ops_per_iteration(run.loop) * run.loop.total_iterations for run in runs
        )
        total_cycles = aggregate_cycles(runs)
        ipc = total_ops / total_cycles if total_cycles else 0.0
        efficiency = ipc / (machine.n_fus + machine.n_mem_ports)
        label = f"{machine.n_fus}+{machine.n_mem_ports}"
        table.add_row(label, machine.n_fus, machine.n_mem_ports, ipc, efficiency)
        points.append(
            {
                "label": label,
                "n_fus": machine.n_fus,
                "n_mem_ports": machine.n_mem_ports,
                "ipc": ipc,
                "efficiency": efficiency,
            }
        )
    return ExperimentResult("figure1", table, {"points": points})


# --------------------------------------------------------------------------- #
# Table 1: cycle breakdown by loop bound for equally sized configurations
# --------------------------------------------------------------------------- #
def run_table1(
    n_loops: int = DEFAULT_N_LOOPS,
    seed: int = DEFAULT_SEED,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Execution-cycle breakdown (FU / MemPort / Rec / Com bound) per configuration."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    categories = ["fu", "mem", "rec", "com"]
    labels = {"fu": "F.U.", "mem": "MemPort", "rec": "Rec.", "com": "Com."}
    table = Table(
        ["bound", "metric"] + [rf.name for rf in table1_configs()],
        title="Table 1: loop classification and execution cycles (128-register configurations)",
    )
    per_config: Dict[str, Dict[str, Dict[str, float]]] = {}
    totals: Dict[str, float] = {}
    for rf in table1_configs():
        runs = schedule_suite(loops, rf, jobs=jobs, cache=cache, executor=executor, store=store)
        breakdown = {c: {"loops": 0.0, "cycles": 0.0} for c in categories}
        for run in runs:
            bound = run.result.bound if run.result.bound in breakdown else "fu"
            breakdown[bound]["loops"] += 1
            breakdown[bound]["cycles"] += run.cycles
        per_config[rf.name] = breakdown
        totals[rf.name] = aggregate_cycles(runs)

    n = float(len(loops))
    for category in categories:
        table.add_row(
            labels[category],
            "% of loops",
            *[100.0 * per_config[rf.name][category]["loops"] / n for rf in table1_configs()],
        )
        table.add_row(
            labels[category],
            "exec cycles",
            *[per_config[rf.name][category]["cycles"] for rf in table1_configs()],
        )
    table.add_row("Total", "exec cycles", *[totals[rf.name] for rf in table1_configs()])
    ratios = {
        name: totals[name] / totals["S128"] if totals.get("S128") else float("nan")
        for name in totals
    }
    return ExperimentResult(
        "table1",
        table,
        {"breakdown": per_config, "totals": totals, "cycle_ratio_vs_s128": ratios},
    )


# --------------------------------------------------------------------------- #
# Table 2 and Table 5: hardware evaluation
# --------------------------------------------------------------------------- #
def _hardware_rows(configs: Sequence[RFConfig], title: str, name: str) -> ExperimentResult:
    machine = baseline_machine()
    table = Table(
        [
            "config", "lp-sp", "C access (ns)", "S access (ns)",
            "C area", "S area", "total area", "FO4", "clock (ns)", "mem/FU lat",
        ],
        title=title,
    )
    rows: Dict[str, Dict[str, object]] = {}
    for rf in configs:
        spec = derive_hardware(machine, rf)
        ports = f"{rf.lp}-{rf.sp}" if rf.has_cluster_banks and rf.has_shared_bank or rf.is_clustered else "-"
        c_access = spec.cluster_bank.access_ns if spec.cluster_bank else None
        s_access = spec.shared_bank.access_ns if spec.shared_bank else None
        c_area = spec.cluster_bank.area_mlambda2 if spec.cluster_bank else None
        s_area = spec.shared_bank.area_mlambda2 if spec.shared_bank else None
        table.add_row(
            rf.name, ports, c_access, s_access, c_area, s_area,
            spec.total_area_mlambda2, spec.logic_depth_fo4, spec.clock_ns,
            f"{spec.mem_hit_latency}/{spec.fu_latency}",
        )
        rows[rf.name] = {
            "lp": rf.lp,
            "sp": rf.sp,
            "cluster_access_ns": c_access,
            "shared_access_ns": s_access,
            "cluster_area": c_area,
            "shared_area": s_area,
            "total_area": spec.total_area_mlambda2,
            "logic_depth_fo4": spec.logic_depth_fo4,
            "clock_ns": spec.clock_ns,
            "mem_hit_latency": spec.mem_hit_latency,
            "fu_latency": spec.fu_latency,
            "loadr_latency": spec.loadr_latency,
        }
    return ExperimentResult(name, table, {"rows": rows})


def run_table2(
    n_loops: int = 0,
    seed: int = DEFAULT_SEED,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Access time and area of the 128-register configurations (Table 2).

    Purely analytical (no workbench, no scheduling): every parameter is
    accepted only to keep the driver interface uniform for the CLI.
    """
    del n_loops, seed, jobs, cache, session
    return _hardware_rows(
        table2_configs(),
        "Table 2: access time and area of 128-register configurations",
        "table2",
    )


def run_table5(
    n_loops: int = 0,
    seed: int = DEFAULT_SEED,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Hardware evaluation of the 15 configurations of Table 5.

    Purely analytical (no workbench, no scheduling): every parameter is
    accepted only to keep the driver interface uniform for the CLI.
    """
    del n_loops, seed, jobs, cache, session
    return _hardware_rows(
        table5_configs(),
        "Table 5: hardware evaluation of the evaluated RF configurations",
        "table5",
    )


# --------------------------------------------------------------------------- #
# Table 3: static evaluation with unbounded register banks
# --------------------------------------------------------------------------- #
def run_table3(
    n_loops: int = 64,
    seed: int = DEFAULT_SEED,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """%MII achieved, total II and scheduling time with unbounded registers."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    table = Table(
        [
            "config", "lp-sp",
            "*%MII", "*sum II", "*sched s",
            "%MII", "sum II", "sched s",
        ],
        title="Table 3: static evaluation with unbounded registers "
              "(* = unlimited inter-bank bandwidth)",
    )
    rows: Dict[str, Dict[str, float]] = {}
    for unlimited, limited in table3_configs():
        per_variant = []
        for variant in (unlimited, limited):
            runs = schedule_suite(
                loops, variant, scale_to_clock=False, jobs=jobs, cache=cache, executor=executor, store=store
            )
            achieved = sum(1 for run in runs if run.result.achieved_mii)
            sum_ii = sum(run.result.ii for run in runs if run.result.success)
            sched_time = sum(run.result.scheduling_time_s for run in runs)
            per_variant.append(
                {
                    "pct_mii": 100.0 * achieved / len(runs),
                    "sum_ii": sum_ii,
                    "sched_time_s": sched_time,
                }
            )
        name = limited.name
        table.add_row(
            name,
            f"{limited.lp}-{limited.sp}",
            per_variant[0]["pct_mii"], per_variant[0]["sum_ii"], per_variant[0]["sched_time_s"],
            per_variant[1]["pct_mii"], per_variant[1]["sum_ii"], per_variant[1]["sched_time_s"],
        )
        rows[name] = {
            "unlimited": per_variant[0],
            "limited": per_variant[1],
        }
    return ExperimentResult("table3", table, {"rows": rows})


# --------------------------------------------------------------------------- #
# Table 4: MIRS_HC vs. the non-iterative hierarchical scheduler
# --------------------------------------------------------------------------- #
def run_table4(
    n_loops: int = DEFAULT_N_LOOPS,
    seed: int = DEFAULT_SEED,
    config_name: str = "1C32S64",
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Head-to-head II comparison on a hierarchical non-clustered configuration."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    iterative = schedule_suite(
        loops, config_name, scheduler="mirs_hc", jobs=jobs, cache=cache, executor=executor, store=store
    )
    baseline = schedule_suite(
        loops, config_name, scheduler="non_iterative", jobs=jobs, cache=cache, executor=executor, store=store
    )

    better = {"count": 0, "baseline_ii": 0, "mirs_ii": 0}
    equal = {"count": 0, "baseline_ii": 0, "mirs_ii": 0}
    worse = {"count": 0, "baseline_ii": 0, "mirs_ii": 0}
    for run_m, run_b in zip(iterative, baseline):
        ii_m = run_m.result.ii if run_m.result.success else run_m.result.mii * 8
        ii_b = run_b.result.ii if run_b.result.success else run_b.result.mii * 8
        if ii_b < ii_m:
            bucket = better          # the non-iterative scheduler is better
        elif ii_b == ii_m:
            bucket = equal
        else:
            bucket = worse
        bucket["count"] += 1
        bucket["baseline_ii"] += ii_b
        bucket["mirs_ii"] += ii_m

    table = Table(
        ["comparison", "loops", "non-iterative sum II", "MIRS_HC sum II"],
        title=f"Table 4: non-iterative scheduler vs MIRS_HC ({config_name})",
    )
    table.add_row("non-iterative better", better["count"], better["baseline_ii"], better["mirs_ii"])
    table.add_row("equal", equal["count"], equal["baseline_ii"], equal["mirs_ii"])
    table.add_row("non-iterative worse", worse["count"], worse["baseline_ii"], worse["mirs_ii"])
    table.add_row(
        "total",
        better["count"] + equal["count"] + worse["count"],
        better["baseline_ii"] + equal["baseline_ii"] + worse["baseline_ii"],
        better["mirs_ii"] + equal["mirs_ii"] + worse["mirs_ii"],
    )
    return ExperimentResult(
        "table4",
        table,
        {"better": better, "equal": equal, "worse": worse, "config": config_name},
    )


# --------------------------------------------------------------------------- #
# Table 6: performance with an ideal memory system
# --------------------------------------------------------------------------- #
def run_table6(
    n_loops: int = DEFAULT_N_LOOPS,
    seed: int = DEFAULT_SEED,
    reference: str = "S64",
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Execution cycles, memory traffic, execution time and speedup vs S64."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    raw: Dict[str, Dict[str, float]] = {}
    for rf in table6_configs():
        runs = schedule_suite(loops, rf, jobs=jobs, cache=cache, executor=executor, store=store)
        raw[rf.name] = {
            "cycles": aggregate_cycles(runs),
            "traffic": aggregate_traffic(runs),
            "time_ns": aggregate_time_ns(runs),
            "failed": sum(1 for run in runs if not run.result.success),
        }
    ref_time = raw[reference]["time_ns"]
    table = Table(
        ["config", "lp-sp", "exec cycles", "mem traffic", "rel exec time", "speedup"],
        title=f"Table 6: ideal-memory performance (relative to {reference})",
    )
    rows: Dict[str, Dict[str, float]] = {}
    for rf in table6_configs():
        entry = raw[rf.name]
        rel_time = entry["time_ns"] / ref_time if ref_time else float("nan")
        ports = f"{rf.lp}-{rf.sp}" if rf.has_cluster_banks else "-"
        table.add_row(
            rf.name, ports, entry["cycles"], entry["traffic"], rel_time,
            1.0 / rel_time if rel_time else float("nan"),
        )
        rows[rf.name] = {
            **entry,
            "relative_time": rel_time,
            "speedup": 1.0 / rel_time if rel_time else float("nan"),
        }
    return ExperimentResult("table6", table, {"rows": rows, "reference": reference})


# --------------------------------------------------------------------------- #
# Figure 4: LoadR / StoreR port requirements
# --------------------------------------------------------------------------- #
def _figure4_config(n_clusters: int) -> RFConfig:
    """Hierarchical configuration with unbounded shared bank and wide ports."""
    cluster_regs = 32 if n_clusters <= 2 else 16
    return RFConfig(
        n_clusters=n_clusters,
        cluster_regs=cluster_regs,
        shared_regs=UNBOUNDED,
        lp=16,
        sp=16,
    )


def run_figure4(
    n_loops: int = 64,
    seed: int = DEFAULT_SEED,
    max_ports: int = 6,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Cumulative distribution of the lp / sp ports loops need per cluster bank."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    table = Table(
        ["clusters"] + [f"lp<={p}" for p in range(max_ports + 1)]
        + [f"sp<={p}" for p in range(max_ports + 1)],
        title="Figure 4: cumulative % of loops needing at most n LoadR/StoreR ports",
    )
    data: Dict[int, Dict[str, List[float]]] = {}
    for n_clusters in figure4_cluster_counts():
        rf = _figure4_config(n_clusters)
        runs = schedule_suite(loops, rf, scale_to_clock=False, jobs=jobs, cache=cache, executor=executor, store=store)
        lp_needed: List[int] = []
        sp_needed: List[int] = []
        for run in runs:
            result = run.result
            if not result.success or result.graph is None:
                lp_needed.append(max_ports)
                sp_needed.append(max_ports)
                continue
            loadr_per_cluster = [0] * n_clusters
            storer_per_cluster = [0] * n_clusters
            for op in result.graph.communication_operations():
                placed = result.assignments.get(op.node_id)
                if placed is None or placed.cluster is None or placed.cluster < 0:
                    continue
                if op.op.mnemonic == "loadr":
                    loadr_per_cluster[placed.cluster] += 1
                elif op.op.mnemonic == "storer":
                    storer_per_cluster[placed.cluster] += 1
            ii = max(1, result.ii)
            lp_needed.append(max((count + ii - 1) // ii for count in loadr_per_cluster) if loadr_per_cluster else 0)
            sp_needed.append(max((count + ii - 1) // ii for count in storer_per_cluster) if storer_per_cluster else 0)
        n = float(len(runs))
        lp_cdf = [100.0 * sum(1 for v in lp_needed if v <= p) / n for p in range(max_ports + 1)]
        sp_cdf = [100.0 * sum(1 for v in sp_needed if v <= p) / n for p in range(max_ports + 1)]
        table.add_row(n_clusters, *lp_cdf, *sp_cdf)
        data[n_clusters] = {"lp_cdf": lp_cdf, "sp_cdf": sp_cdf}
    return ExperimentResult("figure4", table, {"cdf": data})


# --------------------------------------------------------------------------- #
# Figure 6: real memory system with binding prefetching
# --------------------------------------------------------------------------- #
def run_figure6(
    n_loops: int = 64,
    seed: int = DEFAULT_SEED,
    reference: str = "S64",
    prefetch: Optional[PrefetchPolicy] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Useful / stall cycles and execution time under the real memory system."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    policy = prefetch or PrefetchPolicy()
    machine = baseline_machine()
    raw: Dict[str, Dict[str, float]] = {}
    for rf in figure6_configs():
        spec = derive_hardware(machine, rf)
        runs = schedule_suite(loops, rf, prefetch=policy, jobs=jobs, cache=cache, executor=executor, store=store)
        cache_config = CacheConfig(
            size_bytes=machine.cache_size_bytes,
            line_bytes=machine.cache_line_bytes,
            max_pending=machine.cache_max_pending,
            hit_latency=spec.mem_hit_latency,
            miss_latency=spec.miss_latency_cycles(machine.miss_latency_ns),
        )
        useful = 0.0
        stall = 0.0
        misses = 0
        for run in runs:
            stats = simulate_loop_execution(run.loop, run.result, cache_config)
            useful += stats.useful_cycles
            stall += stats.stall_cycles
            misses += stats.n_misses
        raw[rf.name] = {
            "useful_cycles": useful,
            "stall_cycles": stall,
            "total_cycles": useful + stall,
            "useful_time_ns": useful * spec.clock_ns,
            "stall_time_ns": stall * spec.clock_ns,
            "total_time_ns": (useful + stall) * spec.clock_ns,
            "misses": misses,
            "clock_ns": spec.clock_ns,
        }
    ref_cycles = raw[reference]["useful_cycles"]
    ref_time = raw[reference]["total_time_ns"]
    table = Table(
        [
            "config", "useful cycles (rel)", "stall cycles (rel)",
            "total cycles (rel)", "total time (rel)", "speedup",
        ],
        title=f"Figure 6: real-memory evaluation (relative to {reference} useful cycles / total time)",
    )
    rows: Dict[str, Dict[str, float]] = {}
    for rf in figure6_configs():
        entry = raw[rf.name]
        rel_useful = entry["useful_cycles"] / ref_cycles
        rel_stall = entry["stall_cycles"] / ref_cycles
        rel_total_time = entry["total_time_ns"] / ref_time
        table.add_row(
            rf.name, rel_useful, rel_stall, rel_useful + rel_stall,
            rel_total_time, 1.0 / rel_total_time if rel_total_time else float("nan"),
        )
        rows[rf.name] = {
            **entry,
            "relative_useful": rel_useful,
            "relative_stall": rel_stall,
            "relative_time": rel_total_time,
            "speedup": 1.0 / rel_total_time if rel_total_time else float("nan"),
        }
    return ExperimentResult("figure6", table, {"rows": rows, "reference": reference})


# --------------------------------------------------------------------------- #
# Ablations (beyond the paper's tables)
# --------------------------------------------------------------------------- #
def run_ablation_budget_ratio(
    ratios: Sequence[float] = (1.0, 2.0, 4.0, 6.0, 10.0),
    n_loops: int = 48,
    seed: int = DEFAULT_SEED,
    config_name: str = "4C32S16",
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Sensitivity of schedule quality and scheduling time to Budget_Ratio."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    table = Table(
        ["budget_ratio", "sum II", "failed", "%MII", "sched time (s)"],
        title=f"Ablation: Budget_Ratio sensitivity on {config_name}",
    )
    rows = {}
    for ratio in ratios:
        runs = schedule_suite(
            loops, config_name, budget_ratio=ratio, jobs=jobs, cache=cache, executor=executor, store=store
        )
        # Loops the scheduler gives up on are charged a large penalty so
        # that starving the budget shows up in the aggregate instead of
        # silently shrinking the sum.
        sum_ii = sum(
            run.result.ii if run.result.success else 8 * run.result.mii
            for run in runs
        )
        failed = sum(1 for run in runs if not run.result.success)
        pct_mii = 100.0 * sum(1 for r in runs if r.result.achieved_mii) / len(runs)
        sched = sum(run.result.scheduling_time_s for run in runs)
        table.add_row(ratio, sum_ii, failed, pct_mii, sched)
        rows[ratio] = {
            "sum_ii": sum_ii,
            "failed": failed,
            "pct_mii": pct_mii,
            "sched_time_s": sched,
        }
    return ExperimentResult("ablation_budget_ratio", table, {"rows": rows})


def run_ablation_prefetch(
    n_loops: int = 48,
    seed: int = DEFAULT_SEED,
    config_name: str = "4C32S16",
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Effect of selective binding prefetching on stall cycles (one configuration)."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    machine = baseline_machine()
    rf = config_by_name(config_name)
    spec = derive_hardware(machine, rf)
    cache_config = CacheConfig(
        size_bytes=machine.cache_size_bytes,
        line_bytes=machine.cache_line_bytes,
        max_pending=machine.cache_max_pending,
        hit_latency=spec.mem_hit_latency,
        miss_latency=spec.miss_latency_cycles(machine.miss_latency_ns),
    )
    table = Table(
        ["prefetch", "useful cycles", "stall cycles", "stall share"],
        title=f"Ablation: binding prefetching on {config_name}",
    )
    rows = {}
    for enabled in (False, True):
        policy = PrefetchPolicy(enabled=enabled)
        runs = schedule_suite(loops, rf, prefetch=policy, jobs=jobs, cache=cache, executor=executor, store=store)
        useful = 0.0
        stall = 0.0
        for run in runs:
            stats = simulate_loop_execution(run.loop, run.result, cache_config)
            useful += stats.useful_cycles
            stall += stats.stall_cycles
        share = stall / (useful + stall) if useful + stall else 0.0
        table.add_row("on" if enabled else "off", useful, stall, share)
        rows[enabled] = {"useful": useful, "stall": stall, "stall_share": share}
    return ExperimentResult("ablation_prefetch", table, {"rows": rows})


def run_ablation_ports(
    port_counts: Sequence[Tuple[int, int]] = ((1, 1), (2, 1), (3, 2), (4, 2)),
    n_loops: int = 48,
    seed: int = DEFAULT_SEED,
    base_config: str = "4C16S16",
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Sensitivity of the achieved II to the number of lp/sp ports."""
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    base = config_by_name(base_config)
    table = Table(
        ["lp", "sp", "sum II", "%MII"],
        title=f"Ablation: inter-level port count sensitivity on {base_config}",
    )
    rows = {}
    for lp, sp in port_counts:
        rf = base.with_ports(lp, sp)
        runs = schedule_suite(loops, rf, jobs=jobs, cache=cache, executor=executor, store=store)
        sum_ii = sum(run.result.ii for run in runs if run.result.success)
        pct_mii = 100.0 * sum(1 for r in runs if r.result.achieved_mii) / len(runs)
        table.add_row(lp, sp, sum_ii, pct_mii)
        rows[(lp, sp)] = {"sum_ii": sum_ii, "pct_mii": pct_mii}
    return ExperimentResult("ablation_ports", table, {"rows": rows})


def run_ablation_policies(
    n_loops: int = 48,
    seed: int = DEFAULT_SEED,
    config_name: str = "4C16S16",
    policies: Optional[Sequence[str]] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional["EvalCache"] = None,
    session: "Optional[Session]" = None,
) -> ExperimentResult:
    """Head-to-head comparison of every registered policy bundle.

    Schedules the same workbench on the same configuration once per
    bundle, so every heuristic the paper describes (HRMS-style ordering,
    Select_Cluster, spill-victim choice, the II search, and
    backtracking itself) can be ablated against the MIRS_HC defaults.
    Bundles default to every registered one (see
    :func:`repro.core.policy.bundle_names`).
    """
    jobs, cache, executor, store = _engine_context(session, jobs, cache)
    loops = _suite(n_loops, seed)
    names = list(policies) if policies else bundle_names()
    table = Table(
        [
            "policy", "axes", "sum II", "failed", "%MII",
            "spill mem", "comm", "pressure checks", "sched s",
        ],
        title=f"Ablation: policy bundles on {config_name} ({n_loops} loops)",
    )
    rows: Dict[str, Dict[str, object]] = {}
    for name in names:
        bundle = resolve_bundle(name)
        runs = schedule_suite(loops, config_name, scheduler=name, jobs=jobs, cache=cache, executor=executor, store=store)
        # Loops a bundle gives up on are charged a penalty so weak
        # bundles show up in the aggregate instead of shrinking the sum.
        sum_ii = sum(
            run.result.ii if run.result.success else 8 * run.result.mii
            for run in runs
        )
        failed = sum(1 for run in runs if not run.result.success)
        pct_mii = 100.0 * sum(1 for r in runs if r.result.achieved_mii) / len(runs)
        spill_mem = sum(run.result.n_spill_memory_ops for run in runs)
        comm = sum(run.result.n_comm_ops for run in runs)
        checks = sum(run.result.n_pressure_checks for run in runs)
        sched = sum(run.result.scheduling_time_s for run in runs)
        axes = "/".join(
            (bundle.ordering, bundle.cluster, bundle.spill, bundle.ii_search)
        ) + ("" if bundle.backtracking else " (non-iter)")
        table.add_row(name, axes, sum_ii, failed, pct_mii, spill_mem, comm, checks, sched)
        rows[name] = {
            "axes": bundle.axes(),
            "sum_ii": sum_ii,
            "failed": failed,
            "pct_mii": pct_mii,
            "spill_mem": spill_mem,
            "comm": comm,
            "pressure_checks": checks,
            "sched_time_s": sched,
        }
    return ExperimentResult(
        "ablation_policies", table, {"rows": rows, "config": config_name}
    )
