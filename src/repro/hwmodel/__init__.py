"""Register-file hardware model (access time, area, clock, latencies).

The paper uses the CACTI 3.0 model (adapted to register files, 0.10 µm
minimum drawn gate length) to translate a register-file organization into
an access time and an area, then derives the processor clock cycle from
the access time (via the logic depth in FO4) and re-scales every operation
latency to that clock.

This package reproduces that flow:

* :mod:`repro.hwmodel.cacti` -- an analytical access-time/area model for a
  single register bank, calibrated against the values the paper publishes
  (Tables 2 and 5).
* :mod:`repro.hwmodel.published` -- the paper's published hardware numbers
  for every named configuration, used verbatim when available so the
  experiments run with exactly the paper's clock cycles and latencies.
* :mod:`repro.hwmodel.timing` -- logic depth / clock-cycle derivation and
  the per-configuration scaling of operation latencies, producing the
  :class:`~repro.hwmodel.spec.HardwareSpec` consumed by the scheduler and
  the evaluation harness.
"""

from repro.hwmodel.spec import BankEstimate, BankGeometry, HardwareSpec
from repro.hwmodel.cacti import RegisterFileModel, bank_geometries
from repro.hwmodel.published import PAPER_TABLE5, published_spec
from repro.hwmodel.timing import derive_hardware, scaled_machine

__all__ = [
    "BankEstimate",
    "BankGeometry",
    "HardwareSpec",
    "RegisterFileModel",
    "bank_geometries",
    "PAPER_TABLE5",
    "published_spec",
    "derive_hardware",
    "scaled_machine",
]
