"""Clock-cycle derivation and per-configuration latency scaling.

The paper derives the processor clock from the access time of the
first-level register bank: the access time (in ns) is converted to a
logic depth in FO4 inverter delays, and the clock period is that many FO4
plus a fixed clocking overhead (latch + skew), following Hrishikesh et
al. (ISCA 2002), which the paper cites for this step.  The latencies of
the functional units and of memory accesses are then re-expressed in
cycles of the new clock.

The FO4 delay and the clocking overhead used here (0.036 ns and 0.065 ns
at 0.10 µm) are recovered from the paper's own Table 5: they reproduce
every published (logic depth -> clock cycle) pair exactly.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.machine.config import MachineConfig, RFConfig
from repro.hwmodel.cacti import RegisterFileModel, bank_geometries
from repro.hwmodel.published import published_spec
from repro.hwmodel.spec import BankEstimate, HardwareSpec

__all__ = [
    "FO4_NS",
    "CLOCK_OVERHEAD_NS",
    "logic_depth_from_access",
    "clock_from_depth",
    "derive_hardware",
    "scaled_machine",
]

#: FO4 inverter delay at 0.10 µm (ns); recovered from the paper's Table 5.
FO4_NS: float = 0.036
#: Per-cycle clocking overhead (latch + skew), ns; recovered from Table 5.
CLOCK_OVERHEAD_NS: float = 0.065
#: Effective per-FO4 slice of the access time used to quantize the logic
#: depth.  Slightly larger than ``FO4_NS`` because part of the access path
#: overlaps with the clock overhead.
_DEPTH_QUANTUM_NS: float = 0.0385
#: The paper never clocks a configuration faster than ~9 FO4 of logic
#: (Hrishikesh et al. place the optimum at 6-8 FO4 of *useful* logic).
MIN_LOGIC_DEPTH: int = 6

# Reference values used when scaling latencies analytically: the baseline
# S128 machine runs FP add/multiply in 4 cycles of a 1.181 ns clock and
# L1 read hits in 2 cycles; expressing those in ns gives the targets that
# faster clocks must still cover.
_FU_LATENCY_NS: float = 2.9
_MEM_HIT_NS: float = 2.0


def logic_depth_from_access(access_ns: float) -> int:
    """Logic depth (in FO4) needed to access the bank in one cycle."""
    return max(MIN_LOGIC_DEPTH, int(round(access_ns / _DEPTH_QUANTUM_NS)))


def clock_from_depth(depth_fo4: int) -> float:
    """Clock period (ns) for a pipeline stage with the given logic depth."""
    return depth_fo4 * FO4_NS + CLOCK_OVERHEAD_NS


def derive_hardware(
    machine: MachineConfig,
    rf: RFConfig,
    *,
    model: Optional[RegisterFileModel] = None,
    prefer_published: bool = True,
) -> HardwareSpec:
    """Derive the full hardware spec (clock, areas, latencies) of a configuration.

    When ``prefer_published`` is true and the configuration is one of the
    paper's named configurations, the published Table 2 / Table 5 values
    are returned verbatim; otherwise the analytical CACTI-like model is
    used and the clock / latencies are derived with the rules above.
    """
    if prefer_published:
        spec = published_spec(rf.name)
        if spec is not None:
            return spec

    model = model or RegisterFileModel()
    geometries = bank_geometries(machine, rf)
    cluster_geom = geometries["cluster"]
    shared_geom = geometries["shared"]
    cluster_est: Optional[BankEstimate] = (
        model.estimate(cluster_geom) if cluster_geom is not None else None
    )
    shared_est: Optional[BankEstimate] = (
        model.estimate(shared_geom) if shared_geom is not None else None
    )

    # The cycle time is constrained by the bank that directly feeds the
    # functional units: the cluster banks when they exist, otherwise the
    # (monolithic) shared bank.
    first_level = cluster_est if cluster_est is not None else shared_est
    assert first_level is not None
    depth = logic_depth_from_access(first_level.access_ns)
    clock = clock_from_depth(depth)

    fu_latency = max(4, math.ceil(_FU_LATENCY_NS / clock))
    mem_hit = max(2, math.ceil(_MEM_HIT_NS / clock))

    loadr_latency: Optional[int] = None
    if rf.is_hierarchical and shared_est is not None:
        loadr_latency = max(1, math.ceil(shared_est.access_ns / clock))

    return HardwareSpec(
        config_name=rf.name,
        cluster_bank=cluster_est,
        shared_bank=shared_est,
        logic_depth_fo4=depth,
        clock_ns=clock,
        mem_hit_latency=mem_hit,
        fu_latency=fu_latency,
        loadr_latency=loadr_latency,
        from_published=False,
        _n_cluster_banks=rf.n_clusters if rf.has_cluster_banks else 1,
    )


def scaled_machine(
    machine: MachineConfig,
    rf: RFConfig,
    *,
    spec: Optional[HardwareSpec] = None,
    prefer_published: bool = True,
) -> Tuple[MachineConfig, HardwareSpec]:
    """A machine whose operation latencies are re-scaled for ``rf``'s clock.

    Returns the scaled :class:`MachineConfig` (ready to hand to the
    scheduler) together with the :class:`HardwareSpec` used to scale it.
    """
    if spec is None:
        spec = derive_hardware(machine, rf, prefer_published=prefer_published)
    scaled = machine.scale_latencies(spec.latency_overrides())
    return scaled, spec
