"""Dataclasses describing the derived hardware characteristics of a configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["BankGeometry", "BankEstimate", "HardwareSpec"]


@dataclass(frozen=True)
class BankGeometry:
    """Physical shape of one register bank: capacity and port counts."""

    registers: int
    read_ports: int
    write_ports: int

    @property
    def ports(self) -> int:
        """Total number of access ports."""
        return self.read_ports + self.write_ports


@dataclass(frozen=True)
class BankEstimate:
    """Access time and area estimated (or published) for one register bank."""

    access_ns: float
    area_mlambda2: float


@dataclass(frozen=True)
class HardwareSpec:
    """Complete derived hardware description of one RF configuration.

    This is the object consumed by the evaluation harness: it carries the
    clock period (which multiplies the scheduler's cycle counts to obtain
    execution time), the per-bank access times and areas (Table 2 /
    Table 5), and the operation latencies re-scaled to the configuration's
    clock (last column of Table 5).
    """

    config_name: str
    cluster_bank: Optional[BankEstimate]
    shared_bank: Optional[BankEstimate]
    logic_depth_fo4: int
    clock_ns: float
    #: Latency (cycles) of a memory read that hits in the L1 cache.
    mem_hit_latency: int
    #: Latency (cycles) of pipelined FP operations (add, multiply).
    fu_latency: int
    #: Latency (cycles) of LoadR/StoreR operations (hierarchical configs);
    #: ``None`` for configurations without a shared bank below cluster banks.
    loadr_latency: Optional[int]
    #: Whether the numbers come from the paper's published tables (True) or
    #: from the analytical CACTI-like model (False).
    from_published: bool = True

    @property
    def total_area_mlambda2(self) -> float:
        """Total register-file area (sum over all banks), in 10^6 λ²."""
        area = 0.0
        if self.cluster_bank is not None:
            area += self.cluster_bank.area_mlambda2 * self._n_cluster_banks
        if self.shared_bank is not None:
            area += self.shared_bank.area_mlambda2
        return area

    # Number of cluster banks is injected by the deriving code via a plain
    # attribute because frozen dataclasses cannot easily carry derived state.
    _n_cluster_banks: int = 1

    @property
    def access_time_ns(self) -> float:
        """The access time that constrains the cycle (first-level bank)."""
        if self.cluster_bank is not None:
            return self.cluster_bank.access_ns
        assert self.shared_bank is not None
        return self.shared_bank.access_ns

    def latency_overrides(self) -> Dict[str, int]:
        """Operation-latency overrides implied by this hardware spec.

        The returned mapping can be passed to
        :meth:`repro.machine.config.MachineConfig.scale_latencies`.
        Division and square-root latencies are scaled proportionally to the
        pipelined FP latency (the paper only publishes the latter).
        """
        fu = self.fu_latency
        overrides = {
            "fadd": fu,
            "fmul": fu,
            "fdiv": max(fu, round(17 * fu / 4)),
            "fsqrt": max(fu, round(30 * fu / 4)),
            "load": self.mem_hit_latency,
            "store": max(1, self.mem_hit_latency - 1),
            "move": 1,
        }
        if self.loadr_latency is not None:
            overrides["loadr"] = self.loadr_latency
            overrides["storer"] = self.loadr_latency
        return overrides

    def miss_latency_cycles(self, miss_latency_ns: float) -> int:
        """Main-memory miss latency converted to this configuration's cycles."""
        return max(1, round(miss_latency_ns / self.clock_ns))
