"""The paper's published hardware numbers (Tables 2 and 5).

For every named register-file configuration evaluated in the paper, this
module records the CACTI-derived access times and areas, the logic depth,
the clock cycle and the re-scaled memory / functional-unit latencies
exactly as published.  Using these values (rather than our re-fitted
analytical model) for the named configurations keeps the reproduction of
Tables 5 and 6 and Figure 6 faithful to the paper's own hardware numbers;
the analytical model in :mod:`repro.hwmodel.cacti` is used for any other
configuration a user constructs.

The ``1C64S64`` row (which appears in Tables 1 and 2 but not in Table 5)
is completed with the clock cycle the paper quotes in the text ("the cycle
time of a hierarchical 1C64S64 configuration is 0.86 times the cycle time
of the monolithic S128 counterpart").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hwmodel.spec import BankEstimate, HardwareSpec

__all__ = ["PublishedRow", "PAPER_TABLE5", "published_spec"]


@dataclass(frozen=True)
class PublishedRow:
    """One row of the paper's hardware evaluation (Table 5 layout)."""

    name: str
    lp: Optional[int]
    sp: Optional[int]
    cluster_access_ns: Optional[float]
    shared_access_ns: Optional[float]
    cluster_area: Optional[float]      # 10^6 λ² per cluster bank
    shared_area: Optional[float]       # 10^6 λ²
    total_area: float                  # 10^6 λ² (as printed in the paper)
    logic_depth_fo4: int
    clock_ns: float
    mem_hit_latency: int
    fu_latency: int
    loadr_latency: Optional[int]
    n_cluster_banks: int


_ROWS = [
    #            name       lp   sp   c_acc   s_acc   c_area s_area total  fo4  clk    mem fu  ldr  nC
    PublishedRow("S128",    None, None, None,  1.145,  None,  14.91, 14.91, 31, 1.181, 2,  4, None, 0),
    PublishedRow("S64",     None, None, None,  1.021,  None,  12.20, 12.20, 27, 1.037, 3,  4, None, 0),
    PublishedRow("S32",     None, None, None,  0.685,  None,   7.50,  7.50, 18, 0.713, 3,  4, None, 0),
    PublishedRow("1C64S32", 3,    2,    0.943, 0.485, 10.07,   1.31, 11.37, 25, 0.965, 3,  4, 1,    1),
    PublishedRow("1C32S64", 4,    2,    0.666, 0.493,  6.61,   1.50,  8.12, 17, 0.677, 3,  4, 1,    1),
    PublishedRow("2C64",    1,    1,    0.686, None,   3.99,   None,  7.98, 18, 0.713, 3,  4, None, 2),
    PublishedRow("2C32",    1,    1,    0.532, None,   2.44,   None,  4.88, 13, 0.533, 4,  6, None, 2),
    PublishedRow("2C64S32", 2,    1,    0.626, 0.493,  2.81,   1.50,  7.12, 16, 0.641, 3,  5, 1,    2),
    PublishedRow("2C32S32", 3,    1,    0.515, 0.510,  1.95,   1.94,  5.83, 13, 0.533, 4,  6, 1,    2),
    PublishedRow("4C64",    1,    1,    0.531, None,   1.30,   None,  5.21, 13, 0.533, 4,  6, None, 4),
    PublishedRow("4C32",    1,    1,    0.475, None,   1.07,   None,  4.29, 12, 0.497, 4,  6, None, 4),
    PublishedRow("4C32S16", 1,    1,    0.442, 0.456,  0.70,   1.57,  4.38, 11, 0.461, 4,  7, 1,    4),
    PublishedRow("4C16S16", 2,    1,    0.393, 0.483,  0.52,   2.42,  4.49, 10, 0.425, 4,  7, 2,    4),
    PublishedRow("8C32S16", 1,    1,    0.400, 0.532,  0.30,   3.45,  5.84, 10, 0.425, 4,  7, 2,    8),
    PublishedRow("8C16S16", 1,    1,    0.360, 0.532,  0.17,   3.45,  4.82,  9, 0.389, 5,  8, 2,    8),
    # Table 1/2 configuration, clock derived from the "0.86 x S128" quote.
    PublishedRow("1C64S64", 1,    1,    0.979, 0.610, 10.79,   2.47, 13.26, 26, 1.016, 3,  4, 1,    1),
]

#: Published hardware rows keyed by configuration name.
PAPER_TABLE5: Dict[str, PublishedRow] = {row.name: row for row in _ROWS}


def published_spec(name: str) -> Optional[HardwareSpec]:
    """The paper's published :class:`HardwareSpec` for ``name``, if any."""
    row = PAPER_TABLE5.get(name)
    if row is None:
        return None
    cluster = (
        BankEstimate(row.cluster_access_ns, row.cluster_area)
        if row.cluster_access_ns is not None and row.cluster_area is not None
        else None
    )
    shared = (
        BankEstimate(row.shared_access_ns, row.shared_area)
        if row.shared_access_ns is not None and row.shared_area is not None
        else None
    )
    return HardwareSpec(
        config_name=row.name,
        cluster_bank=cluster,
        shared_bank=shared,
        logic_depth_fo4=row.logic_depth_fo4,
        clock_ns=row.clock_ns,
        mem_hit_latency=row.mem_hit_latency,
        fu_latency=row.fu_latency,
        loadr_latency=row.loadr_latency,
        from_published=True,
        _n_cluster_banks=max(1, row.n_cluster_banks),
    )
