"""Analytical register-file access-time and area model.

The paper feeds each candidate bank geometry (number of registers, number
of read/write ports) to the CACTI 3.0 cache model, adapted to register
files (tag path and TLB removed), for a 0.10 µm minimum drawn gate
length.  CACTI itself is a large C program; what the paper actually needs
from it is a smooth mapping::

    (registers, read ports, write ports)  ->  (access time [ns], area [λ²])

This module reproduces that mapping with a power-law model

.. math::

    t_{access} = k_t \\, R^{a_t} P^{b_t}, \\qquad
    A = k_A \\, R^{a_A} P^{b_A}

(:math:`R` registers, :math:`P` total ports), whose exponents follow the
classic register-file scaling analysis (area grows roughly with
:math:`R\\,P^2` for large port counts because each port adds a wordline
and a bitline to every cell; the access time grows with the square root
of the word-line/bit-line RC product).  The coefficients are calibrated
by least squares against every bank geometry whose access time and area
the paper publishes in Tables 2 and 5 (23 data points); the resulting
model reproduces those points with a mean relative error of about 8 %
(time) and 13 % (area).

For the *named* configurations used in the paper's experiments the
published values themselves are used (see
:mod:`repro.hwmodel.published`); this analytical model serves arbitrary,
user-defined configurations and the design-space-exploration example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.machine.config import MachineConfig, RFConfig, RFKind
from repro.hwmodel.spec import BankEstimate, BankGeometry

__all__ = ["RegisterFileModel", "bank_geometries"]


@dataclass(frozen=True)
class RegisterFileModel:
    """Power-law access-time/area model for a multi-ported register bank.

    The default coefficients are the least-squares fit to the paper's
    published CACTI numbers at 0.10 µm (see module docstring).  All
    coefficients are exposed so that users targeting a different process
    or a different bit width can re-calibrate the model.
    """

    #: access time = time_k * R^time_reg_exp * P^time_port_exp   [ns]
    time_k: float = 0.077446
    time_reg_exp: float = 0.28778
    time_port_exp: float = 0.35323
    #: area = area_k * R^area_reg_exp * P^area_port_exp          [10^6 λ²]
    area_k: float = 0.0022042
    area_reg_exp: float = 0.56348
    area_port_exp: float = 1.78926
    #: floor applied to port counts so degenerate geometries stay sane
    min_ports: int = 2
    #: floor applied to register counts (a bank always has a few entries)
    min_registers: int = 4

    def access_time_ns(self, geometry: BankGeometry) -> float:
        """Estimated access time of the bank, in nanoseconds."""
        regs = max(self.min_registers, geometry.registers)
        ports = max(self.min_ports, geometry.ports)
        return self.time_k * (regs ** self.time_reg_exp) * (ports ** self.time_port_exp)

    def area_mlambda2(self, geometry: BankGeometry) -> float:
        """Estimated area of the bank, in 10^6 λ²."""
        regs = max(self.min_registers, geometry.registers)
        ports = max(self.min_ports, geometry.ports)
        return self.area_k * (regs ** self.area_reg_exp) * (ports ** self.area_port_exp)

    def estimate(self, geometry: BankGeometry) -> BankEstimate:
        """Access time and area of the bank."""
        return BankEstimate(
            access_ns=self.access_time_ns(geometry),
            area_mlambda2=self.area_mlambda2(geometry),
        )


def bank_geometries(
    machine: MachineConfig, rf: RFConfig, *, register_cap: int = 1024
) -> Dict[str, Optional[BankGeometry]]:
    """Port-count model: the geometry of every bank of a configuration.

    Port accounting follows Section 3 of the paper:

    * Every functional unit attached to a bank contributes 2 read ports and
      1 write port.
    * Every memory port attached to a bank contributes 1 read port (store
      data) and 1 write port (load result).
    * In clustered organizations each cluster bank additionally has ``lp``
      input ports and ``sp`` output ports for inter-cluster ``Move``
      traffic (modelled as 1 extra write / read port group).
    * In hierarchical organizations each cluster bank has ``lp`` write
      ports (``LoadR`` destinations) and ``sp`` read ports (``StoreR``
      sources); the shared bank provides the matching ``n_clusters*lp``
      read and ``n_clusters*sp`` write ports plus the memory ports.

    Unbounded register counts are capped at ``register_cap`` so the
    analytical model still produces a (large) finite estimate.

    Returns
    -------
    dict
        ``{"cluster": BankGeometry | None, "shared": BankGeometry | None}``
    """
    machine.validate_rf(rf)
    result: Dict[str, Optional[BankGeometry]] = {"cluster": None, "shared": None}

    def cap(regs: int) -> int:
        return min(regs, register_cap)

    fus_per_cluster = machine.fus_per_cluster(rf)

    if rf.kind is RFKind.MONOLITHIC:
        assert rf.shared_regs is not None
        result["shared"] = BankGeometry(
            registers=cap(rf.shared_regs),
            read_ports=2 * machine.n_fus + machine.n_mem_ports,
            write_ports=machine.n_fus + machine.n_mem_ports,
        )
        return result

    if rf.kind is RFKind.CLUSTERED:
        assert rf.cluster_regs is not None
        mem_per_cluster = machine.mem_ports_per_cluster(rf)
        result["cluster"] = BankGeometry(
            registers=cap(rf.cluster_regs),
            read_ports=2 * fus_per_cluster + mem_per_cluster + min(rf.sp, 4),
            write_ports=fus_per_cluster + mem_per_cluster + min(rf.lp, 4),
        )
        return result

    # Hierarchical (clustered or not): cluster banks hold only FU operands,
    # the shared bank holds the memory interface and the inter-level ports.
    assert rf.cluster_regs is not None and rf.shared_regs is not None
    lp = min(rf.lp, 8)
    sp = min(rf.sp, 8)
    result["cluster"] = BankGeometry(
        registers=cap(rf.cluster_regs),
        read_ports=2 * fus_per_cluster + sp,
        write_ports=fus_per_cluster + lp,
    )
    result["shared"] = BankGeometry(
        registers=cap(rf.shared_regs),
        read_ports=machine.n_mem_ports + rf.n_clusters * lp,
        write_ports=machine.n_mem_ports + rf.n_clusters * sp,
    )
    return result
