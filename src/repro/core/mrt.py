"""The modulo reservation table (MRT).

A modulo schedule issues one iteration of the loop every II cycles, so a
resource used at cycle ``t`` is also used at ``t + k*II`` for every other
iteration ``k``.  The MRT therefore has exactly ``II`` rows per resource
instance: reserving a resource at cycle ``t`` occupies row ``t mod II``.

Unpipelined operations (division, square root) occupy their functional
unit for several consecutive cycles, i.e. several consecutive rows of the
table (capped at II rows -- beyond that the unit would be permanently
busy, which the reservation logic treats as occupying every row).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.machine.resources import ResourceKey, ResourceUse

__all__ = ["ModuloReservationTable"]


class ModuloReservationTable:
    """Per-resource, per-modulo-slot occupancy tracking.

    Parameters
    ----------
    ii:
        The initiation interval (number of rows per resource).
    counts:
        Number of instances of every resource (from
        :meth:`repro.machine.resources.ResourceModel.counts`).
    """

    def __init__(self, ii: int, counts: Dict[ResourceKey, int]) -> None:
        if ii < 1:
            raise ValueError("the initiation interval must be >= 1")
        self.ii = ii
        self._counts = dict(counts)
        # table[resource][slot] -> list of node ids occupying one instance each
        self._table: Dict[ResourceKey, List[List[int]]] = {
            key: [[] for _ in range(ii)] for key in counts
        }
        # node -> list of (resource, slot) entries it occupies
        self._held: Dict[int, List[Tuple[ResourceKey, int]]] = {}
        #: Window scans answered (:meth:`first_free_cycle` calls) -- the
        #: same count as the array backend, whose epoch memo additionally
        #: reports ``n_memo_hits`` (always 0 here: this backend recomputes
        #: every answer, which is exactly what makes it the oracle).
        self.n_probes: int = 0
        self.n_memo_hits: int = 0

    # ------------------------------------------------------------------ #
    def _slots(self, use: ResourceUse, cycle: int) -> List[int]:
        """Modulo slots a use occupies.  Kept allocation-free for the
        overwhelmingly common fully pipelined (duration == 1) case."""
        start = cycle + use.offset
        if use.duration == 1:
            return [start % self.ii]
        span = min(use.duration, self.ii)
        return [(start + delta) % self.ii for delta in range(span)]

    def capacity(self, key: ResourceKey) -> int:
        return self._counts.get(key, 0)

    def can_reserve(self, uses: Sequence[ResourceUse], cycle: int) -> bool:
        """True when every requested reservation has a free instance.

        This is the scheduler's innermost feasibility check (hundreds of
        thousands of calls per workbench config), so the common
        single-slot path is fully inlined: no generator, one dict lookup
        per use, and the multi-use double-counting dict is only built
        when a second use actually lands on an already-counted slot.
        """
        counts = self._counts
        table = self._table
        ii = self.ii
        # Count how many instances each (resource, slot) pair would need,
        # so that two uses of the same resource in the same call are both
        # accounted for.
        needed: Dict[Tuple[ResourceKey, int], int] = {}
        for use in uses:
            key = use.key
            capacity = counts.get(key, 0)
            if capacity <= 0:
                return False
            start = cycle + use.offset
            if use.duration == 1:
                slot = start % ii
                extra = needed.get((key, slot), 0) + 1
                if len(table[key][slot]) + extra > capacity:
                    return False
                needed[(key, slot)] = extra
            else:
                for delta in range(min(use.duration, ii)):
                    slot = (start + delta) % ii
                    extra = needed.get((key, slot), 0) + 1
                    if len(table[key][slot]) + extra > capacity:
                        return False
                    needed[(key, slot)] = extra
        return True

    def first_free_cycle(
        self, uses: Sequence[ResourceUse], cycles: Sequence[int]
    ) -> "int | None":
        """First cycle of ``cycles`` where ``can_reserve`` holds, or ``None``.

        The window-scan entry point shared with the array backend
        (:meth:`repro.core.arraycore.ArrayMRT.first_free_cycle`, which
        accelerates the same contract with full-slot bitmasks).
        """
        self.n_probes += 1
        if not uses:
            for cycle in cycles:
                return cycle
            return None
        for cycle in cycles:
            if self.can_reserve(uses, cycle):
                return cycle
        return None

    def reserve(
        self,
        node_id: int,
        uses: Sequence[ResourceUse],
        cycle: int,
        *,
        assume_free: bool = False,
    ) -> None:
        """Reserve resources for ``node_id`` issuing at ``cycle``.

        The caller must have checked :meth:`can_reserve` (or be prepared to
        over-subscribe deliberately, which this method refuses).
        ``assume_free`` skips the re-check for callers that just proved
        availability -- same fused fast path as the array backend.
        """
        if not assume_free and not self.can_reserve(uses, cycle):
            raise ValueError(f"resources not available for node {node_id} at cycle {cycle}")
        held = self._held.setdefault(node_id, [])
        for use in uses:
            for slot in self._slots(use, cycle):
                self._table[use.key][slot].append(node_id)
                held.append((use.key, slot))

    def release(self, node_id: int) -> None:
        """Release every reservation held by ``node_id`` (idempotent)."""
        for key, slot in self._held.pop(node_id, []):
            occupants = self._table[key][slot]
            try:
                occupants.remove(node_id)
            except ValueError:  # pragma: no cover - defensive
                pass

    def holds(self, node_id: int) -> bool:
        return node_id in self._held

    def held_keys(self, node_id: int) -> List["ResourceKey"]:
        """Resource keys ``node_id`` occupies, one entry per occupied slot.

        Lets callers compare (as a multiset -- the keys mix unorderable
        enum kinds) what a node *reserved* at placement time against what
        it needs now: a ``Move``'s source-port reservation follows its
        producer's cluster, which backtracking and communication-chain
        re-routing can change after the fact.  See the stale-reservation
        sweep in :class:`repro.core.engine.SchedulerEngine`.
        """
        return [key for key, _slot in self._held.get(node_id, [])]

    def conflicting_nodes(self, uses: Sequence[ResourceUse], cycle: int) -> Set[int]:
        """Nodes whose eviction would free the requested reservations.

        Used by the force-and-eject step of the iterative scheduler: when a
        node is forced into a cycle with no free slot, every current
        occupant of the oversubscribed (resource, slot) pairs is ejected.
        """
        conflicts: Set[int] = set()
        for use in uses:
            if self.capacity(use.key) <= 0:
                continue
            for slot in self._slots(use, cycle):
                occupants = self._table[use.key][slot]
                if len(occupants) >= self._counts[use.key]:
                    conflicts.update(occupants)
        return conflicts

    # ------------------------------------------------------------------ #
    def utilization(self) -> Dict[ResourceKey, float]:
        """Fraction of occupied slots per resource (for reports/tests)."""
        result: Dict[ResourceKey, float] = {}
        for key, rows in self._table.items():
            total = self._counts[key] * self.ii
            used = sum(len(row) for row in rows)
            result[key] = used / total if total else 0.0
        return result
