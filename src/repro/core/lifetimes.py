"""Register-pressure analysis of (partial) modulo schedules.

Register requirements of a modulo schedule are measured with the standard
``MaxLive`` metric: the maximum, over the II cycles of the steady-state
kernel, of the number of simultaneously live values in a bank, counting
the multiple overlapping instances of a value whose lifetime exceeds II
cycles (one instance per overlapped iteration).  MaxLive is the metric
used throughout the modulo-scheduling register-pressure literature the
paper builds on (Llosa et al.); the number of registers obtained by the
wrap-around allocator the authors use is within one or two registers of
MaxLive in practice, so the spill decisions driven by it match the
paper's behaviour.

A value's lifetime starts when its producer delivers the result
(issue cycle + latency) and ends after the issue cycle of its last
consumer (offset by ``distance * II`` for loop-carried uses).
Loop-invariant (live-in) values occupy one register for the whole loop in
every bank where they are consumed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Set

from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType
from repro.machine.config import RFConfig
from repro.core.banks import SHARED, all_banks, read_bank, value_bank

__all__ = [
    "SWEEP_COUNTERS",
    "SweepCounters",
    "ValueLifetime",
    "register_usage",
    "lifetimes_by_bank",
    "live_in_banks",
]

LatencyFn = Callable[[str], int]


class SweepCounters:
    """Process-wide count of *full-graph* MaxLive sweeps.

    :func:`lifetimes_by_bank` (and therefore :func:`register_usage`,
    which delegates to it) bumps this every time it walks the whole
    graph.  The scheduler hot path now goes
    through the incremental :class:`repro.core.pressure.PressureTracker`
    instead, and ``benchmarks/test_scheduler_microbench.py`` uses this
    counter to verify that the full recomputes really are gone (each
    worker process of the parallel evaluator counts its own sweeps).
    """

    def __init__(self) -> None:
        self.full_sweeps: int = 0

    def reset(self) -> int:
        """Zero the counter and return the previous value."""
        previous = self.full_sweeps
        self.full_sweeps = 0
        return previous


SWEEP_COUNTERS = SweepCounters()


class ValueLifetime(NamedTuple):
    """Lifetime of one value in one bank (absolute schedule cycles)."""

    node_id: int
    bank: int
    start: int
    end: int          # exclusive

    @property
    def length(self) -> int:
        return self.end - self.start


def live_in_banks(
    graph: DepGraph,
    node_id: int,
    clusters: Dict[int, Optional[int]],
    rf: RFConfig,
    *,
    scheduled_only: bool = True,
) -> Set[int]:
    """Banks in which a live-in value must be resident.

    A loop invariant occupies one register in every bank from which one of
    its consumers reads it.  Consumers that are not yet scheduled are
    ignored when ``scheduled_only`` is true (the invariant does not yet
    constrain any bank through them).
    """
    banks: Set[int] = set()
    for dst, edge in graph.flow_consumers(node_id):
        if edge.kind != "flow":
            continue
        if scheduled_only and dst not in clusters:
            continue
        bank = read_bank(graph, dst, clusters.get(dst), rf)
        if bank is not None:
            banks.add(bank)
    return banks


def lifetimes_by_bank(
    graph: DepGraph,
    times: Dict[int, int],
    clusters: Dict[int, Optional[int]],
    ii: int,
    rf: RFConfig,
    latency_of: LatencyFn,
) -> Dict[int, List[ValueLifetime]]:
    """Lifetimes of every scheduled value, grouped by residence bank.

    Only values whose producer is scheduled are considered; consumers not
    yet scheduled do not extend lifetimes (the pressure estimate grows
    monotonically as the schedule is completed, which is what the
    incremental spill check needs).
    """
    SWEEP_COUNTERS.full_sweeps += 1
    per_bank: Dict[int, List[ValueLifetime]] = {bank: [] for bank in all_banks(rf)}
    for node in graph.nodes():
        node_id = node.node_id
        if node.op is OpType.LIVE_IN:
            continue
        if not node.op.defines_register:
            continue
        if node_id not in times:
            continue
        bank = value_bank(graph, node_id, clusters.get(node_id), rf)
        if bank is None or bank not in per_bank:
            continue
        producer_latency = (
            node.latency_override
            if node.latency_override is not None
            else latency_of(node.op.mnemonic)
        )
        start = times[node_id] + producer_latency
        end = start + 1
        for dst, edge in graph.flow_consumers(node_id):
            if dst not in times:
                continue
            use = times[dst] + edge.distance * ii
            end = max(end, use + 1)
        per_bank[bank].append(ValueLifetime(node_id, bank, start, end))
    return per_bank


def _accumulate(slots: List[int], start: int, end: int, ii: int) -> None:
    """Add one value instance spanning [start, end) to the per-slot counts."""
    length = max(1, end - start)
    base, rem = divmod(length, ii)
    if base:
        for slot in range(ii):
            slots[slot] += base
    anchor = start % ii
    for delta in range(rem):
        slots[(anchor + delta) % ii] += 1


def register_usage(
    graph: DepGraph,
    times: Dict[int, int],
    clusters: Dict[int, Optional[int]],
    ii: int,
    rf: RFConfig,
    latency_of: LatencyFn,
) -> Dict[int, int]:
    """MaxLive per register bank for the (partial) schedule.

    Returns a mapping ``bank -> registers`` covering every bank of the
    configuration (cluster banks by index, the shared bank under
    :data:`~repro.core.banks.SHARED`).
    """
    banks = all_banks(rf)
    slot_counts: Dict[int, List[int]] = {bank: [0] * ii for bank in banks}

    for bank, lifetimes in lifetimes_by_bank(graph, times, clusters, ii, rf, latency_of).items():
        for lifetime in lifetimes:
            _accumulate(slot_counts[bank], lifetime.start, lifetime.end, ii)

    # Loop invariants: one register for the whole loop in each bank used.
    for node in graph.live_in_nodes():
        for bank in live_in_banks(graph, node.node_id, clusters, rf):
            if bank in slot_counts:
                for slot in range(ii):
                    slot_counts[bank][slot] += 1

    return {bank: (max(slots) if slots else 0) for bank, slots in slot_counts.items()}
