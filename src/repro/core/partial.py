"""The mutable partial schedule used by the iterative scheduler.

A partial schedule maps already-scheduled nodes to an (issue cycle,
cluster) pair and keeps the modulo reservation table consistent with
those placements.  It implements the three scheduling primitives of the
paper's Figure 5(b):

* computing the dependence window ``[Early_Start, Late_Start]`` of an
  operation with respect to its already-scheduled neighbours,
* finding a free slot inside that window (searching top-down or bottom-up
  depending on which side of the window is constrained, to keep value
  lifetimes short), and
* *force-and-eject*: when no free slot exists, the operation is forced
  into a cycle and every operation that conflicts with it -- on resources
  or through a violated dependence -- is ejected from the schedule.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set

from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.resources import ResourceModel, ResourceUse, SHARED
from repro.core.banks import value_bank
from repro.core.mrt import ModuloReservationTable

__all__ = ["PartialSchedule", "ScheduleInfeasible"]

#: Sentinel distinguishing "caller did not supply lstart" from a supplied
#: ``None`` (which is a meaningful value: no scheduled successors).
_UNKNOWN = object()


class ScheduleInfeasible(Exception):
    """Raised when an operation cannot be placed even after ejections.

    This happens only in pathological corner cases (for example when the
    resource requirements of a communication operation change because the
    ejection of a neighbour moved its source bank); the driver treats it
    as a failed attempt at the current II and retries at II + 1.
    """


class PartialSchedule:
    """Placement state (times, clusters, reservation table) at a fixed II."""

    def __init__(
        self,
        graph: DepGraph,
        ii: int,
        machine: MachineConfig,
        rf: RFConfig,
        resources: ResourceModel,
        *,
        track_pressure: bool = False,
        core: str = "object",
    ) -> None:
        if core not in ("object", "array"):
            raise ValueError(f"unknown scheduler core {core!r} (use 'object' or 'array')")
        self.graph = graph
        self.ii = ii
        self.machine = machine
        self.rf = rf
        self.resources = resources
        self.core = core
        self.times: Dict[int, int] = {}
        self.clusters: Dict[int, Optional[int]] = {}
        #: The MRT/pressure backend pair.  ``"object"`` is the readable
        #: dictionary implementation, ``"array"`` the flat-array/bitmask
        #: one (:mod:`repro.core.arraycore`); both are behaviourally
        #: identical, so everything above this view layer is agnostic.
        if core == "array":
            from repro.core.arraycore import ArrayMRT  # import cycle guard

            self.mrt = ArrayMRT(ii, resources.counts)
        else:
            self.mrt = ModuloReservationTable(ii, resources.counts)
        #: Incremental per-bank MaxLive state, kept in sync with every
        #: placement and graph edit (``None`` when pressure tracking is
        #: off -- e.g. unbounded banks, or the validator's replay probe,
        #: which writes ``times`` directly).
        self.pressure: Optional["PressureTracker"] = None
        if track_pressure:
            if core == "array":
                from repro.core.arraycore import ArrayPressureTracker

                self.pressure = ArrayPressureTracker(
                    graph, ii, rf, machine.latency, self.times, self.clusters
                )
            else:
                from repro.core.pressure import PressureTracker  # import cycle guard

                self.pressure = PressureTracker(
                    graph, ii, rf, machine.latency, self.times, self.clusters
                )
        #: Last cycle each node was (forcibly) placed at; the force rule
        #: places a node at ``max(estart, previous + 1)`` so repeated
        #: ejection cannot ping-pong between the same two cycles.
        self._last_cycle: Dict[int, int] = {}
        #: Memoized ``uses_for`` answers per (node, cluster).  Safe for
        #: every operation except ``Move`` (whose source port follows its
        #: producer's *current* cluster): an operation's type never
        #: changes, node ids are never reused, and the underlying
        #: ResourceModel lists are shared immutables anyway.
        self._uses_cache: Dict[tuple, List[ResourceUse]] = {}
        #: Incrementally maintained number of scheduled operations per
        #: (cluster, operation class) -- the balance input of
        #: Select_Cluster, which would otherwise rescan every placement
        #: once per candidate cluster on every pop.  Only maintained when
        #: there is an actual cluster choice to score.
        self._track_classes = rf.has_cluster_banks and rf.n_clusters > 1
        self._class_counts: Dict[tuple, int] = {}
        self._placed_class: Dict[int, tuple] = {}

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    def is_scheduled(self, node_id: int) -> bool:
        return node_id in self.times

    def n_scheduled(self) -> int:
        return len(self.times)

    def latency_of(self, mnemonic: str) -> int:
        return self.machine.latency(mnemonic)

    def uses_for(self, node_id: int, cluster: Optional[int]) -> List[ResourceUse]:
        """Resource reservations the node needs when issued on ``cluster``."""
        key = (node_id, cluster)
        uses = self._uses_cache.get(key)
        if uses is not None:
            return uses
        op = self.graph.node(node_id).op
        if op is OpType.MOVE:
            # Not memoized: the source port follows the producer's
            # current cluster, which backtracking can change.
            src_cluster = self._move_source_cluster(node_id)
            assert cluster is not None and cluster >= 0
            return self.resources.move_uses(src_cluster, cluster)
        if op is OpType.LIVE_IN:
            uses = []
        elif op.is_compute:
            assert cluster is not None and cluster >= 0
            uses = self.resources.compute_uses(op.mnemonic, cluster)
        elif op.is_memory:
            mem_cluster = cluster if cluster is not None and cluster >= 0 else 0
            uses = self.resources.memory_uses(mem_cluster)
        elif op is OpType.LOADR:
            assert cluster is not None and cluster >= 0
            uses = self.resources.loadr_uses(cluster)
        elif op is OpType.STORER:
            assert cluster is not None and cluster >= 0
            uses = self.resources.storer_uses(cluster)
        else:
            raise AssertionError(f"unhandled op type {op}")
        self._uses_cache[key] = uses
        return uses

    def _move_source_cluster(self, node_id: int) -> int:
        """Cluster the (single) producer of a Move operation lives in."""
        for src, edge in self.graph.flow_producers(node_id):
            bank = value_bank(self.graph, src, self.clusters.get(src), self.rf)
            if bank is not None and bank != SHARED:
                return bank
            if bank == SHARED:
                return 0
        return 0

    # ------------------------------------------------------------------ #
    # Dependence windows
    # ------------------------------------------------------------------ #
    def earliest_start(self, node_id: int) -> int:
        """Earliest issue cycle allowed by already-scheduled predecessors."""
        estart = 0
        times = self.times
        graph = self.graph
        for edge in graph.iter_in_edges(node_id):
            cycle = times.get(edge.src)
            if cycle is None:
                continue
            latency = graph.edge_latency(edge, self.latency_of)
            bound = cycle + latency - edge.distance * self.ii
            if bound > estart:
                estart = bound
        return estart

    def latest_start(self, node_id: int) -> Optional[int]:
        """Latest issue cycle allowed by already-scheduled successors."""
        lstart: Optional[int] = None
        times = self.times
        graph = self.graph
        for edge in graph.iter_out_edges(node_id):
            cycle = times.get(edge.dst)
            if cycle is None:
                continue
            latency = graph.edge_latency(edge, self.latency_of)
            bound = cycle - latency + edge.distance * self.ii
            if lstart is None or bound < lstart:
                lstart = bound
        return lstart

    # ------------------------------------------------------------------ #
    # Placement primitives
    # ------------------------------------------------------------------ #
    def place(
        self,
        node_id: int,
        cycle: int,
        cluster: Optional[int],
        uses: Optional[List[ResourceUse]] = None,
        *,
        assume_free: bool = False,
    ) -> None:
        """Unconditionally place a node (resources must be available).

        ``uses`` may be passed by callers that already computed the
        reservations (the force-and-eject path must reserve exactly the
        resources it checked conflicts against).  ``assume_free`` skips
        the MRT's availability re-check when the caller just proved it
        (a positive :meth:`find_slot` answer with no reservation since).
        """
        if uses is None:
            uses = self.uses_for(node_id, cluster)
        if uses:
            self.mrt.reserve(node_id, uses, cycle, assume_free=assume_free)
        self.times[node_id] = cycle
        self.clusters[node_id] = cluster
        self._last_cycle[node_id] = cycle
        if self._track_classes and cluster is not None and cluster >= 0:
            key = (cluster, self.graph.node(node_id).op.op_class)
            self._placed_class[node_id] = key
            counts = self._class_counts
            counts[key] = counts.get(key, 0) + 1
        if self.pressure is not None:
            self.pressure.on_place(node_id)

    def remove(self, node_id: int) -> None:
        """Eject a node from the schedule (graph is left untouched).

        The pressure tracker is notified *before* the placement is
        dropped: the array tracker inspects the node's (still-present)
        cycle to decide which producer lifetimes can actually shrink,
        and the object tracker only records a dirty mark either way.
        """
        if node_id in self.times:
            self.mrt.release(node_id)
            if self.pressure is not None:
                self.pressure.on_remove(node_id)
            del self.times[node_id]
            del self.clusters[node_id]
            key = self._placed_class.pop(node_id, None)
            if key is not None:
                self._class_counts[key] -= 1

    def class_count(self, cluster: int, op_class) -> int:
        """Scheduled operations of ``op_class`` currently on ``cluster``.

        Maintained incrementally by :meth:`place`/:meth:`remove`; equals
        the count a full scan of ``clusters`` would produce.  Only
        meaningful for organizations with a real cluster choice.
        """
        return self._class_counts.get((cluster, op_class), 0)

    def forget(self, node_id: int) -> None:
        """Drop all bookkeeping for a node that was deleted from the graph."""
        self.remove(node_id)
        self._last_cycle.pop(node_id, None)

    def reservation_matches(
        self, node_id: int, uses: Sequence[ResourceUse]
    ) -> bool:
        """Whether the node's held MRT reservation equals ``uses``.

        Duration-weighted multiset comparison (one slot per occupied
        cycle, mirroring :meth:`ModuloReservationTable.reserve`).  A
        ``Move``'s source port follows its producer's cluster, which
        backtracking and communication-chain re-routing can change after
        placement; callers pass the uses the node *should* hold and eject
        it on a mismatch (see the stale-reservation sweep in
        :class:`repro.core.engine.SchedulerEngine` and the proactive
        check in :func:`repro.core.communication.plan_communication`).
        """
        expected: Counter = Counter()
        for use in uses:
            expected[use.key] += min(use.duration, self.ii)
        return expected == Counter(self.mrt.held_keys(node_id))

    def find_slot(
        self,
        node_id: int,
        cluster: Optional[int],
        *,
        uses: Optional[List[ResourceUse]] = None,
        estart: Optional[int] = None,
        lstart: object = _UNKNOWN,
    ) -> Optional[int]:
        """A free cycle inside the node's dependence window, or ``None``.

        The window spans at most II consecutive cycles starting at the
        earliest start.  When the node is constrained only from below
        (scheduled predecessors) the search walks upward so the result
        stays close to the producers; when it is constrained only from
        above it walks downward so it stays close to the consumers.  Both
        directions keep value lifetimes short, mirroring the
        Early_Start/Late_Start/Direction logic of the paper.

        ``uses``/``estart``/``lstart`` let callers that probe the same
        node repeatedly without placing anything in between (cluster
        selection scoring every candidate cluster) hoist the
        cluster-independent parts of the computation out of the loop.
        """
        if uses is None:
            uses = self.uses_for(node_id, cluster)
        if estart is None:
            estart = self.earliest_start(node_id)
        if lstart is _UNKNOWN:
            lstart = self.latest_start(node_id)
        window_hi = estart + self.ii - 1
        if lstart is not None:
            window_hi = min(window_hi, lstart)
        if window_hi < estart:
            return None
        has_sched_pred = any(src in self.times for src in self.graph.iter_predecessors(node_id))
        downward = (lstart is not None) and not has_sched_pred
        cycles = range(window_hi, estart - 1, -1) if downward else range(estart, window_hi + 1)
        return self.mrt.first_free_cycle(uses, cycles)

    def force_cycle(self, node_id: int) -> int:
        """Cycle at which a node with no free slot is forced into the schedule."""
        estart = self.earliest_start(node_id)
        previous = self._last_cycle.get(node_id)
        if previous is None:
            return estart
        return max(estart, previous + 1)

    def schedule(self, node_id: int, cluster: Optional[int]) -> Set[int]:
        """Schedule a node, forcing and ejecting if necessary.

        Returns the set of node ids ejected from the schedule (empty when a
        free slot was found).  The caller is responsible for returning the
        ejected nodes to the priority list and for cleaning up any
        communication code that was inserted on their behalf.
        """
        uses = self.uses_for(node_id, cluster)
        slot = self.find_slot(node_id, cluster, uses=uses)
        ejected: Set[int] = set()
        if slot is not None:
            # find_slot just proved availability and nothing was reserved
            # since, so the place can skip the MRT's re-check.
            self.place(node_id, slot, cluster, uses=uses, assume_free=True)
            return ejected

        cycle = self.force_cycle(node_id)
        # Ejecting a neighbour may change the resource needs of this node
        # (a Move's source bank follows its producer), so re-derive the
        # reservations and re-check until they can actually be granted.
        for _ in range(4):
            for conflict in self.mrt.conflicting_nodes(uses, cycle):
                if conflict != node_id:
                    ejected.add(conflict)
                    self.remove(conflict)
            if self.mrt.can_reserve(uses, cycle) or not uses:
                break
            uses = self.uses_for(node_id, cluster)
        else:
            raise ScheduleInfeasible(
                f"cannot place node {node_id} at cycle {cycle} even after ejections"
            )
        if uses and not self.mrt.can_reserve(uses, cycle):
            raise ScheduleInfeasible(
                f"cannot place node {node_id} at cycle {cycle} even after ejections"
            )
        self.place(node_id, cycle, cluster, uses=uses, assume_free=True)

        # Eject already-scheduled neighbours whose dependence constraints the
        # forced placement violates.  (remove() only touches schedule state,
        # never the graph, so the allocation-free edge views are safe here.)
        for edge in self.graph.iter_in_edges(node_id):
            src = edge.src
            if src not in self.times or src == node_id:
                continue
            latency = self.graph.edge_latency(edge, self.latency_of)
            if self.times[src] + latency - edge.distance * self.ii > cycle:
                ejected.add(src)
                self.remove(src)
        for edge in self.graph.iter_out_edges(node_id):
            dst = edge.dst
            if dst not in self.times or dst == node_id:
                continue
            latency = self.graph.edge_latency(edge, self.latency_of)
            if cycle + latency - edge.distance * self.ii > self.times[dst]:
                ejected.add(dst)
                self.remove(dst)
        return ejected

    # ------------------------------------------------------------------ #
    # Derived results
    # ------------------------------------------------------------------ #
    def stage_count(self) -> int:
        """Number of II-cycle stages of the kernel (SC in the paper)."""
        if not self.times:
            return 1
        last_completion = 0
        for node_id, cycle in self.times.items():
            node = self.graph.node(node_id)
            if node.op.is_pseudo:
                latency = 0
            elif node.latency_override is not None:
                latency = node.latency_override
            else:
                latency = self.latency_of(node.op.mnemonic)
            last_completion = max(last_completion, cycle + max(1, latency))
        return max(1, -(-last_completion // self.ii))

    def schedule_length(self) -> int:
        """Length in cycles of one flat iteration of the schedule."""
        if not self.times:
            return 0
        return max(self.times.values()) + 1
