"""The incremental-state scheduling engine behind every scheduler.

One engine drives both of the paper's schedulers; a
:class:`~repro.core.policy.PolicyBundle` decides the heuristics:

* **MIRS_HC** (``mirs_hc``): iterative modulo scheduling with
  force-and-eject backtracking, integrated communication insertion and
  two-level register spilling (paper, Figure 5);
* **the non-iterative baseline** (``non_iterative``): same substrate, but
  a placement that finds no free slot -- or would need to revisit an
  earlier decision -- abandons the attempt and restarts at II + 1
  (the comparison point of Table 4).

Register pressure is maintained *incrementally* by the
:class:`~repro.core.pressure.PressureTracker` owned by each
:class:`~repro.core.partial.PartialSchedule`: the paper's per-node spill
check runs after **every** placement at full fidelity (the pre-refactor
engine throttled it with a staleness interval because each check was a
full MaxLive sweep), and cluster selection sees the exact current
pressure instead of a stale copy.

The II search is a policy too: the default ``geometric_bisect`` walks
linearly for three restarts, accelerates geometrically, and -- once an
accelerated jump lands on a feasible II -- bisects back toward the last
failed II so acceleration can never overshoot the minimal achievable II.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.ddg.analysis import compute_mii
from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import OpType
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.resources import ResourceModel
from repro.core.analysis_cache import AnalysisCache
from repro.core.banks import bank_capacity
from repro.core.cluster_select import UNDECIDED, preassigned_cluster
from repro.core.communication import cleanup_after_eject, plan_communication
from repro.core.lifetimes import SWEEP_COUNTERS, register_usage
from repro.core.partial import PartialSchedule, ScheduleInfeasible
from repro.core.policy import (
    FailureDiagnosis,
    PolicyBundle,
    cluster_policy,
    ii_search_policy,
    ordering_policy,
    resolve_bundle,
    spill_victim_policy,
)
from repro.core.priority import PriorityList
from repro.core.result import ScheduledOp, ScheduleResult
from repro.core.spill import SpillState, check_and_insert_spill

__all__ = ["SchedulerEngine"]


class _Counters:
    """Per-loop instrumentation accumulated across II attempts."""

    def __init__(self) -> None:
        self.pressure_checks: int = 0
        #: MRT window scans (first_free_cycle calls) across all attempts.
        self.slot_probes: int = 0
        #: Window scans answered by the array core's epoch memo.
        self.probe_memo_hits: int = 0
        #: Analysis products (RecMII, ResMII, priority order) served from
        #: the cross-II/cross-config cache instead of recomputed.
        self.analysis_reuses: int = 0


class SchedulerEngine:
    """Modulo scheduling engine with pluggable policies.

    Parameters
    ----------
    machine:
        Datapath description whose latencies are already scaled to the
        target configuration's clock (see
        :func:`repro.hwmodel.timing.scaled_machine`).
    rf:
        The register-file organization to schedule for.
    policy:
        A registered bundle name (``"mirs_hc"``, ``"non_iterative"``,
        ...) or an ad-hoc :class:`~repro.core.policy.PolicyBundle`.
    budget_ratio:
        Average number of scheduling attempts allowed per node before the
        current II is abandoned (the paper's ``Budget_Ratio``; only
        meaningful for backtracking bundles).
    max_ii:
        Hard upper bound on the II explored before giving up on a loop.
    incremental_pressure:
        When False, the incremental tracker is disabled and every
        pressure check falls back to a full MaxLive sweep -- kept as a
        benchmark/debug switch so the wall-clock win of the tracker stays
        measurable on the same code path.
    core:
        MRT/pressure backend: ``"array"`` (flat arrays + bitmasks, the
        default) or ``"object"`` (the readable dictionary
        implementation).  Both produce bit-identical schedules;
        ``tests/test_core_equivalence.py`` and the corpus replay pin the
        equivalence.
    analysis_cache:
        Optional :class:`~repro.core.analysis_cache.AnalysisCache`
        memoizing MII breakdowns and priority orders across loops,
        configs and engine instances.  Pure reuse of deterministic
        products -- results are bit-identical with and without it.
    """

    def __init__(
        self,
        machine: MachineConfig,
        rf: RFConfig,
        *,
        policy: Union[str, PolicyBundle] = "mirs_hc",
        budget_ratio: float = 6.0,
        max_ii: int = 512,
        incremental_pressure: bool = True,
        core: str = "array",
        analysis_cache: Optional[AnalysisCache] = None,
    ) -> None:
        machine.validate_rf(rf)
        if core not in ("object", "array"):
            raise ValueError(f"unknown scheduler core {core!r} (use 'object' or 'array')")
        self.machine = machine
        self.rf = rf
        self.core = core
        self.resources = ResourceModel(machine, rf)
        self.budget_ratio = budget_ratio
        self.max_ii = max_ii
        self.incremental_pressure = incremental_pressure
        #: Optional cross-II/cross-config memo for machine-independent
        #: analysis (MII breakdown, priority orders); ``None`` recomputes
        #: everything per loop, exactly as before.  The suite drivers
        #: pass the per-process shared instance
        #: (:func:`repro.core.analysis_cache.shared_analysis_cache`).
        self.analysis_cache = analysis_cache
        self.bundle = resolve_bundle(policy)
        self._order_nodes = ordering_policy(self.bundle.ordering)
        self._select_cluster = cluster_policy(self.bundle.cluster)
        self._victim_policy = spill_victim_policy(self.bundle.spill)
        self._ii_search_cls = ii_search_policy(self.bundle.ii_search)
        self._backtracking = self.bundle.backtracking
        self._check_registers = not (
            (rf.cluster_regs is None or rf.cluster_regs_unbounded)
            and (rf.shared_regs is None or rf.shared_regs_unbounded)
        )
        # Cluster selection only consumes register pressure when there is
        # an actual choice to score; for single-cluster and non-clustered
        # organizations the per-node query would be wasted work (and
        # would inflate n_pressure_checks with queries nothing consumed).
        self._cluster_choice_exists = rf.has_cluster_banks and rf.n_clusters > 1

    # ------------------------------------------------------------------ #
    def schedule_loop(self, loop: Loop) -> ScheduleResult:
        """Schedule one loop, searching upward from its MII."""
        started = time.perf_counter()
        sweeps_before = SWEEP_COUNTERS.full_sweeps
        search = self._ii_search_cls()
        counters = _Counters()
        attempted: List[int] = []
        # The MII breakdown and the scheduling order are pure functions of
        # the dependence graph and the machine, and every II attempt
        # starts from a fresh copy of the same graph -- so both are
        # computed once per loop and shared across attempts, and (when an
        # analysis cache is wired in) reused across loops and configs.
        if self.analysis_cache is not None:
            signature = loop.graph.structural_signature()
            breakdown, reused = self.analysis_cache.mii(
                loop.graph, self.resources, self.machine, self.rf,
                signature=signature,
            )
            counters.analysis_reuses += reused
            order, reused = self.analysis_cache.order(
                loop.graph, self.machine, self.bundle.ordering,
                self._order_nodes, signature=signature,
            )
            counters.analysis_reuses += reused
        else:
            breakdown = compute_mii(loop.graph, self.resources, self.machine.latency)
            order = self._order_nodes(loop.graph, self.machine.latency)

        best: Optional[Tuple[int, Tuple[DepGraph, PartialSchedule]]] = None
        last_failed: Optional[int] = None
        ii = breakdown.mii
        n_failures = 0
        diagnosed = False
        while ii <= self.max_ii:
            attempted.append(ii)
            attempt = self._try(loop, ii, counters, order)
            if attempt is not None:
                best = (ii, attempt)
                break
            last_failed = ii
            n_failures += 1
            if search.wants_diagnosis and not diagnosed:
                # The only certificate currently extracted is II-independent
                # (a zero-capacity resource requirement), so one diagnosis
                # per loop is enough.
                diagnosed = True
                search.observe_failure(self._diagnose(loop.graph, ii))
            ii = search.next_ii(ii, n_failures)

        # Refinement: an accelerated search that jumped over candidate IIs
        # bisects (last failed, feasible) to recover any smaller II the
        # jump skipped.  Feasibility is not strictly monotonic in the II
        # (the backtracking budget is a heuristic), so this is a
        # best-effort minimization, biased exactly like the plain linear
        # search it replaces.
        if (
            best is not None
            and last_failed is not None
            and search.refine_with_bisection
        ):
            lo, hi = last_failed, best[0]
            while hi - lo > 1:
                mid = (lo + hi) // 2
                attempted.append(mid)
                attempt = self._try(loop, mid, counters, order)
                if attempt is not None:
                    hi = mid
                    best = (mid, attempt)
                else:
                    lo = mid

        elapsed = time.perf_counter() - started
        sweeps = SWEEP_COUNTERS.full_sweeps - sweeps_before
        # Upward failures only (the documented "II had to be bumped"
        # count, matching the pre-refactor semantics): the bisection's
        # downward refinement probes are visible in attempted_iis but do
        # not inflate the restart count.
        restarts = n_failures
        if best is None:
            # The reported II is the last *tried* value; the audit note of
            # any range the II-search policy skipped goes after it, so the
            # trail reads "tried 3, 4; skipped 5.. because ...".
            failure_ii = attempted[-1] if attempted else breakdown.mii
            trail: List[Union[int, str]] = list(attempted)
            if search.skip_note:
                trail.append(search.skip_note)
            return ScheduleResult(
                loop_name=loop.name,
                config_name=self.rf.name,
                success=False,
                ii=failure_ii,
                mii=breakdown.mii,
                mii_breakdown=breakdown,
                stage_count=0,
                scheduling_time_s=elapsed,
                restarts=restarts,
                bound=breakdown.bound,
                attempted_iis=trail,
                n_pressure_checks=counters.pressure_checks,
                n_full_sweeps=sweeps,
                policy=self.bundle.name,
                n_slot_probes=counters.slot_probes,
                n_probe_memo_hits=counters.probe_memo_hits,
                n_analysis_reuses=counters.analysis_reuses,
            )
        graph, schedule = best[1]
        return self._build_result(
            loop, graph, schedule, breakdown, restarts, elapsed,
            attempted, counters, sweeps_before,
        )

    # ------------------------------------------------------------------ #
    def _try(
        self, loop: Loop, ii: int, counters: _Counters, order: List[int]
    ) -> Optional[Tuple[DepGraph, PartialSchedule]]:
        try:
            return self._attempt(loop.graph.copy(), ii, counters, order)
        except ScheduleInfeasible:
            return None

    # ------------------------------------------------------------------ #
    def _diagnose(self, graph: DepGraph, ii: int) -> FailureDiagnosis:
        """Evidence extracted from a failed attempt at ``ii``."""
        detail = self._unschedulable_certificate(graph)
        if detail is not None:
            return FailureDiagnosis(
                ii=ii,
                reason="zero_capacity_resource",
                unschedulable_at_all_iis=True,
                detail=detail,
            )
        return FailureDiagnosis(ii=ii, reason="attempt_failed")

    def _unschedulable_certificate(self, graph: DepGraph) -> Optional[str]:
        """Proof (if any) that *no* II can schedule this loop here.

        Raising the II adds reservation-table rows but never resource
        instances, so an original operation that needs a resource with
        zero instances in **every** cluster it could legally be placed on
        can never be scheduled.  Only original nodes count as evidence:
        inserted communication/spill code is attempt-specific (a
        different II may simply not insert it), and a ``Move``'s source
        port follows its producer's mutable cluster.
        """
        resources = self.resources
        for node in graph.nodes():
            op = node.op
            if node.is_inserted or op is OpType.LIVE_IN or op.is_communication:
                continue
            fixed = preassigned_cluster(graph, node.node_id, self.rf)
            if fixed is UNDECIDED:
                candidates = range(self.rf.n_clusters)
            else:
                candidates = (fixed,)
            blocked_everywhere = True
            for cluster in candidates:
                if op.is_memory:
                    uses = resources.memory_uses(
                        cluster if cluster is not None and cluster >= 0 else 0
                    )
                elif op.is_compute:
                    uses = resources.compute_uses(
                        op.mnemonic, cluster if cluster is not None else 0
                    )
                else:  # pragma: no cover - all other op kinds filtered above
                    uses = []
                if not any(resources.count(use.key) <= 0 for use in uses):
                    blocked_everywhere = False
                    break
            if blocked_everywhere and candidates:
                return (
                    f"node {node.node_id} ({op.mnemonic}) requires a "
                    f"zero-capacity resource in every permissible cluster"
                )
        return None

    def _usage(
        self, schedule: PartialSchedule, counters: _Counters
    ) -> Optional[Dict[int, int]]:
        """Current per-bank pressure (None when banks are unbounded)."""
        if not self._check_registers:
            return None
        counters.pressure_checks += 1
        if schedule.pressure is not None:
            return schedule.pressure.usage()
        return register_usage(
            schedule.graph, schedule.times, schedule.clusters, schedule.ii,
            self.rf, self.machine.latency,
        )

    # ------------------------------------------------------------------ #
    def _attempt(
        self, graph: DepGraph, ii: int, counters: _Counters,
        order: Optional[List[int]] = None,
    ) -> Optional[Tuple[DepGraph, PartialSchedule]]:
        """One scheduling attempt at a fixed II (None = infeasible)."""
        schedule = PartialSchedule(
            graph, ii, self.machine, self.rf, self.resources,
            track_pressure=self._check_registers and self.incremental_pressure,
            core=self.core,
        )
        try:
            return self._run_attempt(graph, schedule, counters, order)
        finally:
            # Harvest per-attempt MRT instrumentation on every exit path
            # (success, infeasible return, ScheduleInfeasible raise).
            counters.slot_probes += schedule.mrt.n_probes
            counters.probe_memo_hits += schedule.mrt.n_memo_hits

    def _run_attempt(
        self, graph: DepGraph, schedule: PartialSchedule, counters: _Counters,
        order: Optional[List[int]] = None,
    ) -> Optional[Tuple[DepGraph, PartialSchedule]]:
        if order is None:
            order = self._order_nodes(graph, self.machine.latency)
        if not order:
            return graph, schedule
        priority = PriorityList(order)
        spill_state = SpillState()
        budget = self.budget_ratio * len(order)
        # Budget is replenished only for *net* graph growth (new spill or
        # communication nodes that were not there before): churn that
        # removes one communication node and inserts another must not keep
        # the budget alive forever.
        max_graph_size = len(graph)
        # Hard cap on scheduling steps, as a backstop against pathological
        # interactions between spilling and communication insertion.  The
        # non-iterative mode places every node at most once, so its cap
        # counts placements and only guards against spill-insertion loops.
        if self._backtracking:
            steps_left = int(self.budget_ratio * len(order) * 4) + 128
        else:
            steps_left = 8 * len(order) + 64

        def award_growth() -> float:
            nonlocal max_graph_size
            grown = len(graph) - max_graph_size
            if grown > 0:
                max_graph_size = len(graph)
                return self.budget_ratio * grown
            return 0.0

        while True:
            while priority:
                if steps_left <= 0:
                    return None
                if self._backtracking:
                    if budget <= 0:
                        return None
                    steps_left -= 1  # one step per popped node
                node_id = priority.pop()
                if node_id not in graph:
                    continue  # deleted by communication cleanup while pending

                usage = (
                    self._usage(schedule, counters)
                    if self._cluster_choice_exists
                    else None
                )
                cluster = self._select_cluster(
                    graph, schedule, node_id, self.rf, usage
                )

                new_comm, requeue = plan_communication(
                    graph, schedule, node_id, cluster, self.rf
                )
                if requeue and not self._backtracking:
                    # A non-iterative scheduler cannot revisit previous
                    # decisions; needing to do so means this II fails.
                    return None
                for stale in requeue:
                    priority.push(stale, after=node_id)
                budget += award_growth()
                failed = False
                for comm_node in new_comm:
                    if comm_node not in graph:
                        # Scheduling an earlier member of this chain ejected
                        # a neighbour whose cleanup deleted this one.
                        continue
                    home = graph.node(comm_node).home_cluster
                    if self._backtracking:
                        ejected = schedule.schedule(comm_node, home)
                        budget -= 1
                        self._handle_ejections(graph, schedule, ejected, priority)
                        if budget <= 0:
                            failed = True
                            break
                    else:
                        slot = schedule.find_slot(comm_node, home)
                        if slot is None:
                            return None
                        schedule.place(comm_node, slot, home)
                        steps_left -= 1  # one step per placement
                if failed:
                    return None

                if node_id not in graph:
                    # Scheduling the communication chain above ejected a
                    # neighbour whose cleanup deleted this very node (it
                    # was an inserted comm/spill op of the ejected owner).
                    continue
                if self._backtracking:
                    ejected = schedule.schedule(node_id, cluster)
                    budget -= 1
                    self._handle_ejections(graph, schedule, ejected, priority)
                else:
                    slot = schedule.find_slot(node_id, cluster)
                    if slot is None:
                        return None
                    schedule.place(node_id, slot, cluster)
                    steps_left -= 1

                if self._check_registers:
                    # The paper's integrated spill check, after *every*
                    # placement: with the incremental tracker each check
                    # costs O(affected lifetimes), so no throttling.  When
                    # the tracker says no bank is over capacity the spill
                    # pass would be a pure no-op (it skips every bank at
                    # or under capacity), so it is elided outright --
                    # any_over_capacity is O(banks) against maintained
                    # counters, versus the usage dict + sorted scan the
                    # no-op call would still have built.
                    counters.pressure_checks += 1
                    tracker = schedule.pressure
                    if tracker is None or tracker.any_over_capacity():
                        new_spill, _usage = check_and_insert_spill(
                            graph, schedule, self.rf, self.machine, spill_state,
                            victim_policy=self._victim_policy,
                        )
                        for spill_node in new_spill:
                            priority.push(spill_node, after=node_id)
                        budget += award_growth()

            # Priority list empty: re-check communication reservations.
            # A Move's source port follows its producer's cluster, and
            # both backtracking and communication-chain re-routing can
            # change that producer *after* the Move was placed -- leaving
            # the Move holding the right bus but the wrong source port,
            # invisible to the bank-consistency ejects above.  Re-queue
            # any such node so it re-reserves against today's graph.
            stale_comm = [
                n for n in schedule.times
                if n in graph
                and graph.node(n).op.is_communication
                and not schedule.reservation_matches(
                    n, schedule.uses_for(n, schedule.clusters.get(n))
                )
            ]
            if stale_comm:
                if not self._backtracking:
                    return None  # cannot revisit decisions: this II fails
                for n in sorted(stale_comm):
                    schedule.remove(n)
                    priority.push(n)
                continue

            # Final register-pressure check.  Counting discipline matches
            # the pre-gate code exactly: +1 for the over-capacity query,
            # one more for the spill pass when a bank is actually over.
            if not self._check_registers:
                break
            if schedule.pressure is not None:
                counters.pressure_checks += 1
                if not schedule.pressure.any_over_capacity():
                    break
            else:
                usage = self._usage(schedule, counters)
                over = [
                    bank for bank, used in usage.items()
                    if used > bank_capacity(self.rf, bank)
                ]
                if not over:
                    break
            counters.pressure_checks += 1
            new_spill, _usage = check_and_insert_spill(
                graph, schedule, self.rf, self.machine, spill_state,
                max_spills_per_call=4,
                victim_policy=self._victim_policy,
            )
            if not new_spill:
                return None  # pressure cannot be reduced at this II
            for spill_node in new_spill:
                priority.push(spill_node)
            budget += award_growth()

        return graph, schedule

    # ------------------------------------------------------------------ #
    def _handle_ejections(
        self,
        graph: DepGraph,
        schedule: PartialSchedule,
        ejected: Set[int],
        priority: PriorityList,
    ) -> None:
        """Re-queue ejected nodes and drop the communication code they owned."""
        for node_id in ejected:
            if node_id not in graph:
                continue
            node = graph.node(node_id)
            if not (node.is_inserted and node.op.is_communication):
                removed = cleanup_after_eject(graph, schedule, node_id)
                for removed_id in removed:
                    priority.discard(removed_id)
            if node_id in graph:
                priority.push(node_id)

    # ------------------------------------------------------------------ #
    def _build_result(
        self,
        loop: Loop,
        graph: DepGraph,
        schedule: PartialSchedule,
        breakdown,
        restarts: int,
        elapsed: float,
        attempted: List[int],
        counters: _Counters,
        sweeps_before: int,
    ) -> ScheduleResult:
        assignments: Dict[int, ScheduledOp] = {}
        for node_id, cycle in schedule.times.items():
            assignments[node_id] = ScheduledOp(
                node_id=node_id,
                op=graph.node(node_id).op,
                cycle=cycle,
                cluster=schedule.clusters.get(node_id),
            )
        if schedule.pressure is not None:
            usage = schedule.pressure.usage()
            # The graph outlives the schedule inside the ScheduleResult
            # (and may be pickled by the evaluation cache): stop
            # observing it so the tracker dies with the attempt.
            schedule.pressure.detach()
        else:
            usage = register_usage(
                graph, schedule.times, schedule.clusters, schedule.ii,
                self.rf, self.machine.latency,
            )
        final_breakdown = compute_mii(graph, self.resources, self.machine.latency)
        n_spill_mem = sum(
            1 for op in graph.memory_operations() if op.is_spill
        )
        return ScheduleResult(
            loop_name=loop.name,
            config_name=self.rf.name,
            success=True,
            ii=schedule.ii,
            mii=breakdown.mii,
            mii_breakdown=breakdown,
            stage_count=schedule.stage_count(),
            assignments=assignments,
            graph=graph,
            register_usage=usage,
            memory_ops_per_iteration=len(graph.memory_operations()),
            n_spill_memory_ops=n_spill_mem,
            n_comm_ops=len(graph.communication_operations()),
            scheduling_time_s=elapsed,
            restarts=restarts,
            bound=final_breakdown.bound,
            attempted_iis=attempted,
            n_pressure_checks=counters.pressure_checks,
            n_full_sweeps=SWEEP_COUNTERS.full_sweeps - sweeps_before,
            policy=self.bundle.name,
            n_slot_probes=counters.slot_probes,
            n_probe_memo_hits=counters.probe_memo_hits,
            n_analysis_reuses=counters.analysis_reuses,
        )
