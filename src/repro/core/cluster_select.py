"""The Select_Cluster heuristic.

For every operation popped from the priority list, MIRS_HC first decides
which cluster should host it.  Following the heuristic of the authors'
clustered-VLIW scheduler (which this paper reuses), the decision weighs

* the availability of a free slot for the operation in each cluster at the
  current II (a cluster whose functional units are already saturated in
  the operation's scheduling window is a bad host),
* the number of new communication operations that placing it there would
  require, given where its already-scheduled neighbours live (minimizing
  inter-cluster traffic), and
* the balance of resource and register usage across clusters (spreading
  work keeps both the reservation table and the register pressure even).

Communication cost dominates, then slot availability, then balance --
the same relative importance the paper describes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType
from repro.machine.config import RFConfig, RFKind
from repro.core.banks import SHARED, read_bank, value_bank
from repro.core.partial import PartialSchedule

__all__ = [
    "select_cluster",
    "select_cluster_round_robin",
    "select_cluster_min_pressure",
    "preassigned_cluster",
    "UNDECIDED",
]

#: Sentinel returned by :func:`preassigned_cluster` when the operation has
#: no forced cluster and a policy must actually score the candidates.
UNDECIDED = object()


def preassigned_cluster(graph: DepGraph, node_id: int, rf: RFConfig):
    """The cluster an operation is forced onto, or :data:`UNDECIDED`.

    Every cluster-selection policy shares these rules (they are facts of
    the register-file organization, not heuristics): live-in pseudo nodes
    and the memory operations of monolithic/hierarchical organizations are
    not tied to any cluster, communication operations carry their cluster
    with them (``home_cluster``), and single-cluster organizations leave
    no choice.
    """
    node = graph.node(node_id)
    op = node.op
    if op is OpType.LIVE_IN:
        return None
    if op.is_communication:
        return node.home_cluster if node.home_cluster is not None else 0
    if op.is_memory and rf.kind is not RFKind.CLUSTERED:
        return None
    if not rf.has_cluster_banks:
        return 0
    if rf.n_clusters == 1:
        return 0
    return UNDECIDED

#: Relative weights of the Select_Cluster score terms.  Exposed at module
#: level so the ablation benchmarks can study their sensitivity.
COMM_WEIGHT = 2.0
NO_SLOT_WEIGHT = 4.5
BALANCE_WEIGHT = 0.25
PRESSURE_WEIGHT = 1.0


def _neighbour_banks(
    graph: DepGraph,
    schedule: PartialSchedule,
    node_id: int,
    rf: RFConfig,
):
    """Banks of the scheduled flow neighbours of ``node_id``.

    These depend only on where the *neighbours* currently live, not on
    the candidate cluster being scored, so :func:`select_cluster` derives
    them once per decision instead of once per candidate.
    """
    producer_banks = []
    for src, _edge in graph.flow_producers(node_id):
        if not schedule.is_scheduled(src):
            continue
        src_bank = value_bank(graph, src, schedule.clusters.get(src), rf)
        if src_bank is not None:
            producer_banks.append(src_bank)
    consumer_banks = []
    for dst, _edge in graph.flow_consumers(node_id):
        if not schedule.is_scheduled(dst):
            continue
        dst_bank = read_bank(graph, dst, schedule.clusters.get(dst), rf)
        if dst_bank is not None:
            consumer_banks.append(dst_bank)
    return producer_banks, consumer_banks


def _communication_cost(
    graph: DepGraph,
    schedule: PartialSchedule,
    node_id: int,
    cluster: int,
    rf: RFConfig,
    neighbour_banks=None,
) -> int:
    """Number of new communication operations needed if placed on ``cluster``."""
    cost = 0
    my_read = read_bank(graph, node_id, cluster, rf)
    my_value = value_bank(graph, node_id, cluster, rf)
    if neighbour_banks is None:
        neighbour_banks = _neighbour_banks(graph, schedule, node_id, rf)
    producer_banks, consumer_banks = neighbour_banks
    hierarchical = rf.is_hierarchical
    if my_read is not None:
        for src_bank in producer_banks:
            if src_bank == my_read:
                continue
            # Cluster-to-cluster moves through the shared bank need two ops.
            if hierarchical and src_bank != SHARED and my_read != SHARED:
                cost += 2
            else:
                cost += 1
    if my_value is not None:
        for dst_bank in consumer_banks:
            if dst_bank == my_value:
                continue
            if hierarchical and my_value != SHARED and dst_bank != SHARED:
                cost += 2
            else:
                cost += 1
    return cost


def select_cluster(
    graph: DepGraph,
    schedule: PartialSchedule,
    node_id: int,
    rf: RFConfig,
    register_usage: Optional[Dict[int, int]] = None,
) -> Optional[int]:
    """Choose the cluster that should host ``node_id`` (``None`` = no cluster).

    Memory operations of monolithic and hierarchical organizations are not
    tied to any cluster (their results live in the shared bank), and
    communication operations carry their cluster with them
    (``home_cluster``).  Everything else is scored across all clusters.
    """
    fixed = preassigned_cluster(graph, node_id, rf)
    if fixed is not UNDECIDED:
        return fixed
    op = graph.node(node_id).op

    usage = register_usage or {}
    capacity = float(rf.cluster_regs or 1)

    # Everything that does not depend on the candidate cluster is derived
    # once: the banks of the scheduled flow neighbours (communication
    # cost) and the dependence window bounds (slot probe).
    neighbour_banks = _neighbour_banks(graph, schedule, node_id, rf)
    estart = schedule.earliest_start(node_id)
    lstart = schedule.latest_start(node_id)

    best_cluster = 0
    best_score = None
    for cluster in range(rf.n_clusters):
        comm = _communication_cost(
            graph, schedule, node_id, cluster, rf, neighbour_banks
        )
        slot = schedule.find_slot(node_id, cluster, estart=estart, lstart=lstart)
        no_slot_penalty = 0 if slot is not None else 1
        # Resource balance: number of this cluster's placements taken by
        # operations of the same class (maintained incrementally by the
        # schedule -- equal to a full scan of ``schedule.clusters``).
        assigned = schedule.class_count(cluster, op.op_class)
        pressure = usage.get(cluster, 0) / capacity if capacity else 0.0
        # A cluster with no free slot is worse than paying for a full
        # cluster-to-cluster transfer (two operations in a hierarchical
        # organization): otherwise two operations competing for the same
        # saturated cluster keep ejecting each other instead of spreading.
        score = (
            COMM_WEIGHT * comm
            + NO_SLOT_WEIGHT * no_slot_penalty
            + BALANCE_WEIGHT * assigned
            + PRESSURE_WEIGHT * min(pressure, 2.0)
        )
        if best_score is None or score < best_score:
            best_score = score
            best_cluster = cluster
    return best_cluster


def _assigned_counts(schedule: PartialSchedule, n_clusters: int) -> Dict[int, int]:
    counts = {cluster: 0 for cluster in range(n_clusters)}
    for assigned in schedule.clusters.values():
        if assigned is not None and assigned >= 0:
            counts[assigned] = counts.get(assigned, 0) + 1
    return counts


def select_cluster_round_robin(
    graph: DepGraph,
    schedule: PartialSchedule,
    node_id: int,
    rf: RFConfig,
    register_usage: Optional[Dict[int, int]] = None,
) -> Optional[int]:
    """Alternative policy: least-loaded rotation, blind to communication.

    Picks the cluster with the fewest operations assigned so far (lowest
    index on ties), spreading work evenly without looking at operand
    placement or register pressure -- the classic cheap baseline the
    paper's Select_Cluster heuristic is implicitly compared against.
    """
    fixed = preassigned_cluster(graph, node_id, rf)
    if fixed is not UNDECIDED:
        return fixed
    counts = _assigned_counts(schedule, rf.n_clusters)
    return min(range(rf.n_clusters), key=lambda cluster: (counts[cluster], cluster))


def select_cluster_min_pressure(
    graph: DepGraph,
    schedule: PartialSchedule,
    node_id: int,
    rf: RFConfig,
    register_usage: Optional[Dict[int, int]] = None,
) -> Optional[int]:
    """Alternative policy: pressure-first placement.

    Prefers any cluster with a free slot, then the one whose register
    bank currently holds the fewest live values (ties: fewest assigned
    operations, lowest index).  Ignores communication cost entirely, so
    it trades extra LoadR/StoreR/Move traffic for headroom against
    spilling -- the opposite corner of the design space from
    :func:`select_cluster`.
    """
    fixed = preassigned_cluster(graph, node_id, rf)
    if fixed is not UNDECIDED:
        return fixed
    usage = register_usage or {}
    counts = _assigned_counts(schedule, rf.n_clusters)
    estart = schedule.earliest_start(node_id)
    lstart = schedule.latest_start(node_id)

    def score(cluster: int):
        slot = schedule.find_slot(node_id, cluster, estart=estart, lstart=lstart)
        return (0 if slot is not None else 1, usage.get(cluster, 0), counts[cluster], cluster)

    return min(range(rf.n_clusters), key=score)
