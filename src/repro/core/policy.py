"""Pluggable scheduler policies and policy bundles.

The scheduling engine (:mod:`repro.core.engine`) is deliberately
heuristic-free: every decision the paper ablates is delegated to one of
four policy axes, each behind a small registry so experiments, the CLI
(``--policy``) and the fuzzer can swap them without touching the engine:

====================  =====================================================
axis                  decides
====================  =====================================================
``ordering``          the pre-order of the priority list (HRMS vs. simpler
                      list-scheduling orders)
``cluster``           which cluster hosts an operation (Select_Cluster)
``spill``             which value a bank over capacity evicts first
``ii_search``         how the II is advanced between failed attempts, and
                      whether an accelerated search bisects back down
====================  =====================================================

A :class:`PolicyBundle` names one choice per axis plus the engine mode
(``backtracking``: force-and-eject vs. the non-iterative restart-only
scheduler), so the paper's two schedulers are just the two bundles
``mirs_hc`` and ``non_iterative``; the other registered bundles vary one
axis at a time for the ablation driver
(:func:`repro.eval.experiments.run_ablation_policies`).

The actual policy implementations live next to the machinery they steer
(:mod:`repro.core.priority`, :mod:`repro.core.cluster_select`,
:mod:`repro.core.spill`); this module owns the registries, the II-search
strategies and the bundle catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type, Union

from repro.core.cluster_select import (
    select_cluster,
    select_cluster_min_pressure,
    select_cluster_round_robin,
)
from repro.core.priority import order_nodes, order_nodes_asap, order_nodes_by_height
from repro.core.spill import (
    victim_fewest_reloads,
    victim_latest_def,
    victim_longest_lifetime,
)

__all__ = [
    "PolicyBundle",
    "FailureDiagnosis",
    "IISearchPolicy",
    "LinearIISearch",
    "GeometricIISearch",
    "GeometricBisectIISearch",
    "InformedIISearch",
    "ordering_policy",
    "cluster_policy",
    "spill_victim_policy",
    "ii_search_policy",
    "register_bundle",
    "resolve_bundle",
    "bundle_names",
    "get_bundle",
    "ORDERING_POLICIES",
    "CLUSTER_POLICIES",
    "SPILL_VICTIM_POLICIES",
    "II_SEARCH_POLICIES",
]


# --------------------------------------------------------------------------- #
# II-search policies
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailureDiagnosis:
    """Structured evidence the engine extracted from a failed II attempt.

    Consumed by II-search policies whose :attr:`IISearchPolicy.wants_diagnosis`
    is true (the engine skips the extraction entirely for everyone else).
    ``unschedulable_at_all_iis`` is only set for *certificates*: evidence
    that is sound at every II, not just the one that failed -- currently
    an original (non-inserted, non-communication) operation that requires
    a resource with zero instances in every cluster it could legally be
    placed on.  Raising the II never creates resource instances, so such
    a loop can never be scheduled on this machine.
    """

    ii: int
    reason: str
    unschedulable_at_all_iis: bool = False
    detail: str = ""


class IISearchPolicy:
    """Strategy for walking the II search space of one loop.

    :meth:`next_ii` maps a failed II (and the number of failures so far)
    to the next candidate.  When :attr:`refine_with_bisection` is true and
    the first feasible II lies more than one step above the last failed
    one (an accelerated search overshot), the engine bisects the
    ``(last failed, feasible]`` interval to recover the smallest II the
    acceleration skipped.

    Policies that set :attr:`wants_diagnosis` additionally receive a
    :class:`FailureDiagnosis` via :meth:`observe_failure` after each
    failed attempt; :attr:`skip_note` (when set by the policy) is
    appended to the result's ``attempted_iis`` as the audit trail of any
    IIs the policy decided not to try.
    """

    name = "base"
    refine_with_bisection = False
    #: When true the engine extracts a :class:`FailureDiagnosis` after a
    #: failed attempt and feeds it to :meth:`observe_failure`.
    wants_diagnosis = False
    #: Audit-trail entry (``"skipped:..."``) for IIs the policy ruled out
    #: without trying them, or ``None``.
    skip_note: "str | None" = None

    def next_ii(self, ii: int, n_failures: int) -> int:
        raise NotImplementedError

    def observe_failure(self, diagnosis: FailureDiagnosis) -> None:
        """Consume evidence from a failed attempt (default: ignore it)."""


class LinearIISearch(IISearchPolicy):
    """The paper's restart rule: II + 1 after every failed attempt."""

    name = "linear"

    def next_ii(self, ii: int, n_failures: int) -> int:
        return ii + 1


class GeometricIISearch(IISearchPolicy):
    """Linear for three restarts, then geometric acceleration.

    Loops whose register pressure is far above the bank capacity need the
    II to grow by a large factor before a schedule fits; accelerating
    after a few single steps bounds the number of (expensive) failed
    attempts.  Without bisection the first feasible II found after a jump
    is kept as-is -- this is the pre-refactor behaviour, retained as an
    ablation point for the overshoot it can commit.
    """

    name = "geometric"

    def next_ii(self, ii: int, n_failures: int) -> int:
        # Acceleration kicks in on the fourth failed attempt: the first
        # three restarts advance linearly (matching the pre-refactor
        # driver, whose `restarts < 3` check ran before incrementing).
        if n_failures <= 3:
            return ii + 1
        return ii + max(1, round(ii * 0.15))


class GeometricBisectIISearch(GeometricIISearch):
    """Geometric acceleration plus bisection back to the minimal II.

    After an accelerated jump lands on a feasible II, the engine bisects
    toward the last failed II, so the acceleration can no longer overshoot
    the smallest achievable II (the default).
    """

    name = "geometric_bisect"
    refine_with_bisection = True


class InformedIISearch(LinearIISearch):
    """Linear search that consumes failure evidence to prune the walk.

    Steps II + 1 like :class:`LinearIISearch` -- the conservative default
    that can never overshoot -- but when the engine's
    :class:`FailureDiagnosis` carries a certificate valid at *every* II
    (``unschedulable_at_all_iis``), it abandons the remaining search
    instead of grinding linearly up to ``max_ii``.  The abandoned range
    is recorded in :attr:`skip_note` so the result's ``attempted_iis``
    shows exactly what was skipped and why; a hypothesis test
    (``tests/test_ii_search.py``) pins that the pruning never passes over
    an II the linear search could have scheduled.
    """

    name = "informed"
    wants_diagnosis = True

    #: Sentinel next-II far above any real ``max_ii``: returning it from
    #: :meth:`next_ii` terminates the engine's search loop immediately.
    ABANDON = 1 << 30

    def __init__(self) -> None:
        self.skip_note = None
        self._abort = False

    def observe_failure(self, diagnosis: FailureDiagnosis) -> None:
        if diagnosis.unschedulable_at_all_iis:
            self._abort = True
            why = diagnosis.detail or diagnosis.reason
            self.skip_note = f"skipped:{diagnosis.ii + 1}..:{why}"

    def next_ii(self, ii: int, n_failures: int) -> int:
        if self._abort:
            return self.ABANDON
        return ii + 1


# --------------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------------- #
ORDERING_POLICIES: Dict[str, Callable] = {
    "hrms": order_nodes,
    "height": order_nodes_by_height,
    "asap": order_nodes_asap,
}

CLUSTER_POLICIES: Dict[str, Callable] = {
    "comm_affinity": select_cluster,
    "round_robin": select_cluster_round_robin,
    "min_pressure": select_cluster_min_pressure,
}

SPILL_VICTIM_POLICIES: Dict[str, Callable] = {
    "longest_lifetime": victim_longest_lifetime,
    "fewest_reloads": victim_fewest_reloads,
    "latest_def": victim_latest_def,
}

II_SEARCH_POLICIES: Dict[str, Type[IISearchPolicy]] = {
    "linear": LinearIISearch,
    "geometric": GeometricIISearch,
    "geometric_bisect": GeometricBisectIISearch,
    "informed": InformedIISearch,
}


def _lookup(registry: Dict[str, object], name: str, axis: str):
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown {axis} policy {name!r} (known: {known})") from None


def ordering_policy(name: str) -> Callable:
    return _lookup(ORDERING_POLICIES, name, "ordering")


def cluster_policy(name: str) -> Callable:
    return _lookup(CLUSTER_POLICIES, name, "cluster-selection")


def spill_victim_policy(name: str) -> Callable:
    return _lookup(SPILL_VICTIM_POLICIES, name, "spill-victim")


def ii_search_policy(name: str) -> Type[IISearchPolicy]:
    return _lookup(II_SEARCH_POLICIES, name, "II-search")


# --------------------------------------------------------------------------- #
# Bundles
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PolicyBundle:
    """One named choice per policy axis plus the engine mode."""

    name: str
    ordering: str = "hrms"
    cluster: str = "comm_affinity"
    spill: str = "longest_lifetime"
    ii_search: str = "geometric_bisect"
    #: True = iterative force-and-eject (MIRS_HC); False = non-iterative
    #: (restart at the first placement that finds no free slot).
    backtracking: bool = True

    def validate(self) -> "PolicyBundle":
        ordering_policy(self.ordering)
        cluster_policy(self.cluster)
        spill_victim_policy(self.spill)
        ii_search_policy(self.ii_search)
        return self

    def axes(self) -> Tuple:
        """Hashable identity of the bundle's behaviour (cache-key token)."""
        return (
            self.ordering,
            self.cluster,
            self.spill,
            self.ii_search,
            self.backtracking,
        )

    def describe(self) -> str:
        mode = "iterative" if self.backtracking else "non-iterative"
        return (
            f"{self.name}: ordering={self.ordering} cluster={self.cluster} "
            f"spill={self.spill} ii_search={self.ii_search} ({mode})"
        )


BUNDLES: Dict[str, PolicyBundle] = {}


def register_bundle(bundle: PolicyBundle) -> PolicyBundle:
    """Add a bundle to the catalogue (validating its axis names)."""
    bundle.validate()
    BUNDLES[bundle.name] = bundle
    return bundle


def get_bundle(name: str) -> PolicyBundle:
    try:
        return BUNDLES[name]
    except KeyError:
        known = ", ".join(sorted(BUNDLES))
        raise ValueError(f"unknown policy bundle {name!r} (known: {known})") from None


def resolve_bundle(policy: Union[str, PolicyBundle]) -> PolicyBundle:
    """Normalize a bundle name or an ad-hoc :class:`PolicyBundle`."""
    if isinstance(policy, PolicyBundle):
        return policy.validate()
    return get_bundle(policy)


def bundle_names() -> List[str]:
    """Every registered bundle name, sorted."""
    return sorted(BUNDLES)


# The paper's two schedulers ...
register_bundle(PolicyBundle("mirs_hc"))
register_bundle(PolicyBundle("non_iterative", ii_search="linear", backtracking=False))
# ... and one-axis ablation variants of MIRS_HC.
register_bundle(PolicyBundle("mirs_height_order", ordering="height"))
register_bundle(PolicyBundle("mirs_asap_order", ordering="asap"))
register_bundle(PolicyBundle("mirs_rr_cluster", cluster="round_robin"))
register_bundle(PolicyBundle("mirs_min_pressure", cluster="min_pressure"))
register_bundle(PolicyBundle("mirs_fewest_reloads", spill="fewest_reloads"))
register_bundle(PolicyBundle("mirs_latest_def", spill="latest_def"))
register_bundle(PolicyBundle("mirs_linear_ii", ii_search="linear"))
register_bundle(PolicyBundle("mirs_geometric_ii", ii_search="geometric"))
register_bundle(PolicyBundle("mirs_informed_ii", ii_search="informed"))
