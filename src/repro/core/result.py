"""Schedule result containers.

A :class:`ScheduleResult` is the unit of output of every scheduler in this
package: it carries the final initiation interval, the placement of every
operation (including the communication and spill operations the scheduler
inserted), the per-bank register usage, and the counters the evaluation
harness needs (memory traffic, communication operations, spill traffic,
scheduling wall time, and the loop-bound classification used by Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.ddg.analysis import MIIBreakdown
from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType

__all__ = ["ScheduledOp", "ScheduleResult"]


@dataclass(frozen=True)
class ScheduledOp:
    """Final placement of one operation."""

    node_id: int
    op: OpType
    cycle: int
    cluster: Optional[int]

    def stage(self, ii: int) -> int:
        """Which II-cycle stage of the kernel this operation issues in."""
        return self.cycle // ii


@dataclass
class ScheduleResult:
    """The outcome of scheduling one loop on one configuration."""

    loop_name: str
    config_name: str
    success: bool
    ii: int
    mii: int
    mii_breakdown: MIIBreakdown
    stage_count: int
    assignments: Dict[int, ScheduledOp] = field(default_factory=dict)
    graph: Optional[DepGraph] = None
    register_usage: Dict[int, int] = field(default_factory=dict)
    #: Loads + stores per iteration of the final loop body (the paper's
    #: ``trf``), including spill accesses.
    memory_ops_per_iteration: int = 0
    #: Spill loads/stores to memory inserted by the register allocator.
    n_spill_memory_ops: int = 0
    #: Communication operations in the final body (Move, LoadR, StoreR),
    #: including the LoadR/StoreR introduced by spilling to the shared bank.
    n_comm_ops: int = 0
    #: Wall-clock seconds the scheduler needed for this loop.
    scheduling_time_s: float = 0.0
    #: How many times the II had to be bumped before a schedule was found.
    restarts: int = 0
    #: Classification of the final schedule (fu / mem / rec / com), based on
    #: the binding lower bound of the final dependence graph.
    bound: str = "fu"
    #: Every II the search actually attempted, in attempt order (includes
    #: the bisection refinement of an accelerated search).  On failure,
    #: ``ii`` above is the *last II tried*, not the search ceiling.  An
    #: II-search policy that ruled a range out without trying it appends
    #: one ``"skipped:<from>..:<why>"`` string as its audit trail (see
    #: :class:`repro.core.policy.InformedIISearch`).
    attempted_iis: List[Union[int, str]] = field(default_factory=list)
    #: Register-pressure queries the scheduler issued while building the
    #: schedule (the paper's per-node spill checks plus the pressure input
    #: of cluster selection).
    n_pressure_checks: int = 0
    #: Full-graph MaxLive sweeps spent on this loop (the incremental
    #: tracker keeps this near zero; the benchmark harness compares it
    #: against ``n_pressure_checks``).
    n_full_sweeps: int = 0
    #: Name of the policy bundle that produced this schedule.
    policy: str = "mirs_hc"
    #: Process-local perf telemetry (NOT serialized -- see
    #: :mod:`repro.serialize`): memo hit rates depend on which core ran
    #: and in which process, so including them in payloads would break
    #: the cross-core digest identity the equivalence harness pins.
    #: MRT window scans (``first_free_cycle`` calls) across all attempts.
    n_slot_probes: int = 0
    #: Window scans answered by the array core's epoch-stamped memo
    #: (always 0 for the object core, which recomputes every answer).
    n_probe_memo_hits: int = 0
    #: Analysis products (RecMII, ResMII components, priority order)
    #: served from the cross-II/cross-config analysis cache.
    n_analysis_reuses: int = 0

    @property
    def achieved_mii(self) -> bool:
        """True when the loop was scheduled at its minimum initiation interval."""
        return self.success and self.ii == self.mii

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of this result (see :mod:`repro.serialize`).

        The final dependence graph and every placement survive the round
        trip, so a schedule can cross process and wire boundaries and
        still be validated, rendered or diffed on the other side.
        """
        from repro import serialize

        return serialize.schedule_result_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScheduleResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from repro import serialize

        return serialize.schedule_result_from_dict(payload)

    def cycle_of(self, node_id: int) -> int:
        return self.assignments[node_id].cycle

    def cluster_of(self, node_id: int) -> Optional[int]:
        return self.assignments[node_id].cluster

    def kernel_table(self) -> str:
        """Readable kernel table: one line per modulo slot with its operations."""
        if not self.assignments:
            return "(empty schedule)"
        rows: Dict[int, list] = {slot: [] for slot in range(self.ii)}
        for placed in self.assignments.values():
            label = f"{placed.op.mnemonic}#{placed.node_id}"
            if placed.cluster is not None and placed.cluster >= 0:
                label += f"@c{placed.cluster}"
            rows[placed.cycle % self.ii].append((placed.cycle, label))
        lines = [f"II={self.ii} SC={self.stage_count} ({self.config_name}, {self.loop_name})"]
        for slot in range(self.ii):
            entries = ", ".join(label for _, label in sorted(rows[slot]))
            lines.append(f"  slot {slot:3d}: {entries}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line summary used by examples and logs."""
        status = "ok" if self.success else "FAILED"
        return (
            f"{self.loop_name} on {self.config_name}: {status} II={self.ii} "
            f"(MII={self.mii}) SC={self.stage_count} regs={self.register_usage} "
            f"comm={self.n_comm_ops} spill_mem={self.n_spill_memory_ops}"
        )
