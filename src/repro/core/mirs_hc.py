"""MIRS_HC: the integrated iterative modulo scheduler (paper, Figure 5).

Since the engine/policy refactor this module is a thin facade: the actual
driver lives in :class:`repro.core.engine.SchedulerEngine`, and MIRS_HC
is the engine configured with the ``mirs_hc`` policy bundle --

1. HRMS-inspired node ordering (``ordering=hrms``);
2. the communication-affinity ``Select_Cluster`` heuristic
   (``cluster=comm_affinity``), fed the *exact* current register pressure
   by the incremental tracker;
3. per-placement integrated register spilling with longest-lifetime
   victims (``spill=longest_lifetime``);
4. force-and-eject backtracking bounded by the paper's ``Budget_Ratio``;
5. a geometric II search with bisection refinement
   (``ii_search=geometric_bisect``): II + 1 for the first three restarts,
   then accelerated jumps, then -- once a jump lands on a feasible II --
   bisection back toward the last failed II so acceleration cannot
   overshoot the minimal achievable II.

The scheduler handles all four register-file families (monolithic,
clustered, hierarchical, hierarchical clustered) through the same code
path; the organization only changes which communication chains are
needed and where values live.  Alternative heuristics for every axis are
registered in :mod:`repro.core.policy` (pass ``policy=...`` here, or
``--policy`` on the CLI) and compared by the policy-ablation driver.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ddg.loop import Loop
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.presets import baseline_machine, config_by_name
from repro.core.engine import SchedulerEngine
from repro.core.policy import PolicyBundle
from repro.core.result import ScheduleResult

__all__ = ["MirsHC", "schedule_loop"]


class MirsHC(SchedulerEngine):
    """Modulo scheduling with Integrated Register Spilling for HC VLIWs.

    Parameters
    ----------
    machine:
        Datapath description whose latencies are already scaled to the
        target configuration's clock (see
        :func:`repro.hwmodel.timing.scaled_machine`).
    rf:
        The register-file organization to schedule for.
    budget_ratio:
        Average number of scheduling attempts allowed per node before the
        current II is abandoned (the paper's ``Budget_Ratio``).
    max_ii:
        Hard upper bound on the II explored before giving up on a loop.
    policy:
        Policy bundle to run the engine with (default: the paper's
        ``mirs_hc`` bundle).
    """

    def __init__(
        self,
        machine: MachineConfig,
        rf: RFConfig,
        *,
        budget_ratio: float = 6.0,
        max_ii: int = 512,
        policy: Union[str, PolicyBundle] = "mirs_hc",
        incremental_pressure: bool = True,
        core: str = "array",
        analysis_cache=None,
    ) -> None:
        super().__init__(
            machine,
            rf,
            policy=policy,
            budget_ratio=budget_ratio,
            max_ii=max_ii,
            incremental_pressure=incremental_pressure,
            core=core,
            analysis_cache=analysis_cache,
        )


def schedule_loop(
    loop: Loop,
    rf: RFConfig | str,
    machine: Optional[MachineConfig] = None,
    *,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
    policy: Union[str, PolicyBundle] = "mirs_hc",
) -> ScheduleResult:
    """Convenience wrapper: schedule one loop on one configuration.

    ``rf`` may be a configuration object or a name such as ``"4C16S64"``.
    When ``scale_to_clock`` is true the operation latencies are first
    re-scaled to the configuration's derived clock (the paper's
    methodology); otherwise the baseline latencies are used unchanged.
    ``policy`` selects the policy bundle (see :mod:`repro.core.policy`).
    """
    from repro.hwmodel.timing import scaled_machine  # local import: avoid cycle

    rf_config = config_by_name(rf) if isinstance(rf, str) else rf
    base = machine or baseline_machine()
    if scale_to_clock:
        scaled, _spec = scaled_machine(base, rf_config)
    else:
        scaled = base
    scheduler = SchedulerEngine(
        scaled, rf_config, policy=policy, budget_ratio=budget_ratio
    )
    return scheduler.schedule_loop(loop)
