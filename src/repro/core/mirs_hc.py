"""MIRS_HC: the integrated iterative modulo scheduler (paper, Figure 5).

The driver follows the structure of the paper's pseudo-code:

1. compute the MII and pre-order the nodes (HRMS-inspired ordering);
2. repeatedly pop the highest-priority node, pick a cluster for it
   (``Select_Cluster``), insert and schedule whatever communication
   operations the placement needs, then schedule the node itself --
   forcing it into the schedule and ejecting conflicting operations when
   no free slot exists;
3. after every placement, check the register pressure of every bank and
   spill (cluster bank -> shared bank -> memory) when a bank overflows;
   spill code joins the priority list and is scheduled like any other
   operation;
4. a *budget* (``Budget_Ratio`` attempts per node, replenished whenever
   new nodes are inserted) bounds the total backtracking effort: when it
   is exhausted the partial schedule is discarded, the II is incremented,
   and scheduling restarts from the original graph.

The scheduler handles all four register-file families (monolithic,
clustered, hierarchical, hierarchical clustered) through the same code
path; the organization only changes which communication chains are
needed and where values live.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.ddg.analysis import compute_mii
from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.ddg.operations import OpType
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.presets import baseline_machine, config_by_name
from repro.machine.resources import ResourceModel
from repro.core.banks import bank_capacity
from repro.core.cluster_select import select_cluster
from repro.core.communication import cleanup_after_eject, plan_communication
from repro.core.lifetimes import register_usage
from repro.core.partial import PartialSchedule, ScheduleInfeasible
from repro.core.priority import PriorityList, order_nodes
from repro.core.result import ScheduledOp, ScheduleResult
from repro.core.spill import SpillState, check_and_insert_spill

__all__ = ["MirsHC", "schedule_loop"]


class MirsHC:
    """Modulo scheduling with Integrated Register Spilling for HC VLIWs.

    Parameters
    ----------
    machine:
        Datapath description whose latencies are already scaled to the
        target configuration's clock (see
        :func:`repro.hwmodel.timing.scaled_machine`).
    rf:
        The register-file organization to schedule for.
    budget_ratio:
        Average number of scheduling attempts allowed per node before the
        current II is abandoned (the paper's ``Budget_Ratio``).
    max_ii:
        Hard upper bound on the II explored before giving up on a loop.
    """

    def __init__(
        self,
        machine: MachineConfig,
        rf: RFConfig,
        *,
        budget_ratio: float = 6.0,
        max_ii: int = 512,
    ) -> None:
        machine.validate_rf(rf)
        self.machine = machine
        self.rf = rf
        self.resources = ResourceModel(machine, rf)
        self.budget_ratio = budget_ratio
        self.max_ii = max_ii
        self._check_registers = not (
            (rf.cluster_regs is None or rf.cluster_regs_unbounded)
            and (rf.shared_regs is None or rf.shared_regs_unbounded)
        )

    # ------------------------------------------------------------------ #
    def schedule_loop(self, loop: Loop) -> ScheduleResult:
        """Schedule one loop, searching upward from its MII."""
        started = time.perf_counter()
        breakdown = compute_mii(loop.graph, self.resources, self.machine.latency)
        ii = breakdown.mii
        restarts = 0
        while ii <= self.max_ii:
            try:
                attempt = self._attempt(loop.graph.copy(), ii)
            except ScheduleInfeasible:
                attempt = None
            if attempt is not None:
                graph, schedule = attempt
                elapsed = time.perf_counter() - started
                return self._build_result(
                    loop, graph, schedule, breakdown, restarts, elapsed
                )
            # The paper restarts at II+1.  For loops whose register pressure
            # is far above the bank capacity the II has to grow by a large
            # factor before a schedule fits, so after a few single-step
            # restarts the search accelerates geometrically (this only
            # affects loops that are many restarts away from their MII).
            if restarts < 3:
                ii += 1
            else:
                ii += max(1, round(ii * 0.15))
            restarts += 1
        elapsed = time.perf_counter() - started
        return ScheduleResult(
            loop_name=loop.name,
            config_name=self.rf.name,
            success=False,
            ii=self.max_ii,
            mii=breakdown.mii,
            mii_breakdown=breakdown,
            stage_count=0,
            scheduling_time_s=elapsed,
            restarts=restarts,
            bound=breakdown.bound,
        )

    # ------------------------------------------------------------------ #
    def _attempt(
        self, graph: DepGraph, ii: int
    ) -> Optional[Tuple[DepGraph, PartialSchedule]]:
        """One scheduling attempt at a fixed II (None = budget exhausted / infeasible)."""
        schedule = PartialSchedule(graph, ii, self.machine, self.rf, self.resources)
        order = order_nodes(graph, self.machine.latency)
        if not order:
            return graph, schedule
        priority = PriorityList(order)
        spill_state = SpillState()
        budget = self.budget_ratio * len(order)
        # Budget is replenished only for *net* graph growth (new spill or
        # communication nodes that were not there before): churn that
        # removes one communication node and inserts another must not keep
        # the budget alive forever.
        max_graph_size = len(graph)
        # Hard cap on scheduling steps, as a backstop against pathological
        # interactions between spilling and communication insertion.
        steps_left = int(self.budget_ratio * len(order) * 4) + 128
        # Register pressure is re-checked at this granularity (every node
        # when a bank is close to its capacity, see below).
        spill_check_interval = max(3, len(order) // 16)

        def award_growth() -> float:
            nonlocal max_graph_size
            grown = len(graph) - max_graph_size
            if grown > 0:
                max_graph_size = len(graph)
                return self.budget_ratio * grown
            return 0.0

        # Register pressure is re-evaluated after scheduling each node for
        # the spill check; the most recent evaluation is reused as the
        # (slightly stale) pressure input of the cluster-selection
        # heuristic rather than recomputing it twice per node.
        last_usage: Optional[Dict[int, int]] = None
        nodes_since_spill_check = 0

        while True:
            while priority:
                if budget <= 0 or steps_left <= 0:
                    return None
                steps_left -= 1
                node_id = priority.pop()
                if node_id not in graph:
                    continue  # deleted by communication cleanup while pending

                cluster = select_cluster(graph, schedule, node_id, self.rf, last_usage)

                new_comm, requeue = plan_communication(
                    graph, schedule, node_id, cluster, self.rf
                )
                for stale in requeue:
                    priority.push(stale, after=node_id)
                budget += award_growth()
                failed = False
                for comm_node in new_comm:
                    if comm_node not in graph:
                        # Scheduling an earlier member of this chain ejected
                        # a neighbour whose cleanup deleted this one.
                        continue
                    home = graph.node(comm_node).home_cluster
                    ejected = schedule.schedule(comm_node, home)
                    budget -= 1
                    self._handle_ejections(graph, schedule, ejected, priority)
                    if budget <= 0:
                        failed = True
                        break
                if failed:
                    return None

                if node_id not in graph:
                    # Scheduling the communication chain above ejected a
                    # neighbour whose cleanup deleted this very node (it
                    # was an inserted comm/spill op of the ejected owner).
                    continue
                ejected = schedule.schedule(node_id, cluster)
                budget -= 1
                self._handle_ejections(graph, schedule, ejected, priority)

                if self._check_registers:
                    nodes_since_spill_check += 1
                    near_capacity = last_usage is not None and any(
                        used >= 0.75 * bank_capacity(self.rf, bank)
                        for bank, used in last_usage.items()
                        if bank_capacity(self.rf, bank) != float("inf")
                    )
                    if near_capacity or nodes_since_spill_check >= spill_check_interval or not priority:
                        nodes_since_spill_check = 0
                        new_spill, last_usage = check_and_insert_spill(
                            graph, schedule, self.rf, self.machine, spill_state
                        )
                        for spill_node in new_spill:
                            priority.push(spill_node, after=node_id)
                        budget += award_growth()

            # Priority list empty: final register-allocation check.
            if not self._check_registers:
                break
            usage = register_usage(
                graph, schedule.times, schedule.clusters, ii,
                self.rf, self.machine.latency,
            )
            over = [
                bank for bank, used in usage.items()
                if used > bank_capacity(self.rf, bank)
            ]
            if not over:
                break
            new_spill, last_usage = check_and_insert_spill(
                graph, schedule, self.rf, self.machine, spill_state,
                max_spills_per_call=4,
            )
            if not new_spill:
                return None  # pressure cannot be reduced at this II
            for spill_node in new_spill:
                priority.push(spill_node)
            budget += award_growth()

        return graph, schedule

    # ------------------------------------------------------------------ #
    def _handle_ejections(
        self,
        graph: DepGraph,
        schedule: PartialSchedule,
        ejected: Set[int],
        priority: PriorityList,
    ) -> None:
        """Re-queue ejected nodes and drop the communication code they owned."""
        for node_id in ejected:
            if node_id not in graph:
                continue
            node = graph.node(node_id)
            if not (node.is_inserted and node.op.is_communication):
                removed = cleanup_after_eject(graph, schedule, node_id)
                for removed_id in removed:
                    priority.discard(removed_id)
            if node_id in graph:
                priority.push(node_id)

    # ------------------------------------------------------------------ #
    def _build_result(
        self,
        loop: Loop,
        graph: DepGraph,
        schedule: PartialSchedule,
        breakdown,
        restarts: int,
        elapsed: float,
    ) -> ScheduleResult:
        assignments: Dict[int, ScheduledOp] = {}
        for node_id, cycle in schedule.times.items():
            assignments[node_id] = ScheduledOp(
                node_id=node_id,
                op=graph.node(node_id).op,
                cycle=cycle,
                cluster=schedule.clusters.get(node_id),
            )
        usage = register_usage(
            graph, schedule.times, schedule.clusters, schedule.ii,
            self.rf, self.machine.latency,
        )
        final_breakdown = compute_mii(graph, self.resources, self.machine.latency)
        n_spill_mem = sum(
            1 for op in graph.memory_operations() if op.is_spill
        )
        return ScheduleResult(
            loop_name=loop.name,
            config_name=self.rf.name,
            success=True,
            ii=schedule.ii,
            mii=breakdown.mii,
            mii_breakdown=breakdown,
            stage_count=schedule.stage_count(),
            assignments=assignments,
            graph=graph,
            register_usage=usage,
            memory_ops_per_iteration=len(graph.memory_operations()),
            n_spill_memory_ops=n_spill_mem,
            n_comm_ops=len(graph.communication_operations()),
            scheduling_time_s=elapsed,
            restarts=restarts,
            bound=final_breakdown.bound,
        )


def schedule_loop(
    loop: Loop,
    rf: RFConfig | str,
    machine: Optional[MachineConfig] = None,
    *,
    scale_to_clock: bool = True,
    budget_ratio: float = 6.0,
) -> ScheduleResult:
    """Convenience wrapper: schedule one loop on one configuration.

    ``rf`` may be a configuration object or a name such as ``"4C16S64"``.
    When ``scale_to_clock`` is true the operation latencies are first
    re-scaled to the configuration's derived clock (the paper's
    methodology); otherwise the baseline latencies are used unchanged.
    """
    from repro.hwmodel.timing import scaled_machine  # local import: avoid cycle

    rf_config = config_by_name(rf) if isinstance(rf, str) else rf
    base = machine or baseline_machine()
    if scale_to_clock:
        scaled, _spec = scaled_machine(base, rf_config)
    else:
        scaled = base
    scheduler = MirsHC(scaled, rf_config, budget_ratio=budget_ratio)
    return scheduler.schedule_loop(loop)
