"""HRMS-inspired node ordering for the modulo scheduler.

MIRS_HC pre-orders the nodes of the dependence graph with the node
ordering strategy of HRMS (Hypernode Reduction Modulo Scheduling, Llosa
et al., MICRO-28).  The goals of that ordering are:

1. operations on the most constraining recurrences are scheduled first
   (their slack is smallest), and
2. every operation (after the first) is scheduled while having at least
   one already-ordered predecessor or successor, so that its scheduling
   window is bounded on at least one side and lifetimes stay short.

This module implements an ordering with the same two properties: the
strongly connected components (recurrences) are ordered by decreasing
criticality (their RecMII), and the remaining nodes are appended by a
neighbour-first expansion that always prefers a node adjacent to the
already-ordered set, breaking ties by critical-path height.  Ejected
nodes re-enter the ready list with their original priority, exactly as in
the paper.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Sequence, Set

from repro.ddg.analysis import recurrence_components, rec_mii, heights, depths
from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType

__all__ = [
    "order_nodes",
    "order_nodes_by_height",
    "order_nodes_asap",
    "PriorityList",
]

LatencyFn = Callable[[str], int]


def _component_rec_mii(graph: DepGraph, component: Sequence[int], latency_of: LatencyFn) -> int:
    """RecMII of a single strongly connected component."""
    # Build a throwaway subgraph restricted to the component.
    sub = DepGraph()
    mapping: Dict[int, int] = {}
    for node_id in component:
        node = graph.node(node_id)
        mapping[node_id] = sub.add_node(node.op, name=node.name)
    for node_id in component:
        for edge in graph.out_edges(node_id):
            if edge.dst in mapping:
                sub.add_edge(mapping[node_id], mapping[edge.dst],
                             distance=edge.distance, kind=edge.kind)
    return rec_mii(sub, latency_of)


def order_nodes(graph: DepGraph, latency_of: LatencyFn) -> List[int]:
    """Scheduling order (most critical first) of the schedulable nodes.

    Live-in pseudo nodes are excluded: they consume no resources and are
    implicitly available from cycle 0.
    """
    schedulable = [n.node_id for n in graph.nodes() if n.op is not OpType.LIVE_IN]
    if not schedulable:
        return []
    schedulable_set = set(schedulable)

    height = heights(graph, latency_of)
    depth = depths(graph, latency_of)

    # 1. Recurrences first, most critical recurrence first.
    ordered: List[int] = []
    placed: Set[int] = set()
    components = [c for c in recurrence_components(graph) if set(c) & schedulable_set]
    scored = sorted(
        components,
        key=lambda c: (-_component_rec_mii(graph, c, latency_of), -max(height[n] for n in c)),
    )
    for component in scored:
        members = sorted(
            (n for n in component if n in schedulable_set and n not in placed),
            key=lambda n: (depth[n], -height[n]),
        )
        ordered.extend(members)
        placed.update(members)

    # 2. Remaining nodes: neighbour-first expansion from the ordered set.
    remaining = [n for n in schedulable if n not in placed]
    # Max-heap keyed on (adjacent-to-placed, height, -depth).
    def key(n: int, adjacent: bool) -> tuple:
        return (-int(adjacent), -height[n], depth[n], n)

    while remaining:
        adjacency = {
            n: any(
                (m in placed)
                for m in (graph.successors(n) + graph.predecessors(n))
            )
            for n in remaining
        }
        remaining.sort(key=lambda n: key(n, adjacency[n]))
        chosen = remaining.pop(0)
        ordered.append(chosen)
        placed.add(chosen)

    return ordered


def _schedulable(graph: DepGraph) -> List[int]:
    return [n.node_id for n in graph.nodes() if n.op is not OpType.LIVE_IN]


def order_nodes_by_height(graph: DepGraph, latency_of: LatencyFn) -> List[int]:
    """Alternative ordering policy: critical-path height, highest first.

    A classic list-scheduling order.  Unlike the HRMS-style order it
    ignores recurrence membership and adjacency to the already-ordered
    set, so lifetimes can be longer -- which is exactly what the policy
    ablation wants to measure.
    """
    schedulable = _schedulable(graph)
    if not schedulable:
        return []
    height = heights(graph, latency_of)
    depth = depths(graph, latency_of)
    return sorted(schedulable, key=lambda n: (-height[n], depth[n], n))


def order_nodes_asap(graph: DepGraph, latency_of: LatencyFn) -> List[int]:
    """Alternative ordering policy: ASAP (smallest depth first).

    Schedules producers strictly before their consumers, top of the graph
    first; ties broken by height so critical chains stay early.
    """
    schedulable = _schedulable(graph)
    if not schedulable:
        return []
    height = heights(graph, latency_of)
    depth = depths(graph, latency_of)
    return sorted(schedulable, key=lambda n: (depth[n], -height[n], n))


class PriorityList:
    """The scheduler's ready list.

    Nodes carry a fixed priority assigned once from the HRMS-like order;
    ejected nodes are re-inserted with their *original* priority (the
    paper's behaviour), and nodes inserted later (spill and communication
    code that the scheduler decides to defer) receive a priority just
    after the node they were inserted for.
    """

    def __init__(self, initial_order: Sequence[int]) -> None:
        self._priority: Dict[int, float] = {
            node: float(index) for index, node in enumerate(initial_order)
        }
        self._heap: List[tuple] = []
        self._present: Set[int] = set()
        for node in initial_order:
            self.push(node)

    def __len__(self) -> int:
        return len(self._present)

    def __bool__(self) -> bool:
        return bool(self._present)

    def __contains__(self, node: int) -> bool:
        return node in self._present

    def priority_of(self, node: int) -> float:
        return self._priority[node]

    def push(self, node: int, *, after: int | None = None) -> None:
        """(Re-)insert a node.

        ``after`` assigns a priority immediately after an existing node
        (used for spill code inserted on behalf of that node); otherwise
        the node must already have a priority (original order or a prior
        ``after`` insertion).
        """
        if node in self._present:
            return
        if node not in self._priority:
            if after is not None and after in self._priority:
                self._priority[node] = self._priority[after] + 0.5
            else:
                self._priority[node] = float(len(self._priority))
        heapq.heappush(self._heap, (self._priority[node], node))
        self._present.add(node)

    def pop(self) -> int:
        """Remove and return the highest-priority (lowest rank) node."""
        while self._heap:
            _, node = heapq.heappop(self._heap)
            if node in self._present:
                self._present.discard(node)
                return node
        raise IndexError("pop from an empty priority list")

    def discard(self, node: int) -> None:
        """Remove a node if present (used when a pending node is deleted)."""
        self._present.discard(node)
