"""Two-level register spilling.

MIRS_HC checks the register pressure of every bank each time an operation
is scheduled (and once more when the priority list empties).  When a bank
exceeds its capacity it spills a value out of it:

* a value living in a **cluster bank** of a hierarchical organization is
  spilled to the **shared bank**: a ``StoreR`` is inserted right after its
  producer and a ``LoadR`` right before each consumer in that cluster;
* a value living in the **shared bank** (or in a cluster bank of a pure
  clustered organization, which has no level above it) is spilled to
  **memory**: a spill store after the producer and a spill load before
  each consumer;
* **loop invariants** living in a cluster bank can be evicted to the
  shared bank: their cluster consumers then re-load them with ``LoadR``
  operations (the paper's special handling of invariants).

The inserted operations are returned so the driver can put them on the
priority list; they are scheduled like any other operation (and can
trigger further backtracking), which is exactly the integrated behaviour
the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType
from repro.machine.config import MachineConfig, RFConfig, RFKind
from repro.core.banks import SHARED, bank_capacity, read_bank
from repro.core.lifetimes import ValueLifetime, lifetimes_by_bank, live_in_banks, register_usage
from repro.core.partial import PartialSchedule

__all__ = [
    "SpillState",
    "check_and_insert_spill",
    "victim_longest_lifetime",
    "victim_fewest_reloads",
    "victim_latest_def",
]


class SpillState:
    """Bookkeeping of what has already been spilled (to avoid re-spilling)."""

    def __init__(self) -> None:
        self.spilled_values: Set[int] = set()
        self.spilled_invariants: Set[int] = set()
        self.n_spill_memory_ops: int = 0
        self.n_spill_storer_loadr: int = 0

    def is_spilled(self, node_id: int) -> bool:
        return node_id in self.spilled_values or node_id in self.spilled_invariants


def _spillable(
    graph: DepGraph,
    lifetime: ValueLifetime,
    state: SpillState,
    *,
    allow_spill_copies: bool = False,
) -> bool:
    node = graph.node(lifetime.node_id)
    if state.is_spilled(lifetime.node_id):
        return False
    if node.is_spill and not (allow_spill_copies and node.op is OpType.STORER):
        # Spill code itself is normally not re-spilled.  The exception is
        # the second level of the paper's spill chain: a StoreR copy that a
        # cluster-bank spill parked in the shared bank can have a long
        # lifetime there, and when the *shared* bank overflows such copies
        # may continue on to memory (``allow_spill_copies``) -- otherwise a
        # shared bank full of spill copies is unfixable at any II.
        return False
    # A LoadR value is already a freshly re-loaded copy; spilling it would
    # only add churn (its source should be spilled instead).  StoreR and
    # Move values, however, can hold loop-carried values for several
    # iterations and are legitimate spill victims.
    if node.op is OpType.LOADR:
        return False
    # Spilling only helps when the value has at least one consumer to re-load.
    return bool(graph.flow_consumers(lifetime.node_id))


# --------------------------------------------------------------------------- #
# Spill-victim policies
# --------------------------------------------------------------------------- #
def victim_longest_lifetime(
    graph: DepGraph, candidates: Sequence[ValueLifetime]
) -> List[ValueLifetime]:
    """Default policy: spill the value that is live the longest.

    A long lifetime occupies the most register-slot instances per
    iteration, so evicting it frees the most pressure per inserted spill
    (the classic MaxLive-driven choice of the HRMS lineage).
    """
    return sorted(candidates, key=lambda lt: -lt.length)


def victim_fewest_reloads(
    graph: DepGraph, candidates: Sequence[ValueLifetime]
) -> List[ValueLifetime]:
    """Alternative policy: spill the value that is cheapest to re-load.

    Prefers victims with the fewest consumers (each consumer costs one
    re-load operation), breaking ties toward longer lifetimes.  Minimizes
    inserted spill code at the price of possibly needing several spills
    to relieve the same pressure.
    """
    return sorted(
        candidates,
        key=lambda lt: (len(graph.flow_consumers(lt.node_id)), -lt.length),
    )


def victim_latest_def(
    graph: DepGraph, candidates: Sequence[ValueLifetime]
) -> List[ValueLifetime]:
    """Alternative policy: spill the most recently defined value.

    Late definitions are the values the scheduler committed to last, so
    evicting them perturbs the established part of the schedule least
    (ties broken toward longer lifetimes).
    """
    return sorted(candidates, key=lambda lt: (-lt.start, -lt.length))


def _spill_value_to_shared(
    graph: DepGraph, node_id: int, cluster_bank: int, rf: RFConfig
) -> List[int]:
    """Spill a cluster-bank value to the shared bank (StoreR + LoadR per use).

    Consumers that read from the shared bank anyway (stores, StoreR nodes)
    keep their existing dependences; only consumers reading from the
    cluster bank are re-routed through a fresh LoadR.  If no consumer can
    be re-routed the spill is pointless and nothing is inserted.
    """
    reroutable = [
        (consumer, edge)
        for consumer, edge in graph.flow_consumers(node_id)
        if graph.node(consumer).op not in (OpType.STORE, OpType.STORER)
    ]
    if not reroutable:
        return []
    new_nodes: List[int] = []
    storer = graph.add_node(
        OpType.STORER,
        name=f"spill_str_{node_id}",
        is_spill=True,
        inserted_for=node_id,
        home_cluster=cluster_bank,
    )
    graph.add_edge(node_id, storer, distance=0)
    new_nodes.append(storer)
    for consumer, edge in reroutable:
        loadr = graph.add_node(
            OpType.LOADR,
            name=f"spill_ldr_{node_id}_{consumer}",
            is_spill=True,
            inserted_for=node_id,
            home_cluster=cluster_bank,
        )
        graph.remove_edge(node_id, consumer)
        graph.add_edge(storer, loadr, distance=edge.distance)
        graph.add_edge(loadr, consumer, distance=0)
        new_nodes.append(loadr)
    return new_nodes


def _spill_value_to_memory(graph: DepGraph, node_id: int) -> List[int]:
    """Spill a value to memory (spill store + spill load per use)."""
    new_nodes: List[int] = []
    store = graph.add_node(
        OpType.STORE,
        name=f"spill_st_{node_id}",
        is_spill=True,
        inserted_for=node_id,
    )
    graph.add_edge(node_id, store, distance=0)
    new_nodes.append(store)
    for consumer, edge in list(graph.flow_consumers(node_id)):
        if consumer == store:
            continue
        load = graph.add_node(
            OpType.LOAD,
            name=f"spill_ld_{node_id}_{consumer}",
            is_spill=True,
            inserted_for=node_id,
        )
        graph.remove_edge(node_id, consumer)
        graph.add_edge(store, load, distance=edge.distance, kind="mem")
        graph.add_edge(load, consumer, distance=0)
        new_nodes.append(load)
    return new_nodes


def _spill_invariant(
    graph: DepGraph, node_id: int, cluster_bank: int, rf: RFConfig,
    schedule: PartialSchedule,
) -> List[int]:
    """Evict a loop invariant from a cluster bank to the shared bank."""
    new_nodes: List[int] = []
    for consumer, edge in list(graph.flow_consumers(node_id)):
        bank = read_bank(graph, consumer, schedule.clusters.get(consumer), rf)
        if bank != cluster_bank:
            continue
        loadr = graph.add_node(
            OpType.LOADR,
            name=f"spill_inv_{node_id}_{consumer}",
            is_spill=True,
            inserted_for=node_id,
            home_cluster=cluster_bank,
        )
        graph.remove_edge(node_id, consumer)
        graph.add_edge(node_id, loadr, distance=edge.distance)
        graph.add_edge(loadr, consumer, distance=0)
        new_nodes.append(loadr)
    return new_nodes


def check_and_insert_spill(
    graph: DepGraph,
    schedule: PartialSchedule,
    rf: RFConfig,
    machine: MachineConfig,
    state: SpillState,
    *,
    max_spills_per_call: int = 2,
    victim_policy=victim_longest_lifetime,
) -> Tuple[List[int], Dict[int, int]]:
    """Spill values out of over-subscribed banks.

    Returns ``(new_nodes, usage)``: the newly inserted nodes (spill
    stores/loads, StoreR/LoadR), which the caller must add to the priority
    list, and the per-bank register usage that drove the decision (callers
    reuse it as the pressure input of other heuristics).  At most
    ``max_spills_per_call`` values are spilled per invocation: the check
    runs repeatedly as the schedule is built, so pressure is relieved
    incrementally instead of spilling a large batch on one estimate.

    When the schedule carries an incremental
    :class:`~repro.core.pressure.PressureTracker`, both the per-bank
    usage and the candidate lifetimes come from it (O(affected
    lifetimes)); a tracker-less schedule falls back to the full MaxLive
    sweep.  ``victim_policy`` orders the admissible candidates of an
    over-subscribed bank, best victim first (see
    :func:`victim_longest_lifetime` and friends).
    """
    tracker = schedule.pressure
    if tracker is not None:
        usage = tracker.usage()
    else:
        usage = register_usage(
            graph, schedule.times, schedule.clusters, schedule.ii, rf, machine.latency
        )
    new_nodes: List[int] = []
    spills_done = 0

    # Only the over-capacity banks need their lifetime lists materialized;
    # restricting the (sorted) candidate extraction to them keeps the cost
    # of a spill pass proportional to the problem, not to the bank count.
    ranked = sorted(usage.items(), key=lambda kv: -kv[1])
    over_banks = [
        bank for bank, used in ranked
        if bank_capacity(rf, bank) != float("inf") and used > bank_capacity(rf, bank)
    ]
    per_bank = None  # computed lazily
    for bank, used in ranked:
        if spills_done >= max_spills_per_call:
            break
        capacity = bank_capacity(rf, bank)
        if capacity == float("inf") or used <= capacity:
            continue
        if per_bank is None:
            if tracker is not None:
                per_bank = tracker.lifetimes_by_bank(banks=over_banks)
            else:
                per_bank = lifetimes_by_bank(
                    graph, schedule.times, schedule.clusters, schedule.ii,
                    rf, machine.latency,
                )
        candidates = victim_policy(
            graph,
            [
                lt
                for lt in per_bank.get(bank, [])
                # In the shared bank, spill copies may continue to memory
                # (the second level of the cluster -> shared -> memory
                # chain); everywhere else they are off limits.
                if _spillable(graph, lt, state, allow_spill_copies=bank == SHARED)
            ],
        )
        # A cluster-bank value normally spills one level up, to the shared
        # bank; but when the shared bank itself is (close to) full, pushing
        # more long-lived values into it only moves the problem, so the
        # value goes all the way to memory instead -- the "and/or" of the
        # paper's two-level spill check.
        shared_capacity = bank_capacity(rf, SHARED)
        shared_has_room = (
            shared_capacity == float("inf")
            or usage.get(SHARED, 0) + 2 < shared_capacity
        )
        spilled_here = False
        for victim in candidates:
            if bank != SHARED and rf.is_hierarchical and shared_has_room:
                created = _spill_value_to_shared(graph, victim.node_id, bank, rf)
                state.n_spill_storer_loadr += len(created)
            else:
                created = _spill_value_to_memory(graph, victim.node_id)
                state.n_spill_memory_ops += len(created)
            # Remember the victim even when nothing could be re-routed, so
            # the same futile candidate is not examined again.
            state.spilled_values.add(victim.node_id)
            if not created:
                continue
            new_nodes.extend(created)
            spills_done += 1
            spilled_here = True
            break
        if not spilled_here and bank != SHARED and rf.is_hierarchical:
            # No ordinary value can be spilled: try evicting a loop invariant.
            for invariant in graph.live_in_nodes():
                if invariant.node_id in state.spilled_invariants:
                    continue
                banks = live_in_banks(graph, invariant.node_id, schedule.clusters, rf)
                if bank not in banks:
                    continue
                created = _spill_invariant(graph, invariant.node_id, bank, rf, schedule)
                if created:
                    state.spilled_invariants.add(invariant.node_id)
                    state.n_spill_storer_loadr += len(created)
                    new_nodes.extend(created)
                    spills_done += 1
                    spilled_here = True
                    break
        if not spilled_here and bank != SHARED:
            # Last resort for a stuck cluster bank: it can be clogged with
            # re-loaded (LoadR) copies, which the normal policy refuses to
            # touch -- their sources live one level up where there may be
            # no pressure to relieve, and the slot search places a LoadR
            # right after its producer, so a distant consumer gives the
            # copy a lifetime of several IIs.  Left alone the bank stays
            # over capacity at *every* II and the scheduler churns until
            # its budget dies; rerouting the longest-lived copy through
            # memory restores the guarantee that a large enough II always
            # schedules.
            for victim in sorted(per_bank.get(bank, []), key=lambda lt: -lt.length):
                node = graph.node(victim.node_id)
                if node.op is not OpType.LOADR:
                    continue
                if victim.node_id in state.spilled_values:
                    continue
                if not graph.flow_consumers(victim.node_id):
                    continue
                # _spill_value_to_memory always creates at least the spill
                # store, so this victim is never futile.
                created = _spill_value_to_memory(graph, victim.node_id)
                state.spilled_values.add(victim.node_id)
                state.n_spill_memory_ops += len(created)
                new_nodes.extend(created)
                spills_done += 1
                spilled_here = True
                break
        if not spilled_here:
            # Nothing left to spill from this bank; the driver will notice
            # that the pressure cannot be met and fail this II attempt.
            continue
    return new_nodes, usage
