"""Independent validity checker for modulo schedules.

The scheduler is complex (backtracking, communication insertion, two-level
spilling), so the test suite never trusts its output blindly: every
schedule produced in the tests is re-checked by this module, which knows
nothing about how the schedule was constructed and simply verifies the
definition of a valid modulo schedule:

1. every non-pseudo operation of the final graph is placed exactly once;
2. every dependence ``u -> v`` with distance ``d`` satisfies
   ``t(v) + d*II >= t(u) + latency(u, edge kind)``;
3. no resource (functional units, memory ports, LoadR/StoreR ports, buses)
   is oversubscribed in any of the II modulo slots;
4. every operand is read from the bank that actually holds it (bank
   consistency of the clustered / hierarchical organization); and
5. no register bank uses more registers (MaxLive) than it has, unless the
   bank is unbounded.

Deliberately, this module does **not** use the scheduler's incremental
:class:`~repro.core.pressure.PressureTracker`: the register-capacity
check is a from-scratch :func:`~repro.core.lifetimes.register_usage`
sweep (and the replay probe below writes ``times`` directly, bypassing
the tracked placement path), so a tracker bug cannot validate its own
output.  The hypothesis differential oracle in
``tests/test_properties.py`` holds the two implementations equal.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.resources import ResourceModel
from repro.core.banks import SHARED, bank_capacity, read_bank, value_bank
from repro.core.lifetimes import register_usage
from repro.core.mrt import ModuloReservationTable
from repro.core.partial import PartialSchedule
from repro.core.result import ScheduleResult

__all__ = ["ValidationError", "validate_schedule"]


class ValidationError(AssertionError):
    """Raised when a schedule violates one of the modulo-schedule invariants.

    ``reproducer`` (when given) is a ready-to-run command that replays
    the failing scheduling problem locally (the fuzz driver supplies
    one); it is appended to the message so any CI failure is one
    copy-paste away from a local debug session.
    """

    def __init__(self, message: str, *, reproducer: Optional[str] = None) -> None:
        self.reproducer = reproducer
        if reproducer:
            message = f"{message}\n  reproduce: {reproducer}"
        super().__init__(message)


def validate_schedule(
    result: ScheduleResult,
    machine: MachineConfig,
    rf: RFConfig,
    *,
    check_registers: bool = True,
    reproducer: Optional[str] = None,
) -> None:
    """Raise :class:`ValidationError` if the schedule is invalid.

    ``reproducer`` is attached to any error raised, embedding the replay
    command in the failure message.
    """
    try:
        _validate_schedule(result, machine, rf, check_registers=check_registers)
    except ValidationError as exc:
        if reproducer and exc.reproducer is None:
            raise ValidationError(str(exc), reproducer=reproducer) from None
        raise


def _validate_schedule(
    result: ScheduleResult,
    machine: MachineConfig,
    rf: RFConfig,
    *,
    check_registers: bool = True,
) -> None:
    if not result.success:
        raise ValidationError(f"schedule for {result.loop_name} did not succeed")
    graph = result.graph
    if graph is None:
        raise ValidationError("schedule result carries no final graph")
    ii = result.ii
    times: Dict[int, int] = {}
    clusters: Dict[int, Optional[int]] = {}

    # 1. Completeness.
    for node in graph.nodes():
        if node.op is OpType.LIVE_IN:
            continue
        if node.node_id not in result.assignments:
            raise ValidationError(
                f"operation {node.node_id} ({node.op.mnemonic}) is not scheduled"
            )
        placed = result.assignments[node.node_id]
        times[node.node_id] = placed.cycle
        clusters[node.node_id] = placed.cluster
        if placed.cycle < 0:
            raise ValidationError(f"operation {node.node_id} scheduled at negative cycle")

    # 2. Dependences.
    def latency_of(mnemonic: str) -> int:
        return machine.latency(mnemonic)

    for edge in graph.edges():
        if graph.node(edge.src).op is OpType.LIVE_IN:
            continue
        if edge.src not in times or edge.dst not in times:
            continue
        latency = graph.edge_latency(edge, latency_of)
        lhs = times[edge.dst] + edge.distance * ii
        rhs = times[edge.src] + latency
        if lhs < rhs:
            raise ValidationError(
                f"dependence {edge.src}->{edge.dst} (distance {edge.distance}, "
                f"latency {latency}) violated: t({edge.dst})={times[edge.dst]}, "
                f"t({edge.src})={times[edge.src]}, II={ii}"
            )

    # 3. Resources: rebuild a reservation table from scratch.
    resources = ResourceModel(machine, rf)
    table = ModuloReservationTable(ii, resources.counts)
    probe = PartialSchedule(graph, ii, machine, rf, resources)
    # Replay cluster assignments first so Move source clusters resolve.
    probe.times = dict(times)
    probe.clusters = dict(clusters)
    for node_id, cycle in times.items():
        uses = probe.uses_for(node_id, clusters[node_id])
        if not uses:
            continue
        if not table.can_reserve(uses, cycle):
            raise ValidationError(
                f"resource oversubscription when replaying operation {node_id} "
                f"({graph.node(node_id).op.mnemonic}) at cycle {cycle}"
            )
        table.reserve(node_id, uses, cycle)

    # 4. Bank consistency.
    for edge in graph.edges():
        if edge.kind != "flow":
            continue
        src_node = graph.node(edge.src)
        if src_node.op is OpType.LIVE_IN:
            continue  # invariants are resident wherever they are needed
        if edge.src not in times or edge.dst not in times:
            continue
        src_bank = value_bank(graph, edge.src, clusters[edge.src], rf)
        dst_bank = read_bank(graph, edge.dst, clusters[edge.dst], rf)
        if src_bank is None or dst_bank is None:
            continue
        if graph.node(edge.dst).op is OpType.MOVE:
            continue  # a Move reads the producer's bank by construction
        if src_bank != dst_bank:
            raise ValidationError(
                f"bank mismatch on {edge.src}->{edge.dst}: value lives in "
                f"{src_bank} but consumer reads bank {dst_bank}"
            )

    # 5. Register capacity.
    if check_registers:
        usage = register_usage(graph, times, clusters, ii, rf, latency_of)
        for bank, used in usage.items():
            capacity = bank_capacity(rf, bank)
            if used > capacity:
                raise ValidationError(
                    f"bank {bank} uses {used} registers but only has {capacity}"
                )
