"""Non-iterative baseline scheduler (the comparison point of Table 4).

The paper compares MIRS_HC against its authors' earlier scheduler for
two-level hierarchical (non-clustered) register files [36], which is
*non-iterative*: scheduling decisions are never undone.  This module
implements that style of scheduler on top of the same substrate:

* nodes are scheduled in the same HRMS-inspired priority order,
* communication operations and spill code are inserted with the same
  machinery, but
* when an operation finds no free slot inside its dependence window the
  whole attempt is abandoned and scheduling restarts at ``II + 1`` -- no
  force-and-eject, no backtracking.

Because nothing is ever ejected, a single unlucky placement can force the
II up, which is exactly the deficit the iterative MIRS_HC recovers in the
paper's Table 4.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.ddg.analysis import compute_mii
from repro.ddg.graph import DepGraph
from repro.ddg.loop import Loop
from repro.machine.config import MachineConfig, RFConfig
from repro.machine.resources import ResourceModel
from repro.core.banks import bank_capacity
from repro.core.cluster_select import select_cluster
from repro.core.communication import plan_communication
from repro.core.lifetimes import register_usage
from repro.core.partial import PartialSchedule, ScheduleInfeasible
from repro.core.priority import PriorityList, order_nodes
from repro.core.result import ScheduledOp, ScheduleResult
from repro.core.spill import SpillState, check_and_insert_spill

__all__ = ["NonIterativeScheduler"]


class NonIterativeScheduler:
    """Modulo scheduler without backtracking (restart-on-failure only)."""

    def __init__(
        self,
        machine: MachineConfig,
        rf: RFConfig,
        *,
        max_ii: int = 512,
    ) -> None:
        machine.validate_rf(rf)
        self.machine = machine
        self.rf = rf
        self.resources = ResourceModel(machine, rf)
        self.max_ii = max_ii
        self._check_registers = not (
            (rf.cluster_regs is None or rf.cluster_regs_unbounded)
            and (rf.shared_regs is None or rf.shared_regs_unbounded)
        )

    # ------------------------------------------------------------------ #
    def schedule_loop(self, loop: Loop) -> ScheduleResult:
        started = time.perf_counter()
        breakdown = compute_mii(loop.graph, self.resources, self.machine.latency)
        ii = breakdown.mii
        restarts = 0
        while ii <= self.max_ii:
            try:
                attempt = self._attempt(loop.graph.copy(), ii)
            except ScheduleInfeasible:
                attempt = None
            if attempt is not None:
                graph, schedule = attempt
                elapsed = time.perf_counter() - started
                return self._build_result(loop, graph, schedule, breakdown, restarts, elapsed)
            ii += 1
            restarts += 1
        elapsed = time.perf_counter() - started
        return ScheduleResult(
            loop_name=loop.name,
            config_name=self.rf.name,
            success=False,
            ii=self.max_ii,
            mii=breakdown.mii,
            mii_breakdown=breakdown,
            stage_count=0,
            scheduling_time_s=elapsed,
            restarts=restarts,
            bound=breakdown.bound,
        )

    # ------------------------------------------------------------------ #
    def _attempt(
        self, graph: DepGraph, ii: int
    ) -> Optional[Tuple[DepGraph, PartialSchedule]]:
        schedule = PartialSchedule(graph, ii, self.machine, self.rf, self.resources)
        order = order_nodes(graph, self.machine.latency)
        if not order:
            return graph, schedule
        priority = PriorityList(order)
        spill_state = SpillState()
        # A generous cap on total placements protects against pathological
        # spill loops; a non-iterative scheduler otherwise places each node
        # exactly once.
        placements_left = 8 * len(order) + 64

        while True:
            while priority:
                if placements_left <= 0:
                    return None
                node_id = priority.pop()
                if node_id not in graph:
                    continue
                cluster = select_cluster(graph, schedule, node_id, self.rf, None)
                new_comm, requeue = plan_communication(
                    graph, schedule, node_id, cluster, self.rf
                )
                if requeue:
                    # A non-iterative scheduler cannot revisit previous
                    # decisions; needing to do so means this II fails.
                    return None
                for comm_node in new_comm:
                    home = graph.node(comm_node).home_cluster
                    slot = schedule.find_slot(comm_node, home)
                    if slot is None:
                        return None
                    schedule.place(comm_node, slot, home)
                    placements_left -= 1
                slot = schedule.find_slot(node_id, cluster)
                if slot is None:
                    return None
                schedule.place(node_id, slot, cluster)
                placements_left -= 1

                if self._check_registers:
                    new_spill, _usage = check_and_insert_spill(
                        graph, schedule, self.rf, self.machine, spill_state
                    )
                    for spill_node in new_spill:
                        priority.push(spill_node, after=node_id)

            if not self._check_registers:
                break
            usage = register_usage(
                graph, schedule.times, schedule.clusters, ii, self.rf, self.machine.latency
            )
            over = [b for b, used in usage.items() if used > bank_capacity(self.rf, b)]
            if not over:
                break
            new_spill, _usage = check_and_insert_spill(
                graph, schedule, self.rf, self.machine, spill_state, max_spills_per_call=4
            )
            if not new_spill:
                return None
            for spill_node in new_spill:
                priority.push(spill_node)

        return graph, schedule

    # ------------------------------------------------------------------ #
    def _build_result(
        self,
        loop: Loop,
        graph: DepGraph,
        schedule: PartialSchedule,
        breakdown,
        restarts: int,
        elapsed: float,
    ) -> ScheduleResult:
        assignments: Dict[int, ScheduledOp] = {
            node_id: ScheduledOp(
                node_id=node_id,
                op=graph.node(node_id).op,
                cycle=cycle,
                cluster=schedule.clusters.get(node_id),
            )
            for node_id, cycle in schedule.times.items()
        }
        usage = register_usage(
            graph, schedule.times, schedule.clusters, schedule.ii,
            self.rf, self.machine.latency,
        )
        final_breakdown = compute_mii(graph, self.resources, self.machine.latency)
        return ScheduleResult(
            loop_name=loop.name,
            config_name=self.rf.name,
            success=True,
            ii=schedule.ii,
            mii=breakdown.mii,
            mii_breakdown=breakdown,
            stage_count=schedule.stage_count(),
            assignments=assignments,
            graph=graph,
            register_usage=usage,
            memory_ops_per_iteration=len(graph.memory_operations()),
            n_spill_memory_ops=sum(1 for op in graph.memory_operations() if op.is_spill),
            n_comm_ops=len(graph.communication_operations()),
            scheduling_time_s=elapsed,
            restarts=restarts,
            bound=final_breakdown.bound,
        )
