"""Non-iterative baseline scheduler (the comparison point of Table 4).

The paper compares MIRS_HC against its authors' earlier scheduler for
two-level hierarchical (non-clustered) register files [36], which is
*non-iterative*: scheduling decisions are never undone.  Since the
engine/policy refactor this is simply the shared
:class:`~repro.core.engine.SchedulerEngine` running the
``non_iterative`` policy bundle:

* nodes are scheduled in the same HRMS-inspired priority order,
* communication operations and spill code are inserted with the same
  machinery (and the same incremental pressure tracker), but
* when an operation finds no free slot inside its dependence window --
  or placing it would require revisiting an earlier decision -- the whole
  attempt is abandoned and scheduling restarts at ``II + 1`` (a linear
  II search; no force-and-eject, no backtracking, no bisection).

Because nothing is ever ejected, a single unlucky placement can force the
II up, which is exactly the deficit the iterative MIRS_HC recovers in the
paper's Table 4.
"""

from __future__ import annotations

from repro.machine.config import MachineConfig, RFConfig
from repro.core.engine import SchedulerEngine

__all__ = ["NonIterativeScheduler"]


class NonIterativeScheduler(SchedulerEngine):
    """Modulo scheduler without backtracking (restart-on-failure only)."""

    def __init__(
        self,
        machine: MachineConfig,
        rf: RFConfig,
        *,
        max_ii: int = 512,
    ) -> None:
        super().__init__(machine, rf, policy="non_iterative", max_ii=max_ii)
