"""Register-bank identifiers and value-residence rules.

Every value produced in the loop lives in exactly one register bank:

* In a **monolithic** organization every value lives in the single shared
  bank.
* In a **clustered** organization every value lives in the bank of the
  cluster that produced it (memory ports are distributed, so load results
  also land in a cluster bank).
* In a **hierarchical** organization load results and ``StoreR`` results
  live in the shared bank, while functional-unit results and ``LoadR``
  results live in the first-level bank of their cluster.

Consumers read from a specific bank as well (a functional unit reads its
cluster bank; a store reads the bank its memory port is attached to); the
scheduler must insert communication operations whenever a consumer's read
bank differs from the producer's residence bank.  Loop-invariant values
(``LIVE_IN``) are assumed to be pre-loaded into every bank that needs
them (each occupied register is accounted for by the lifetime analysis),
so they never require communication unless the register allocator decides
to spill them.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ddg.graph import DepGraph
from repro.ddg.operations import OpType
from repro.machine.config import RFConfig, RFKind, effective_capacity
from repro.machine.resources import SHARED

__all__ = ["SHARED", "value_bank", "read_bank", "bank_capacity", "bank_name"]


def value_bank(
    graph: DepGraph, node_id: int, cluster: Optional[int], rf: RFConfig
) -> Optional[int]:
    """The bank in which the value defined by ``node_id`` resides.

    ``cluster`` is the cluster the operation was assigned to by the
    scheduler (ignored for operations whose results always land in the
    shared bank).  Returns ``None`` for operations that define no register
    value (stores) and for live-in values (which reside wherever they are
    consumed; see :func:`repro.core.lifetimes.live_in_banks`).
    """
    op = graph.node(node_id).op
    if op is OpType.STORE:
        return None
    if op is OpType.LIVE_IN:
        return None
    if rf.kind is RFKind.MONOLITHIC:
        return SHARED
    if rf.kind is RFKind.CLUSTERED:
        return cluster
    # Hierarchical organizations.
    if op in (OpType.LOAD, OpType.STORER):
        return SHARED
    return cluster


def read_bank(
    graph: DepGraph, node_id: int, cluster: Optional[int], rf: RFConfig
) -> Optional[int]:
    """The bank from which ``node_id`` reads its register operands.

    Returns ``None`` for operations that read no register operands
    (live-in values and, in this model, memory loads, whose address
    arithmetic is not represented in the dependence graph).
    """
    op = graph.node(node_id).op
    if op in (OpType.LIVE_IN, OpType.LOAD):
        return None
    if rf.kind is RFKind.MONOLITHIC:
        return SHARED
    if rf.kind is RFKind.CLUSTERED:
        return cluster
    # Hierarchical organizations.
    if op is OpType.STORE:
        return SHARED       # memory ports are attached to the shared bank
    if op is OpType.LOADR:
        return SHARED       # LoadR reads the shared bank, writes the cluster
    return cluster          # compute ops and StoreR read their cluster bank


def bank_capacity(rf: RFConfig, bank: int) -> float:
    """Number of registers of ``bank`` (``inf`` for unbounded banks)."""
    if bank == SHARED:
        if rf.shared_regs is None:
            # Monolithic configurations store everything in the "shared"
            # bank; clustered configurations have no shared bank at all and
            # nothing should ever be accounted there.
            return 0.0
        return effective_capacity(rf.shared_regs)
    return effective_capacity(rf.cluster_regs)


def all_banks(rf: RFConfig) -> list:
    """Every register bank of the configuration (cluster banks + shared)."""
    banks = []
    if rf.has_cluster_banks:
        banks.extend(range(rf.n_clusters))
    if rf.has_shared_bank or rf.is_monolithic:
        banks.append(SHARED)
    return banks


def bank_name(bank: int) -> str:
    """Readable name of a bank id."""
    return "shared" if bank == SHARED else f"cluster{bank}"
