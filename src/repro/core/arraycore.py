"""Array-native backends for the scheduler's hot state.

The object backends (:class:`~repro.core.mrt.ModuloReservationTable`,
:class:`~repro.core.pressure.PressureTracker`) keep their state in
per-resource / per-node dictionaries of Python containers.  That layout
is easy to audit but pays a dictionary lookup and a container allocation
on nearly every probe of the scheduler's innermost loops.  This module
provides drop-in replacements built on flat arrays and bitmasks:

* :class:`ArrayMRT` -- resources are numbered densely once at
  construction; occupancy lives in one flat list indexed by
  ``resource * II + slot`` and every resource additionally maintains a
  *full-slot bitmask* (bit ``s`` set iff modulo slot ``s`` is at
  capacity).  A window probe (:meth:`ArrayMRT.first_free_cycle`) rotates
  and ORs those masks once per resource use and then tests one bit per
  candidate cycle instead of re-walking every use.
* :class:`ArrayPressureTracker` -- per-node lifetime state lives in
  parallel int arrays indexed by :meth:`repro.ddg.graph.DepGraph.dense_index`
  (stable per node, recycled through a free list), bank slot counts live
  in one flat list indexed by ``bank * II + slot``, and the per-bank
  MaxLive is cached and only recomputed for banks whose counts changed.

Both classes are *behaviourally identical* to their object counterparts:
same probe answers, same exception behaviour, same dictionary key order
in query results, and -- critical for the force-and-eject path -- the
same element insertion order into the sets returned by
``conflicting_nodes``.  ``tests/test_core_equivalence.py`` pins the
equivalence with a differential hypothesis harness, and the corpus
replay asserts bit-identical end-to-end schedules.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.ddg.graph import DepGraph, Dependence, GraphListener
from repro.ddg.operations import OpType
from repro.machine.config import RFConfig
from repro.machine.resources import ResourceKey, ResourceUse
from repro.core.banks import all_banks, value_bank
from repro.core.lifetimes import ValueLifetime, live_in_banks

__all__ = ["ArrayMRT", "ArrayPressureTracker"]


class ArrayMRT:
    """Modulo reservation table over flat occupancy arrays and bitmasks.

    Same constructor and method contract as
    :class:`~repro.core.mrt.ModuloReservationTable`.
    """

    def __init__(self, ii: int, counts: Dict[ResourceKey, int]) -> None:
        if ii < 1:
            raise ValueError("the initiation interval must be >= 1")
        self.ii = ii
        self._counts = dict(counts)
        #: Resource keys in inventory order (defines the dense numbering
        #: and the key order of :meth:`utilization`).
        self._keys: List[ResourceKey] = list(counts)
        self._index: Dict[ResourceKey, int] = {
            key: index for index, key in enumerate(self._keys)
        }
        self._caps: List[int] = [counts[key] for key in self._keys]
        n_slots = len(self._keys) * ii
        #: Occupants per (resource, slot), flat-indexed; append order is
        #: identical to the object table's so ``conflicting_nodes`` builds
        #: its result set in the same element order.
        self._occupants: List[List[int]] = [[] for _ in range(n_slots)]
        #: Bit ``s`` of ``_full[r]`` set iff slot ``s`` of resource ``r``
        #: is at capacity.  Zero-capacity resources read as always-full.
        self._all_ones = (1 << ii) - 1
        self._full: List[int] = [
            0 if cap > 0 else self._all_ones for cap in self._caps
        ]
        #: node -> flat (resource, slot) indices it occupies.
        self._held: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ #
    def capacity(self, key: ResourceKey) -> int:
        return self._counts.get(key, 0)

    def can_reserve(self, uses: Sequence[ResourceUse], cycle: int) -> bool:
        """True when every requested reservation has a free instance."""
        ii = self.ii
        index = self._index
        caps = self._caps
        occupants = self._occupants
        if len(uses) == 1:
            # Fast path: one use never double-counts a slot (a multi-cycle
            # span covers min(duration, II) *distinct* modulo slots).
            use = uses[0]
            resource = index.get(use.key)
            if resource is None:
                return False
            cap = caps[resource]
            if cap <= 0:
                return False
            start = cycle + use.offset
            base = resource * ii
            if use.duration == 1:
                return len(occupants[base + start % ii]) < cap
            for delta in range(min(use.duration, ii)):
                if len(occupants[base + (start + delta) % ii]) >= cap:
                    return False
            return True
        needed: Dict[int, int] = {}
        for use in uses:
            resource = index.get(use.key)
            if resource is None:
                return False
            cap = caps[resource]
            if cap <= 0:
                return False
            start = cycle + use.offset
            base = resource * ii
            if use.duration == 1:
                flat = base + start % ii
                extra = needed.get(flat, 0) + 1
                if len(occupants[flat]) + extra > cap:
                    return False
                needed[flat] = extra
            else:
                for delta in range(min(use.duration, ii)):
                    flat = base + (start + delta) % ii
                    extra = needed.get(flat, 0) + 1
                    if len(occupants[flat]) + extra > cap:
                        return False
                    needed[flat] = extra
        return True

    def _blocked_mask(self, uses: Sequence[ResourceUse]) -> Optional[int]:
        """Bit ``s`` set iff issuing at any cycle ``c`` with ``c % II == s``
        is infeasible because some use hits a slot that is already full.

        ``None`` means every cycle is infeasible (unknown or
        zero-capacity resource).  A clear bit is only *necessary* for
        feasibility (several uses may still collide on one slot), so
        callers confirm candidates with :meth:`can_reserve`.
        """
        ii = self.ii
        index = self._index
        blocked = 0
        for use in uses:
            resource = index.get(use.key)
            if resource is None or self._caps[resource] <= 0:
                return None
            full = self._full[resource]
            if not full:
                continue
            for delta in range(1 if use.duration == 1 else min(use.duration, ii)):
                k = (use.offset + delta) % ii
                if k:
                    rotated = ((full >> k) | (full << (ii - k))) & self._all_ones
                else:
                    rotated = full
                blocked |= rotated
                if blocked == self._all_ones:
                    return None
        return blocked

    def first_free_cycle(
        self, uses: Sequence[ResourceUse], cycles: Sequence[int]
    ) -> Optional[int]:
        """First cycle of ``cycles`` where ``can_reserve`` holds, or ``None``."""
        if not uses:
            for cycle in cycles:
                return cycle
            return None
        blocked = self._blocked_mask(uses)
        if blocked is None:
            return None
        ii = self.ii
        # When no two uses can land on the same (resource, slot) pair --
        # every use is a single slot on a distinct resource -- a clear
        # blocked bit is feasibility itself, so no confirmation probe is
        # needed.  (Multi-cycle spans and repeated resources can still
        # collide below capacity, so those confirm with can_reserve.)
        exact = True
        if len(uses) > 1:
            seen = set()
            for use in uses:
                if use.duration != 1 or use.key in seen:
                    exact = False
                    break
                seen.add(use.key)
        elif uses[0].duration != 1:
            exact = False
        if exact:
            if blocked == 0:
                for cycle in cycles:
                    return cycle
                return None
            for cycle in cycles:
                if not (blocked >> (cycle % ii)) & 1:
                    return cycle
            return None
        if blocked:
            for cycle in cycles:
                if not (blocked >> (cycle % ii)) & 1 and self.can_reserve(uses, cycle):
                    return cycle
            return None
        for cycle in cycles:
            if self.can_reserve(uses, cycle):
                return cycle
        return None

    def reserve(self, node_id: int, uses: Sequence[ResourceUse], cycle: int) -> None:
        """Reserve resources for ``node_id`` issuing at ``cycle``."""
        if not self.can_reserve(uses, cycle):
            raise ValueError(f"resources not available for node {node_id} at cycle {cycle}")
        ii = self.ii
        held = self._held.setdefault(node_id, [])
        occupants = self._occupants
        caps = self._caps
        for use in uses:
            resource = self._index[use.key]
            base = resource * ii
            start = cycle + use.offset
            for delta in range(1 if use.duration == 1 else min(use.duration, ii)):
                slot = (start + delta) % ii
                flat = base + slot
                row = occupants[flat]
                row.append(node_id)
                held.append(flat)
                if len(row) >= caps[resource]:
                    self._full[resource] |= 1 << slot

    def release(self, node_id: int) -> None:
        """Release every reservation held by ``node_id`` (idempotent)."""
        ii = self.ii
        for flat in self._held.pop(node_id, []):
            row = self._occupants[flat]
            try:
                row.remove(node_id)
            except ValueError:  # pragma: no cover - defensive
                continue
            resource, slot = divmod(flat, ii)
            if self._caps[resource] > 0 and len(row) < self._caps[resource]:
                self._full[resource] &= ~(1 << slot)

    def holds(self, node_id: int) -> bool:
        return node_id in self._held

    def held_keys(self, node_id: int) -> List[ResourceKey]:
        """Resource keys ``node_id`` occupies, one entry per occupied slot."""
        ii = self.ii
        keys = self._keys
        return [keys[flat // ii] for flat in self._held.get(node_id, [])]

    def conflicting_nodes(self, uses: Sequence[ResourceUse], cycle: int) -> Set[int]:
        """Nodes whose eviction would free the requested reservations."""
        ii = self.ii
        conflicts: Set[int] = set()
        for use in uses:
            resource = self._index.get(use.key)
            if resource is None:
                continue
            cap = self._caps[resource]
            if cap <= 0:
                continue
            base = resource * ii
            start = cycle + use.offset
            for delta in range(1 if use.duration == 1 else min(use.duration, ii)):
                row = self._occupants[base + (start + delta) % ii]
                if len(row) >= cap:
                    conflicts.update(row)
        return conflicts

    # ------------------------------------------------------------------ #
    def utilization(self) -> Dict[ResourceKey, float]:
        """Fraction of occupied slots per resource (for reports/tests)."""
        ii = self.ii
        result: Dict[ResourceKey, float] = {}
        for resource, key in enumerate(self._keys):
            total = self._caps[resource] * ii
            base = resource * ii
            used = sum(len(self._occupants[base + slot]) for slot in range(ii))
            result[key] = used / total if total else 0.0
        return result


#: Sentinel for "no contribution recorded" in the dense bank-index array
#: (bank *ids* include -1 for the shared bank, so the arrays store dense
#: bank indices, which are always >= 0).
_NO_BANK = -1


class ArrayPressureTracker(GraphListener):
    """Incrementally maintained per-bank MaxLive over flat arrays.

    Same constructor and query contract as
    :class:`~repro.core.pressure.PressureTracker`; per-node state is
    stored in parallel arrays indexed by the graph's dense node index,
    and the per-bank maximum is cached between queries.
    """

    def __init__(
        self,
        graph: DepGraph,
        ii: int,
        rf: RFConfig,
        latency_of: Callable[[str], int],
        times: Dict[int, int],
        clusters: Dict[int, Optional[int]],
    ) -> None:
        self.graph = graph
        self.ii = ii
        self.rf = rf
        self.latency_of = latency_of
        self.times = times
        self.clusters = clusters
        #: Banks in ``all_banks`` order: defines the dense bank numbering
        #: and the key order of :meth:`usage` / :meth:`lifetimes_by_bank`.
        self._banks: List[int] = list(all_banks(rf))
        self._bank_index: Dict[int, int] = {
            bank: index for index, bank in enumerate(self._banks)
        }
        self._slots: List[int] = [0] * (len(self._banks) * ii)
        #: Cached per-bank MaxLive + the set of banks whose slots changed.
        self._bank_max: List[int] = [0] * len(self._banks)
        self._stale_banks: int = 0
        #: Last :meth:`usage` answer, reused verbatim while no event has
        #: invalidated it (callers treat the dict as read-only, exactly
        #: like the fresh dict the object tracker hands out each call).
        self._usage_cache: Optional[Dict[int, int]] = None
        # Parallel per-node arrays, indexed by graph.dense_index(node).
        size = graph.dense_index_bound()
        self._contrib_bank: List[int] = [_NO_BANK] * size
        self._contrib_start: List[int] = [0] * size
        self._contrib_end: List[int] = [0] * size
        self._contrib_node: List[int] = [-1] * size
        #: Bitmask of dense bank indices charged one whole-loop register
        #: (live-in values only).
        self._live_banks: List[int] = [0] * size
        self._dirty: Set[int] = set()
        #: usage() queries served (the per-node spill checks of the paper).
        self.n_checks: int = 0
        #: Individual lifetime re-derivations (the incremental work unit).
        self.n_updates: int = 0
        graph.add_listener(self)

    # ------------------------------------------------------------------ #
    # Event intake (placement + graph mutation)
    # ------------------------------------------------------------------ #
    def on_place(self, node_id: int) -> None:
        """The owning schedule placed ``node_id``.

        Placing a node can only *extend* the lifetime of an
        already-flushed producer (the producer's own cycle, bank and
        start are untouched; the new consumer adds one more ``use+1``
        candidate to the end maximum), so such producers are updated in
        place with an O(delta) slot-count extension instead of a full
        re-derivation.  Everything else -- the placed node itself,
        live-in producers (their bank *set* changes with consumer
        placement), producers with pending dirty state -- falls back to
        the dirty set.
        """
        dirty = self._dirty
        dirty.add(node_id)
        graph = self.graph
        if node_id not in graph:
            return
        cycle = self.times.get(node_id)
        if cycle is None:  # pragma: no cover - defensive (place sets times first)
            self._touch(node_id)
            return
        ii = self.ii
        contrib_bank = self._contrib_bank
        contrib_node = self._contrib_node
        contrib_end = self._contrib_end
        for src, edge in graph.flow_producers(node_id):
            if src in dirty:
                continue
            index = graph.dense_index(src)
            if (
                index < len(contrib_bank)
                and contrib_bank[index] != _NO_BANK
                and contrib_node[index] == src
            ):
                use_end = cycle + edge.distance * ii + 1
                if use_end > contrib_end[index]:
                    self._apply(contrib_bank[index], contrib_end[index], use_end, +1)
                    contrib_end[index] = use_end
            else:
                dirty.add(src)

    def on_remove(self, node_id: int) -> None:
        """The owning schedule ejected or forgot ``node_id``.

        Called while the node's cycle is still recorded (see
        :meth:`repro.core.partial.PartialSchedule.remove`).  Removing a
        consumer can only shrink a producer's lifetime if that consumer
        attained the current end; producers for which this use was
        strictly interior keep their contribution untouched.
        """
        dirty = self._dirty
        dirty.add(node_id)
        graph = self.graph
        if node_id not in graph:
            return
        cycle = self.times.get(node_id)
        if cycle is None:
            self._touch(node_id)
            return
        ii = self.ii
        contrib_bank = self._contrib_bank
        contrib_node = self._contrib_node
        contrib_end = self._contrib_end
        for src, edge in graph.flow_producers(node_id):
            if src in dirty:
                continue
            index = graph.dense_index(src)
            if (
                index < len(contrib_bank)
                and contrib_bank[index] != _NO_BANK
                and contrib_node[index] == src
                and cycle + edge.distance * ii + 1 < contrib_end[index]
            ):
                continue
            dirty.add(src)

    def _touch(self, node_id: int) -> None:
        """Mark a node and the producers whose lifetimes it extends dirty."""
        self._dirty.add(node_id)
        if node_id in self.graph:
            for src, _edge in self.graph.flow_producers(node_id):
                self._dirty.add(src)

    def on_edge_added(self, edge: Dependence) -> None:
        if edge.kind == "flow":
            self._dirty.add(edge.src)

    def on_edge_removed(self, edge: Dependence) -> None:
        if edge.kind == "flow":
            self._dirty.add(edge.src)

    def on_node_removed(self, node_id: int) -> None:
        # Handled eagerly (not via the dirty set): the node's dense index
        # is still alive during this callback but is recycled right after,
        # so its recorded contribution must be dropped now -- a later
        # flush could find the index re-used by a new node.
        self.n_updates += 1
        index = self.graph.dense_index(node_id)
        self._clear(index)
        self._dirty.discard(node_id)

    # ------------------------------------------------------------------ #
    # Slot-count arithmetic (mirrors pressure.PressureTracker._apply)
    # ------------------------------------------------------------------ #
    def _apply(self, bank_index: int, start: int, end: int, sign: int) -> None:
        ii = self.ii
        slots = self._slots
        base_offset = bank_index * ii
        length = end - start
        if length < 1:
            length = 1
        base, rem = divmod(length, ii)
        if base:
            delta = base * sign
            for flat in range(base_offset, base_offset + ii):
                slots[flat] += delta
        anchor = start % ii
        for offset in range(rem):
            slots[base_offset + (anchor + offset) % ii] += sign
        self._stale_banks |= 1 << bank_index

    def _apply_whole(self, bank_index: int, sign: int) -> None:
        slots = self._slots
        base_offset = bank_index * self.ii
        for flat in range(base_offset, base_offset + self.ii):
            slots[flat] += sign
        self._stale_banks |= 1 << bank_index

    # ------------------------------------------------------------------ #
    # Dirty flush
    # ------------------------------------------------------------------ #
    def _ensure_index(self, index: int) -> None:
        grow = index + 1 - len(self._contrib_bank)
        if grow > 0:
            self._contrib_bank.extend([_NO_BANK] * grow)
            self._contrib_start.extend([0] * grow)
            self._contrib_end.extend([0] * grow)
            self._contrib_node.extend([-1] * grow)
            self._live_banks.extend([0] * grow)

    def _clear(self, index: int) -> None:
        """Subtract and forget whatever is recorded at a dense index."""
        if index >= len(self._contrib_bank):
            return
        bank_index = self._contrib_bank[index]
        if bank_index != _NO_BANK:
            self._apply(
                bank_index, self._contrib_start[index], self._contrib_end[index], -1
            )
            self._contrib_bank[index] = _NO_BANK
            self._contrib_node[index] = -1
        live = self._live_banks[index]
        if live:
            bank_index = 0
            while live:
                if live & 1:
                    self._apply_whole(bank_index, -1)
                live >>= 1
                bank_index += 1
            self._live_banks[index] = 0

    def _refresh(self, node_id: int) -> None:
        """Re-derive one node's contribution from the current state."""
        self.n_updates += 1
        graph = self.graph
        if node_id not in graph:
            # Removed nodes were cleared eagerly in on_node_removed.
            return
        index = graph.dense_index(node_id)
        self._ensure_index(index)
        self._clear(index)
        node = graph.node(node_id)
        if node.op is OpType.LIVE_IN:
            bank_index_map = self._bank_index
            live = 0
            for bank in live_in_banks(graph, node_id, self.clusters, self.rf):
                bank_index = bank_index_map.get(bank)
                if bank_index is not None:
                    live |= 1 << bank_index
            if live:
                self._live_banks[index] = live
                bank_index = 0
                bits = live
                while bits:
                    if bits & 1:
                        self._apply_whole(bank_index, +1)
                    bits >>= 1
                    bank_index += 1
            return
        if not node.op.defines_register:
            return
        times = self.times
        cycle = times.get(node_id)
        if cycle is None:
            return
        bank = value_bank(graph, node_id, self.clusters.get(node_id), self.rf)
        if bank is None:
            return
        bank_index = self._bank_index.get(bank)
        if bank_index is None:
            return
        producer_latency = (
            node.latency_override
            if node.latency_override is not None
            else self.latency_of(node.op.mnemonic)
        )
        start = cycle + producer_latency
        end = start + 1
        ii = self.ii
        for dst, edge in graph.flow_consumers(node_id):
            use_cycle = times.get(dst)
            if use_cycle is None:
                continue
            use = use_cycle + edge.distance * ii
            if use + 1 > end:
                end = use + 1
        self._apply(bank_index, start, end, +1)
        self._contrib_bank[index] = bank_index
        self._contrib_start[index] = start
        self._contrib_end[index] = end
        self._contrib_node[index] = node_id

    def _flush(self) -> None:
        if not self._dirty:
            return
        for node_id in self._dirty:
            self._refresh(node_id)
        self._dirty.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def usage(self) -> Dict[int, int]:
        """MaxLive per bank -- same contract as :func:`register_usage`."""
        self.n_checks += 1
        if not self._dirty and not self._stale_banks and self._usage_cache is not None:
            return self._usage_cache
        self._flush()
        stale = self._stale_banks
        if stale:
            ii = self.ii
            slots = self._slots
            bank_max = self._bank_max
            bank_index = 0
            while stale:
                if stale & 1:
                    base_offset = bank_index * ii
                    bank_max[bank_index] = max(slots[base_offset:base_offset + ii])
                stale >>= 1
                bank_index += 1
            self._stale_banks = 0
        bank_max = self._bank_max
        result = {bank: bank_max[index] for index, bank in enumerate(self._banks)}
        self._usage_cache = result
        return result

    def lifetimes_by_bank(self) -> Dict[int, List[ValueLifetime]]:
        """Current value lifetimes grouped by bank (spill-victim input)."""
        self._flush()
        per_bank: Dict[int, List[ValueLifetime]] = {bank: [] for bank in self._banks}
        banks = self._banks
        contrib_bank = self._contrib_bank
        contrib_node = self._contrib_node
        contrib_start = self._contrib_start
        contrib_end = self._contrib_end
        for index, bank_index in enumerate(contrib_bank):
            if bank_index == _NO_BANK:
                continue
            per_bank[banks[bank_index]].append(
                ValueLifetime(
                    contrib_node[index],
                    banks[bank_index],
                    contrib_start[index],
                    contrib_end[index],
                )
            )
        for lifetimes in per_bank.values():
            lifetimes.sort(key=lambda lt: lt.node_id)
        return per_bank

    def detach(self) -> None:
        """Stop observing the graph (owning schedule is being discarded)."""
        self.graph.remove_listener(self)
